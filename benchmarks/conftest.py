"""Shared settings for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, using
scaled-down experiment settings so the full harness completes in minutes on
a laptop.  Set the environment variable ``REPRO_BENCH_SCALE=paper`` to run
the paper-scale grid instead (hours of compute).

Each benchmark prints the resulting table; compare the rows against the
corresponding table/figure in the paper (and the expectations recorded in
EXPERIMENTS.md).

Every benchmark also emits a ``BENCH_<test>.json`` artifact next to this
file (timings + any ``benchmark.extra_info`` the test recorded), so the
perf trajectory of the repo is machine-readable: CI uploads the files and
successive runs can be diffed.  The files are runtime artifacts
(gitignored — they change on every run); the headline numbers live in
``RESULTS_orchestrator.md``.  Tests that measure wall-clock themselves
(e.g. the orchestrator scaling benchmark) write through the
``bench_artifact`` fixture instead.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path

import pytest

from repro import TrainingConfig
from repro.experiments import ExperimentSettings

ARTIFACT_DIR = Path(__file__).resolve().parent


def write_bench_artifact(name: str, payload: dict) -> Path:
    """Write one BENCH_<name>.json artifact (overwriting earlier runs)."""
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_")
    path = ARTIFACT_DIR / f"BENCH_{safe}.json"
    payload = {"recorded_unix_time": round(time.time(), 3), **payload}
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture
def bench_artifact():
    """Callable fixture: ``bench_artifact(name, payload_dict)`` -> Path."""
    return write_bench_artifact


@pytest.fixture
def benchmark(benchmark, request):
    """Wrap pytest-benchmark's fixture to emit a BENCH_*.json artifact."""
    yield benchmark
    stats_holder = getattr(benchmark, "stats", None)
    stats = getattr(stats_holder, "stats", None)
    if stats is None:
        return
    payload = {
        "test": request.node.nodeid,
        "mean_seconds": getattr(stats, "mean", None),
        "min_seconds": getattr(stats, "min", None),
        "max_seconds": getattr(stats, "max", None),
        "rounds": getattr(stats, "rounds", None),
        "extra_info": dict(getattr(benchmark, "extra_info", {}) or {}),
    }
    write_bench_artifact(request.node.name, payload)


def _bench_settings() -> ExperimentSettings:
    if os.environ.get("REPRO_BENCH_SCALE", "").lower() == "paper":
        return ExperimentSettings.paper_scale()
    return ExperimentSettings(
        datasets=("chameleon", "power", "arxiv"),
        dataset_scale=0.4,
        repeats=1,
        training=TrainingConfig(
            embedding_dim=16,
            batch_size=96,
            learning_rate=0.1,
            negative_samples=5,
            epochs=120,
        ),
        epsilons=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5),
        seed=7,
    )


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """Experiment settings shared by every benchmark."""
    return _bench_settings()


@pytest.fixture(scope="session")
def quick_bench_settings() -> ExperimentSettings:
    """An even smaller grid for the parameter-sweep tables (II-V)."""
    settings = _bench_settings()
    return settings.with_updates(
        datasets=("chameleon",),
        training=settings.training.with_updates(epochs=60),
        epsilons=(0.5, 2.0, 3.5),
    )
