"""Shared settings for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, using
scaled-down experiment settings so the full harness completes in minutes on
a laptop.  Set the environment variable ``REPRO_BENCH_SCALE=paper`` to run
the paper-scale grid instead (hours of compute).

Each benchmark prints the resulting table; compare the rows against the
corresponding table/figure in the paper (and the expectations recorded in
EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest

from repro import TrainingConfig
from repro.experiments import ExperimentSettings


def _bench_settings() -> ExperimentSettings:
    if os.environ.get("REPRO_BENCH_SCALE", "").lower() == "paper":
        return ExperimentSettings.paper_scale()
    return ExperimentSettings(
        datasets=("chameleon", "power", "arxiv"),
        dataset_scale=0.4,
        repeats=1,
        training=TrainingConfig(
            embedding_dim=16,
            batch_size=96,
            learning_rate=0.1,
            negative_samples=5,
            epochs=120,
        ),
        epsilons=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5),
        seed=7,
    )


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """Experiment settings shared by every benchmark."""
    return _bench_settings()


@pytest.fixture(scope="session")
def quick_bench_settings() -> ExperimentSettings:
    """An even smaller grid for the parameter-sweep tables (II-V)."""
    settings = _bench_settings()
    return settings.with_updates(
        datasets=("chameleon",),
        training=settings.training.with_updates(epochs=60),
        epsilons=(0.5, 2.0, 3.5),
    )
