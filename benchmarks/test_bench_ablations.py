"""Ablation benches for this reproduction's own design choices (see EXPERIMENTS.md)."""

from __future__ import annotations

from repro.experiments.ablations import (
    ablation_gradient_normalization,
    ablation_iterate_averaging,
    ablation_negative_sampling,
)


def test_ablation_iterate_averaging(benchmark, quick_bench_settings):
    """Averaged iterates versus the last private iterate."""
    table = benchmark.pedantic(
        ablation_iterate_averaging,
        kwargs={"settings": quick_bench_settings},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())
    assert len(table) == len(quick_bench_settings.datasets) * 2


def test_ablation_gradient_normalization(benchmark, quick_bench_settings):
    """Per-row normalisation versus the literal Eq. (9) batch averaging."""
    table = benchmark.pedantic(
        ablation_gradient_normalization,
        kwargs={"settings": quick_bench_settings},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())
    assert len(table) == len(quick_bench_settings.datasets) * 2


def test_ablation_negative_sampling(benchmark, quick_bench_settings):
    """Theorem-3 negative sampling versus the unigram sampler (non-private)."""
    table = benchmark.pedantic(
        ablation_negative_sampling,
        kwargs={"settings": quick_bench_settings},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())
    assert len(table) == len(quick_bench_settings.datasets) * 2
    for value in table.column("strucequ_mean"):
        assert -1.0 <= value <= 1.0
