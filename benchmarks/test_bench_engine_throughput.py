"""Throughput of the vectorized training engine vs the seed per-example loop.

Measures private and non-private training steps/sec on a ~2k-node generator
graph and asserts the engine's batched path is at least 5x faster than the
per-example reference loop (the seed implementation, reproduced here with
the same objective / perturbation primitives it used).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import TrainingConfig
from repro.embedding import SkipGramModel, SGDOptimizer, get_perturbation
from repro.embedding.objectives import StructurePreferenceObjective
from repro.graph import load_dataset
from repro.graph.sampling import SubgraphSampler, UnigramNegativeSampler, generate_disjoint_subgraph_arrays
from repro.engine import DirectSparseUpdate, PerturbedUpdate, TrainingEngine
from repro.proximity import DegreeProximity

BENCH_CONFIG = TrainingConfig(
    embedding_dim=64, batch_size=1024, learning_rate=0.1, negative_samples=5, epochs=1
)
ENGINE_STEPS = 30
LEGACY_STEPS = 10
# Locally the engine measures ~7-11x; the assertion floor can be relaxed on
# noisy shared runners (e.g. CI sets REPRO_BENCH_MIN_SPEEDUP=3) where
# wall-clock ratios are unreliable, without turning the check off entirely.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "5.0"))


@pytest.fixture(scope="module")
def bench_setup():
    """A ~2k-node generator graph with its objective and subgraph pool."""
    graph = load_dataset("smallworld", num_nodes=2000, seed=3)
    proximity = DegreeProximity().compute(graph)
    objective = StructurePreferenceObjective(proximity)
    negative_sampler = UnigramNegativeSampler(graph, seed=0)
    pool = generate_disjoint_subgraph_arrays(
        graph, negative_sampler, BENCH_CONFIG.negative_samples
    )
    pool = pool.with_weights(objective.edge_weights(pool.centers, pool.positives))
    return graph, objective, pool


def _fresh_model_sampler(graph, pool, seed=0):
    model = SkipGramModel(graph.num_nodes, BENCH_CONFIG.embedding_dim, seed=seed)
    sampler = SubgraphSampler(pool, BENCH_CONFIG.batch_size, seed=seed)
    return model, sampler


class _LegacySampler:
    """The seed's batch source: index into a prebuilt dataclass list.

    ``SubgraphSampler.sample_batch`` now materialises fresh dataclasses per
    call; the seed indexed a list built once, so the baseline must too or
    the measured speedup would be inflated by compat-shim overhead.
    """

    def __init__(self, pool, batch_size, seed):
        self._subgraphs = pool.to_subgraphs()
        self._sampler = SubgraphSampler(pool, batch_size, seed=seed)

    def sample_batch(self):
        return [self._subgraphs[int(i)] for i in self._sampler.sample_indices()]


def _time_steps(step, count, repeats=3):
    """Return best-of-``repeats`` seconds per step of ``step()``.

    The minimum over repeated timed chunks is robust against transient
    CPU contention, which matters because the test asserts a ratio.
    """
    step()  # warm-up outside the timed region
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(count):
            step()
        best = min(best, (time.perf_counter() - start) / count)
    return best


def _legacy_nonprivate_step(model, optimizer, objective, sampler):
    batch = sampler.sample_batch()
    centers, center_grads, context_rows, context_grads = [], [], [], []
    for subgraph in batch:
        grads = objective.example_gradients(model.w_in, model.w_out, subgraph)
        centers.append(grads.center)
        center_grads.append(grads.center_gradient)
        context_rows.append(grads.context_nodes)
        context_grads.append(grads.context_gradients)
    optimizer.descend_rows(
        model.w_in, np.asarray(centers, dtype=np.int64), np.vstack(center_grads)
    )
    optimizer.descend_rows(model.w_out, np.concatenate(context_rows), np.vstack(context_grads))
    optimizer.step_epoch()


def _legacy_private_step(model, optimizer, objective, sampler, perturbation):
    batch = sampler.sample_batch()
    example_gradients = [
        objective.example_gradients(model.w_in, model.w_out, subgraph) for subgraph in batch
    ]
    perturbed = perturbation.perturb(
        example_gradients, num_nodes=model.num_nodes, embedding_dim=model.embedding_dim
    )
    w_in_grad, w_out_grad = perturbed.averaged_by_row_counts()
    optimizer.descend(model.w_in, w_in_grad)
    optimizer.descend(model.w_out, w_out_grad)
    optimizer.step_epoch()


def _report(label, engine_spp, legacy_spp):
    speedup = legacy_spp / engine_spp
    print()
    print(f"{label} throughput on 2000-node smallworld graph (B={BENCH_CONFIG.batch_size}):")
    print(f"  per-example loop : {1.0 / legacy_spp:10.1f} steps/sec")
    print(f"  vectorized engine: {1.0 / engine_spp:10.1f} steps/sec")
    print(f"  speedup          : {speedup:10.1f}x")
    return speedup


def test_engine_throughput_nonprivate(benchmark, bench_setup):
    graph, objective, pool = bench_setup

    model, sampler = _fresh_model_sampler(graph, pool)
    engine = TrainingEngine(
        model=model,
        optimizer=SGDOptimizer(BENCH_CONFIG.learning_rate),
        objective=objective,
        sampler=sampler,
        update_rule=DirectSparseUpdate(),
    )
    benchmark.pedantic(lambda: engine.run(ENGINE_STEPS), rounds=3, iterations=1)
    engine_spp = benchmark.stats.stats.min / ENGINE_STEPS

    model = SkipGramModel(graph.num_nodes, BENCH_CONFIG.embedding_dim, seed=0)
    sampler = _LegacySampler(pool, BENCH_CONFIG.batch_size, seed=0)
    optimizer = SGDOptimizer(BENCH_CONFIG.learning_rate)
    legacy_spp = _time_steps(
        lambda: _legacy_nonprivate_step(model, optimizer, objective, sampler), LEGACY_STEPS
    )

    speedup = _report("SE-GEmb (non-private)", engine_spp, legacy_spp)
    assert speedup >= MIN_SPEEDUP


def test_engine_throughput_private(benchmark, bench_setup):
    graph, objective, pool = bench_setup

    def perturbation():
        return get_perturbation("nonzero", clipping_threshold=2.0, noise_multiplier=5.0, seed=0)

    model, sampler = _fresh_model_sampler(graph, pool)
    engine = TrainingEngine(
        model=model,
        optimizer=SGDOptimizer(BENCH_CONFIG.learning_rate),
        objective=objective,
        sampler=sampler,
        update_rule=PerturbedUpdate(perturbation()),
    )
    benchmark.pedantic(lambda: engine.run(ENGINE_STEPS), rounds=3, iterations=1)
    engine_spp = benchmark.stats.stats.min / ENGINE_STEPS

    model = SkipGramModel(graph.num_nodes, BENCH_CONFIG.embedding_dim, seed=0)
    sampler = _LegacySampler(pool, BENCH_CONFIG.batch_size, seed=0)
    optimizer = SGDOptimizer(BENCH_CONFIG.learning_rate)
    legacy = perturbation()
    legacy_spp = _time_steps(
        lambda: _legacy_private_step(model, optimizer, objective, sampler, legacy), LEGACY_STEPS
    )

    speedup = _report("SE-PrivGEmb (private)", engine_spp, legacy_spp)
    assert speedup >= MIN_SPEEDUP
