"""Fast-path vs default step throughput on the 20k-node benchmark graph.

Measures steps/sec of the zero-allocation fast path (``fast_path=True`` +
``compute_dtype="float32"``: preallocated :class:`StepWorkspace`, alias
negative draws, partial Fisher–Yates batch indices) against the default
float64 engine, for both the non-private (SE-GEmb) and the private
(SE-PrivGEmb, non-zero Eq. 9) step.  A :class:`StepProfiler` rides along on
every engine so the artifact records *where* each path spends its step
(sample / gradients / perturb / descend).

Floors (relaxable via env on noisy shared runners):

* ``REPRO_BENCH_MIN_FASTPATH_SPEEDUP``       — non-private, default 2.0
  (locally measures ~2.2-2.4x; the dominant win is the compact segment
  descent replacing ``np.subtract.at`` plus float32 gradient math).
* ``REPRO_BENCH_MIN_FASTPATH_PRIV_SPEEDUP``  — private, default 1.2
  (locally ~1.4x; the Gaussian draws — kept in float64 and stream-pinned
  to the default for parity — bound the private step from below).

``REPRO_FASTPATH_BENCH_NODES`` scales the graph (default 20000); CI smoke
runs a reduced node count with the same assertions.  Recorded headline
numbers live in ``RESULTS_fastpath.md``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import PrivacyConfig, TrainingConfig
from repro.embedding import SGDOptimizer, SkipGramModel, get_perturbation
from repro.embedding.objectives import StructurePreferenceObjective
from repro.engine import (
    DirectSparseUpdate,
    PerturbedUpdate,
    StepProfiler,
    StepWorkspace,
    TrainingEngine,
)
from repro.graph import load_dataset
from repro.graph.sampling import (
    SubgraphSampler,
    UnigramNegativeSampler,
    generate_disjoint_subgraph_arrays,
)
from repro.proximity import DegreeProximity

BENCH_NODES = int(os.environ.get("REPRO_FASTPATH_BENCH_NODES", "20000"))
BENCH_CONFIG = TrainingConfig(
    embedding_dim=64, batch_size=1024, learning_rate=0.1, negative_samples=5, epochs=1
)
BENCH_PRIVACY = PrivacyConfig(
    epsilon=3.5, delta=1e-5, noise_multiplier=5.0, clipping_threshold=2.0
)
ENGINE_STEPS = 25
ROUNDS = 3
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_FASTPATH_SPEEDUP", "2.0"))
MIN_PRIV_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_FASTPATH_PRIV_SPEEDUP", "1.2"))


@pytest.fixture(scope="module")
def bench_setup():
    """The benchmark graph with its objective and weighted subgraph pool."""
    graph = load_dataset("smallworld", num_nodes=BENCH_NODES, seed=3)
    proximity = DegreeProximity().compute(graph)
    objective = StructurePreferenceObjective(proximity)

    start = time.perf_counter()
    searchsorted_sampler = UnigramNegativeSampler(graph, seed=0)
    pool = generate_disjoint_subgraph_arrays(
        graph, searchsorted_sampler, BENCH_CONFIG.negative_samples
    )
    searchsorted_seconds = time.perf_counter() - start

    start = time.perf_counter()
    alias_sampler = UnigramNegativeSampler(graph, seed=0, use_alias=True)
    generate_disjoint_subgraph_arrays(
        graph, alias_sampler, BENCH_CONFIG.negative_samples
    )
    alias_seconds = time.perf_counter() - start

    pool = pool.with_weights(objective.edge_weights(pool.centers, pool.positives))
    pool_timings = {
        "pool_build_searchsorted_seconds": searchsorted_seconds,
        "pool_build_alias_seconds": alias_seconds,
    }
    return graph, objective, pool, pool_timings


def _build_engine(graph, objective, pool, *, fast: bool, private: bool, seed=0):
    dtype = np.float32 if fast else np.float64
    model = SkipGramModel(
        graph.num_nodes, BENCH_CONFIG.embedding_dim, seed=seed, dtype=dtype
    )
    sampler = SubgraphSampler(pool, BENCH_CONFIG.batch_size, seed=seed, fast_path=fast)
    workspace = None
    if fast:
        workspace = StepWorkspace(
            batch_size=sampler.batch_size,
            num_negatives=pool.num_negatives,
            embedding_dim=BENCH_CONFIG.embedding_dim,
            num_nodes=graph.num_nodes,
            dtype=dtype,
        )
    if private:
        update_rule = PerturbedUpdate(
            get_perturbation(
                "nonzero",
                clipping_threshold=BENCH_PRIVACY.clipping_threshold,
                noise_multiplier=BENCH_PRIVACY.noise_multiplier,
                seed=seed,
            )
        )
    else:
        update_rule = DirectSparseUpdate()
    profiler = StepProfiler()
    engine = TrainingEngine(
        model=model,
        optimizer=SGDOptimizer(BENCH_CONFIG.learning_rate),
        objective=objective,
        sampler=sampler,
        update_rule=update_rule,
        hooks=(profiler,),
        workspace=workspace,
    )
    return engine, profiler


def _best_seconds_per_step(engine):
    engine.run(3)  # warm-up: caches, cast pools, BLAS threads
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        engine.run(ENGINE_STEPS)
        best = min(best, (time.perf_counter() - start) / ENGINE_STEPS)
    return best


def _phase_means(profiler):
    profile = profiler.last_profile
    return {} if profile is None else profile.to_dict()["phase_mean_seconds"]


def _report(label, default_spp, fast_spp):
    speedup = default_spp / fast_spp
    print()
    print(
        f"{label} step throughput on the {BENCH_NODES}-node smallworld graph "
        f"(B={BENCH_CONFIG.batch_size}, r={BENCH_CONFIG.embedding_dim}):"
    )
    print(f"  default float64 engine : {1.0 / default_spp:10.1f} steps/sec")
    print(f"  fast-path float32      : {1.0 / fast_spp:10.1f} steps/sec")
    print(f"  speedup                : {speedup:10.2f}x")
    return speedup


def test_fastpath_speedup_nonprivate(bench_artifact, bench_setup):
    graph, objective, pool, pool_timings = bench_setup
    default_engine, default_profiler = _build_engine(
        graph, objective, pool, fast=False, private=False
    )
    fast_engine, fast_profiler = _build_engine(
        graph, objective, pool, fast=True, private=False
    )
    default_spp = _best_seconds_per_step(default_engine)
    fast_spp = _best_seconds_per_step(fast_engine)
    speedup = _report("SE-GEmb (non-private)", default_spp, fast_spp)
    bench_artifact(
        "fastpath_nonprivate",
        {
            "nodes": BENCH_NODES,
            "batch_size": BENCH_CONFIG.batch_size,
            "embedding_dim": BENCH_CONFIG.embedding_dim,
            "default_steps_per_sec": 1.0 / default_spp,
            "fast_steps_per_sec": 1.0 / fast_spp,
            "speedup": speedup,
            "floor": MIN_SPEEDUP,
            "default_phase_mean_seconds": _phase_means(default_profiler),
            "fast_phase_mean_seconds": _phase_means(fast_profiler),
            **pool_timings,
        },
    )
    assert speedup >= MIN_SPEEDUP


def test_fastpath_speedup_private(bench_artifact, bench_setup):
    graph, objective, pool, _ = bench_setup
    default_engine, default_profiler = _build_engine(
        graph, objective, pool, fast=False, private=True
    )
    fast_engine, fast_profiler = _build_engine(
        graph, objective, pool, fast=True, private=True
    )
    default_spp = _best_seconds_per_step(default_engine)
    fast_spp = _best_seconds_per_step(fast_engine)
    speedup = _report("SE-PrivGEmb (private, non-zero Eq. 9)", default_spp, fast_spp)
    bench_artifact(
        "fastpath_private",
        {
            "nodes": BENCH_NODES,
            "batch_size": BENCH_CONFIG.batch_size,
            "embedding_dim": BENCH_CONFIG.embedding_dim,
            "default_steps_per_sec": 1.0 / default_spp,
            "fast_steps_per_sec": 1.0 / fast_spp,
            "speedup": speedup,
            "floor": MIN_PRIV_SPEEDUP,
            "default_phase_mean_seconds": _phase_means(default_profiler),
            "fast_phase_mean_seconds": _phase_means(fast_profiler),
        },
    )
    assert speedup >= MIN_PRIV_SPEEDUP
