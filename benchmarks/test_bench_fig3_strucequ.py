"""Figure 3: StrucEqu versus privacy budget ε for all eight methods."""

from __future__ import annotations

from repro.experiments import figure_structural_equivalence

# Restrict to a representative method subset by default so the benchmark
# completes in minutes; the full eight-method sweep is available through
# REPRO_BENCH_SCALE=paper or by calling the function directly.
METHODS = (
    "dpgvae",
    "gap",
    "progap",
    "se_gemb_dw",
    "se_privgemb_dw",
    "se_privgemb_deg",
)


def test_figure3_structural_equivalence(benchmark, bench_settings):
    """Regenerate the Figure-3 series and check the paper's method ordering."""
    settings = bench_settings.with_updates(
        datasets=("chameleon",), epsilons=(0.5, 2.0, 3.5)
    )
    table = benchmark.pedantic(
        figure_structural_equivalence,
        kwargs={"settings": settings, "methods": METHODS},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())
    assert len(table) == len(settings.datasets) * len(METHODS) * len(settings.epsilons)

    def mean_over(method):
        values = table.filter(method=method).column("strucequ_mean")
        return sum(values) / len(values)

    # Paper-shape checks (averaged over datasets and budgets):
    # the non-private upper bound dominates, and SE-PrivGEmb beats the
    # aggregation-perturbation GNN baselines.
    assert mean_over("se_gemb_dw") > mean_over("se_privgemb_dw")
    assert mean_over("se_privgemb_dw") > mean_over("gap")
    assert mean_over("se_privgemb_deg") > mean_over("progap")
