"""Figure 4: link-prediction AUC versus privacy budget ε."""

from __future__ import annotations

from repro.experiments import figure_link_prediction

METHODS = ("dpgvae", "gap", "se_gemb_dw", "se_privgemb_dw")


def test_figure4_link_prediction(benchmark, bench_settings):
    """Regenerate the Figure-4 series and check the non-private upper bound."""
    settings = bench_settings.with_updates(
        datasets=("chameleon",), epsilons=(0.5, 2.0, 3.5)
    )
    table = benchmark.pedantic(
        figure_link_prediction,
        kwargs={"settings": settings, "methods": METHODS},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())
    assert len(table) == len(settings.datasets) * len(METHODS) * len(settings.epsilons)

    def mean_over(method):
        values = table.filter(method=method).column("auc_mean")
        return sum(values) / len(values)

    # Paper-shape check: the non-private SE-GEmb upper-bounds every private
    # method on AUC (Figure 4), and all AUC values are valid probabilities.
    for method in METHODS:
        assert 0.0 <= mean_over(method) <= 1.0
    assert mean_over("se_gemb_dw") >= mean_over("se_privgemb_dw") - 0.02
