"""Worker-scaling benchmark for hogwild shared-memory training.

Measures training throughput (steps/sec) of the non-private SE trainer at
1, 2 and 4 hogwild workers on a ~20k-node preferential-attachment graph and
writes the curve to ``BENCH_hogwild_scaling.json``.  The scaling *floor* is
enforced only on machines with >= 4 cores (``os.cpu_count()`` counts
logical CPUs; CI relaxes the floor via ``REPRO_BENCH_MIN_HOGWILD_SPEEDUP``)
— the curve itself is recorded everywhere so single-core runs still leave
an artifact.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.config import TrainingConfig
from repro.embedding import SEGEmbTrainer
from repro.graph.generators import barabasi_albert_graph
from repro.proximity import get_proximity

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="hogwild workers require the fork start method",
)

NUM_NODES = 20_000
STEPS = 600
TRAIN = TrainingConfig(
    embedding_dim=32,
    epochs=STEPS,
    batch_size=128,
    learning_rate=0.05,
    negative_samples=5,
)


def _steps_per_second(graph, workers: int) -> float:
    trainer = SEGEmbTrainer(
        proximity=get_proximity("degree"),
        config=TRAIN,
        seed=11,
        fast_path=True,
        workers=workers,
    )
    started = time.perf_counter()
    trainer.fit(graph)
    elapsed = time.perf_counter() - started
    assert trainer.result_.epochs_run == STEPS
    return STEPS / elapsed


def test_hogwild_worker_scaling(bench_artifact):
    graph = barabasi_albert_graph(NUM_NODES, 3, seed=7, method="batched")
    curve = {workers: _steps_per_second(graph, workers) for workers in (1, 2, 4)}

    speedup_2 = curve[2] / curve[1]
    speedup_4 = curve[4] / curve[1]
    floor = float(os.environ.get("REPRO_BENCH_MIN_HOGWILD_SPEEDUP", "2.0"))
    bench_artifact(
        "hogwild_scaling",
        {
            "num_nodes": NUM_NODES,
            "num_edges": graph.num_edges,
            "steps": STEPS,
            "batch_size": TRAIN.batch_size,
            "cpu_count": os.cpu_count(),
            "steps_per_second": {str(w): round(v, 2) for w, v in curve.items()},
            "speedup_2_workers": round(speedup_2, 3),
            "speedup_4_workers": round(speedup_4, 3),
            "floor_4_workers": floor,
            "floor_enforced": (os.cpu_count() or 1) >= 4,
        },
    )
    print(
        f"\nhogwild scaling on {NUM_NODES} nodes: "
        + ", ".join(f"{w}w={v:.0f} steps/s" for w, v in curve.items())
        + f" (4w speedup {speedup_4:.2f}x)"
    )
    if (os.cpu_count() or 1) >= 4:
        assert speedup_4 >= floor, (
            f"4-worker speedup {speedup_4:.2f}x below the {floor:.1f}x floor"
        )
