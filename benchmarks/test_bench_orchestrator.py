"""Benchmarks for the parallel, resumable experiment orchestrator.

Three properties are measured and recorded as ``BENCH_*.json`` artifacts:

* **dispatch scaling** — a smoke grid of synthetic sleep cells (blocking,
  not CPU-bound, so the measurement is independent of the machine's core
  count) must run ≥ 3× faster at ``workers=4`` than serially;
* **CPU scaling** — the same assertion on a real training grid, asserted
  only on machines with ≥ 4 physical cores (hosted CI and laptops differ
  wildly; the recorded JSON keeps the trajectory either way);
* **warm restart** — re-running a completed sweep against its RunStore
  must recompute zero cells and replay the stored results in milliseconds.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import PrivacyConfig, TrainingConfig
from repro.experiments import execute, table_batch_size
from repro.experiments.orchestrator import RunSpec

_SLEEP_TRAINING = TrainingConfig(
    embedding_dim=8, batch_size=24, learning_rate=0.1, negative_samples=3, epochs=4
)


def _sleep_grid(cells: int, duration: float) -> list[RunSpec]:
    return [
        RunSpec(
            kind="sleep",
            method="sleep",
            dataset="synthetic",
            dataset_fingerprint="",
            training=_SLEEP_TRAINING,
            privacy=PrivacyConfig(),
            repeats=1,
            seed=index,
            options=(("duration", duration),),
            metric="sleep",
        )
        for index in range(cells)
    ]


def test_orchestrator_dispatch_speedup(bench_artifact):
    """workers=4 must dispatch the smoke grid ≥ 3× faster than workers=1."""
    cells, duration = 12, 0.25
    specs = _sleep_grid(cells, duration)

    started = time.perf_counter()
    serial = execute(specs, workers=1)
    serial_seconds = time.perf_counter() - started
    assert serial.computed == cells

    started = time.perf_counter()
    parallel = execute(specs, workers=4)
    parallel_seconds = time.perf_counter() - started
    assert parallel.computed == cells
    assert parallel.results == serial.results

    speedup = serial_seconds / parallel_seconds
    floor = float(os.environ.get("REPRO_BENCH_MIN_ORCH_SPEEDUP", "3"))
    bench_artifact(
        "orchestrator_dispatch_speedup",
        {
            "cells": cells,
            "sleep_seconds_per_cell": duration,
            "serial_seconds": round(serial_seconds, 4),
            "parallel_seconds": round(parallel_seconds, 4),
            "workers": 4,
            "speedup": round(speedup, 3),
            "floor": floor,
        },
    )
    print(f"\norchestrator dispatch: serial {serial_seconds:.2f}s, "
          f"4 workers {parallel_seconds:.2f}s, speedup {speedup:.2f}x")
    assert speedup >= floor, (
        f"workers=4 speedup {speedup:.2f}x below the {floor:.1f}x floor"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="CPU-bound scaling needs >= 4 cores"
)
def test_orchestrator_cpu_speedup(bench_settings, bench_artifact):
    """Real training cells scale with workers on multi-core machines.

    ``os.cpu_count()`` counts *logical* CPUs, so SMT-limited hosts (4
    vCPUs on 2 physical cores, common on hosted CI) pass the gate but
    cannot reach the local 2x floor — CI relaxes it via
    ``REPRO_BENCH_MIN_ORCH_CPU_SPEEDUP``.
    """
    settings = bench_settings.with_updates(
        datasets=("chameleon", "power"),
        training=bench_settings.training.with_updates(epochs=40),
    )
    batch_sizes = (32, 64, 96)

    started = time.perf_counter()
    serial = table_batch_size(settings, batch_sizes=batch_sizes)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = table_batch_size(settings, batch_sizes=batch_sizes, workers=4)
    parallel_seconds = time.perf_counter() - started
    assert parallel.rows == serial.rows

    speedup = serial_seconds / parallel_seconds
    floor = float(os.environ.get("REPRO_BENCH_MIN_ORCH_CPU_SPEEDUP", "2"))
    bench_artifact(
        "orchestrator_cpu_speedup",
        {
            "cells": len(serial),
            "serial_seconds": round(serial_seconds, 3),
            "parallel_seconds": round(parallel_seconds, 3),
            "workers": 4,
            "cpu_count": os.cpu_count(),
            "speedup": round(speedup, 3),
            "floor": floor,
        },
    )
    print(f"\norchestrator cpu: serial {serial_seconds:.2f}s, "
          f"4 workers {parallel_seconds:.2f}s, speedup {speedup:.2f}x")
    assert speedup >= floor


def test_orchestrator_warm_restart(tmp_path, quick_bench_settings, bench_artifact):
    """A completed sweep resumes from its store with zero recomputation."""
    settings = quick_bench_settings.with_updates(
        training=quick_bench_settings.training.with_updates(epochs=30)
    )
    batch_sizes = (32, 64)
    store = tmp_path / "runs"

    started = time.perf_counter()
    cold = table_batch_size(settings, batch_sizes=batch_sizes, store=store)
    cold_seconds = time.perf_counter() - started
    assert cold.run_report.computed == len(cold)

    started = time.perf_counter()
    warm = table_batch_size(settings, batch_sizes=batch_sizes, store=store)
    warm_seconds = time.perf_counter() - started

    assert warm.run_report.computed == 0, "warm restart recomputed cells"
    assert warm.run_report.reused == len(warm)
    assert warm.rows == cold.rows
    bench_artifact(
        "orchestrator_warm_restart",
        {
            "cells": len(cold),
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "warm_vs_cold": round(warm_seconds / max(cold_seconds, 1e-9), 5),
        },
    )
    print(f"\nwarm restart: cold {cold_seconds:.2f}s, warm {warm_seconds*1000:.1f}ms")
    # "milliseconds, not retraining": allow generous CI jitter, still far
    # below any real training cell
    assert warm_seconds < min(1.0, cold_seconds)
