"""Recovery-overhead benchmark for the robustness layer (PR 10).

Two questions, answered with wall clocks and written to
``BENCH_robustness_*.json``:

* **Checkpoint tax** — steps/sec of a supervised hogwild fit (periodic
  per-shard checkpoints) vs. the unsupervised fast-path floor.  The target
  is a <= 5% tax at paper scale; locally the enforced ceiling defaults to
  a lenient 15% (two identical hogwild runs can differ by more than 5%
  from scheduler noise alone at benchmark scale) and is overridable via
  ``REPRO_BENCH_MAX_CHECKPOINT_TAX``.
* **Killed-shard recovery** — wall-clock of a fit whose shard 0 is crashed
  mid-run and restarted from its last checkpoint, vs. the uncrashed run:
  how many seconds one worker death actually costs end to end.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.config import TrainingConfig
from repro.embedding import SEGEmbTrainer
from repro.graph.generators import barabasi_albert_graph
from repro.proximity import get_proximity
from repro.robustness import FaultPlan, FaultRule, SupervisorPolicy

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="hogwild workers require the fork start method",
)

NUM_NODES = 5_000
STEPS = 800
WORKERS = 2
CHECKPOINT_EVERY = 50
TRAIN = TrainingConfig(
    embedding_dim=16,
    epochs=STEPS,
    batch_size=64,
    learning_rate=0.05,
    negative_samples=5,
)


def _fit_seconds(graph, supervision: SupervisorPolicy | None) -> float:
    trainer = SEGEmbTrainer(
        proximity=get_proximity("degree"),
        config=TRAIN,
        seed=11,
        fast_path=True,
        workers=WORKERS,
        hogwild_resilience=supervision,
    )
    started = time.perf_counter()
    trainer.fit(graph)
    elapsed = time.perf_counter() - started
    assert trainer.result_.epochs_run == STEPS
    return elapsed


def test_checkpoint_tax_and_killed_shard_recovery(bench_artifact, tmp_path):
    graph = barabasi_albert_graph(NUM_NODES, 3, seed=7, method="batched")
    supervised = SupervisorPolicy(
        max_restarts=2,
        checkpoint_every=CHECKPOINT_EVERY,
        checkpoint_dir=tmp_path / "ckpt",
        backoff_base=0.01,
        backoff_max=0.05,
    )

    # interleave the repeats so machine drift hits both arms equally
    floor_times, supervised_times = [], []
    for _ in range(3):
        floor_times.append(_fit_seconds(graph, None))
        supervised_times.append(_fit_seconds(graph, supervised))
    floor_s = min(floor_times)
    supervised_s = min(supervised_times)
    tax = supervised_s / floor_s - 1.0

    # killed-shard recovery: crash shard 0 mid-run, resume from checkpoint
    crash_plan = FaultPlan(
        [
            FaultRule(
                "hogwild.worker.step",
                "crash",
                where={"shard": 0, "step": STEPS // WORKERS // 2, "incarnation": 0},
            )
        ]
    )
    with crash_plan:
        crashed_s = _fit_seconds(graph, supervised)
    recovery_overhead_s = crashed_s - supervised_s

    max_tax = float(os.environ.get("REPRO_BENCH_MAX_CHECKPOINT_TAX", "0.15"))
    bench_artifact(
        "robustness_recovery",
        {
            "num_nodes": NUM_NODES,
            "steps": STEPS,
            "workers": WORKERS,
            "checkpoint_every": CHECKPOINT_EVERY,
            "floor_steps_per_second": round(STEPS / floor_s, 2),
            "supervised_steps_per_second": round(STEPS / supervised_s, 2),
            "checkpoint_tax": round(tax, 4),
            "max_checkpoint_tax": max_tax,
            "uncrashed_seconds": round(supervised_s, 4),
            "crashed_recovered_seconds": round(crashed_s, 4),
            "recovery_overhead_seconds": round(recovery_overhead_s, 4),
        },
    )
    print(
        f"\nrobustness: floor={STEPS / floor_s:.0f} steps/s, "
        f"supervised={STEPS / supervised_s:.0f} steps/s (tax {tax:+.1%}), "
        f"killed-shard recovery cost {recovery_overhead_s:.2f}s"
    )
    assert tax <= max_tax, (
        f"checkpointing costs {tax:.1%} steps/sec (ceiling {max_tax:.0%}); "
        "raise REPRO_BENCH_MAX_CHECKPOINT_TAX only with a written justification"
    )
