"""Serving-layer throughput: batched top-k vs one-at-a-time queries.

The serving counterpart of the fast-path benchmark: a degree-proximity
SE-GEmb model is trained once on the 20k-node benchmark graph (one cheap
epoch — serving perf does not depend on embedding quality), exported as a
memory-mapped servable, and queried through :class:`QueryEngine`:

* **batched vs single** — queries/sec of ``top_k`` over 64-row batches
  against the same queries issued one at a time.  The batched scan must
  amortise the corpus pass by at least
  ``REPRO_BENCH_MIN_SERVING_SPEEDUP`` (default 5.0; locally ~10-20x).
  A :class:`QueryProfiler` rides along so the artifact records where each
  path spends its per-query time (gather / matmul / partition).
* **micro-batching server** — the same request stream issued as
  concurrent single-node awaits through :class:`BatchingServer`; the
  artifact records how many engine calls the coalescing window saved.
* **zero-copy pin** — opening a ~50 MB synthetic servable and serving
  100 queries from it must allocate less than 5% of the payload
  (tracemalloc-enforced): the engine works through its preallocated
  workspace over the memory map and never materialises the matrix.

``REPRO_SERVING_BENCH_NODES`` scales the graph (default 20000); CI smoke
runs a reduced node count with the same assertions.  Headline numbers are
written to ``BENCH_serving_*.json``.
"""

from __future__ import annotations

import asyncio
import os
import time
import tracemalloc

import numpy as np
import pytest

from repro import TrainingConfig
from repro.graph import load_dataset
from repro.models import get_method
from repro.serving import (
    BatchingServer,
    QueryEngine,
    QueryProfiler,
    ServableModel,
    write_servable,
)

BENCH_NODES = int(os.environ.get("REPRO_SERVING_BENCH_NODES", "20000"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SERVING_SPEEDUP", "5.0"))
DIM = 64
BATCH = 64
K = 10
ROUNDS = 3
QUERY_ROWS = 512  # queries timed per round


@pytest.fixture(scope="module")
def servable(tmp_path_factory):
    """Train one cheap model on the benchmark graph and export it."""
    graph = load_dataset("smallworld", num_nodes=BENCH_NODES, seed=3)
    config = TrainingConfig(
        embedding_dim=DIM, batch_size=1024, learning_rate=0.1,
        negative_samples=5, epochs=1,
    )
    model = get_method("se_gemb_deg").build(training=config, seed=0)
    model.fit(graph)
    path = tmp_path_factory.mktemp("serving") / "bench.servable"
    model.export_servable(path)
    with ServableModel.open(path) as opened:
        yield opened


def _best_queries_per_sec(engine, batches):
    for batch in batches[:2]:  # warm-up: norms cache, BLAS threads
        engine.top_k(batch, K)
    best = float("inf")
    total = sum(batch.size for batch in batches)
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for batch in batches:
            engine.top_k(batch, K)
        best = min(best, time.perf_counter() - start)
    return total / best


def _phase_means(profiler):
    return profiler.profile().to_dict()["phase_mean_seconds"]


def test_batched_topk_speedup(bench_artifact, servable):
    rng = np.random.default_rng(11)
    nodes = rng.integers(0, servable.num_nodes, size=QUERY_ROWS, dtype=np.int64)

    batched_profiler = QueryProfiler()
    batched_engine = servable.query_engine(
        max_batch=BATCH, max_k=K, profiler=batched_profiler
    )
    batched_qps = _best_queries_per_sec(
        batched_engine, [nodes[i:i + BATCH] for i in range(0, QUERY_ROWS, BATCH)]
    )

    single_profiler = QueryProfiler()
    single_engine = servable.query_engine(
        max_batch=1, max_k=K, profiler=single_profiler
    )
    single_qps = _best_queries_per_sec(
        single_engine, [nodes[i:i + 1] for i in range(QUERY_ROWS)]
    )

    speedup = batched_qps / single_qps
    print()
    print(
        f"top-{K} throughput on the {servable.num_nodes}-node servable "
        f"(r={servable.embedding_dim}, batch={BATCH}):"
    )
    print(f"  single-query  : {single_qps:10.1f} queries/sec")
    print(f"  batched       : {batched_qps:10.1f} queries/sec")
    print(f"  speedup       : {speedup:10.2f}x")
    bench_artifact(
        "serving_topk",
        {
            "nodes": servable.num_nodes,
            "embedding_dim": servable.embedding_dim,
            "k": K,
            "batch": BATCH,
            "query_rows": QUERY_ROWS,
            "single_queries_per_sec": single_qps,
            "batched_queries_per_sec": batched_qps,
            "speedup": speedup,
            "floor": MIN_SPEEDUP,
            "single_phase_mean_seconds": _phase_means(single_profiler),
            "batched_phase_mean_seconds": _phase_means(batched_profiler),
        },
    )
    assert speedup >= MIN_SPEEDUP


def test_batching_server_coalesces(bench_artifact, servable):
    engine = servable.query_engine(max_batch=BATCH, max_k=K)
    requests = 256
    rng = np.random.default_rng(5)
    nodes = rng.integers(0, servable.num_nodes, size=requests)

    async def scenario():
        async with BatchingServer(engine, max_delay=0.002, default_k=K) as server:
            start = time.perf_counter()
            await asyncio.gather(*(server.top_k(int(node)) for node in nodes))
            elapsed = time.perf_counter() - start
            return elapsed, server.stats

    elapsed, stats = asyncio.run(scenario())
    qps = requests / elapsed
    print()
    print(
        f"micro-batching server: {requests} concurrent requests in "
        f"{elapsed * 1e3:.1f} ms ({qps:.0f} req/sec), "
        f"{stats.batches} engine calls, mean batch {stats.mean_batch_size:.1f}"
    )
    bench_artifact(
        "serving_server",
        {
            "nodes": servable.num_nodes,
            "requests": requests,
            "requests_per_sec": qps,
            "elapsed_seconds": elapsed,
            **stats.to_dict(),
        },
    )
    # coalescing must actually batch: far fewer engine calls than requests
    assert stats.batches < requests / 2
    assert stats.coalesced_requests > 0


def test_serving_is_zero_copy(bench_artifact, tmp_path):
    """Open + 100 queries on a ~50 MB servable allocate < 5% of the payload."""
    num_nodes, dim = 200_000, 64
    rng = np.random.default_rng(0)
    payload = rng.standard_normal((num_nodes, dim)).astype(np.float32)
    path = tmp_path / "pin.servable"
    write_servable(path, {"embeddings": payload}, {"method": None})
    payload_nbytes = payload.nbytes
    del payload

    tracemalloc.start()
    with ServableModel.open(path) as servable:
        engine = servable.query_engine(max_batch=16, block_rows=1024, max_k=K)
        for start in range(0, 100, 16):
            nodes = np.arange(start * 7, start * 7 + 16) % num_nodes
            engine.top_k(nodes, K)
        current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    fraction = peak / payload_nbytes
    print()
    print(
        f"zero-copy pin: payload {payload_nbytes / 1e6:.1f} MB, "
        f"python peak {peak / 1e6:.2f} MB ({fraction * 100:.2f}%)"
    )
    bench_artifact(
        "serving_zero_copy",
        {
            "nodes": num_nodes,
            "embedding_dim": dim,
            "payload_bytes": payload_nbytes,
            "traced_peak_bytes": peak,
            "peak_fraction": fraction,
            "budget_fraction": 0.05,
        },
    )
    assert fraction < 0.05
