"""Sparse proximity pipeline benchmark: ~20k nodes, no dense n×n allocation.

Runs the full graph → proximity → Algorithm-1 pool → one training epoch
pipeline on a ~20k-node sparse small-world graph with the CSR-backed
DeepWalk proximity, and asserts through ``tracemalloc`` (which tracks numpy
and scipy buffers) that peak Python-level allocation stays an order of
magnitude below the 8·n² bytes a single dense proximity matrix would cost.
The seed implementation densified at every stage; any regression that
silently reintroduces an n×n ndarray fails the floor assertion here.

Scale knob: ``REPRO_SPARSE_BENCH_NODES`` (default 20000).  Measured numbers
are recorded in ``benchmarks/RESULTS_sparse_proximity.md``.
"""

from __future__ import annotations

import os
import time
import tracemalloc

from repro import TrainingConfig
from repro.embedding import SEGEmbTrainer
from repro.graph import load_dataset
from repro.proximity import DeepWalkProximity

# floor of 4000: below that, fixed interpreter/import overhead (~7 MB)
# dominates the peak and the dense-fraction assertion loses its meaning
NUM_NODES = max(4000, int(os.environ.get("REPRO_SPARSE_BENCH_NODES", "20000")))
#: walk probabilities below this are dropped after each transition power;
#: bounds the fill-in of (D^-1 A)^t without touching the adjacency scale
TRUNCATION_THRESHOLD = 1e-2
TRAINING = TrainingConfig(
    embedding_dim=32, batch_size=1024, learning_rate=0.1, negative_samples=5, epochs=1
)


def test_sparse_proximity_pipeline_never_densifies():
    dense_bytes = 8 * NUM_NODES * NUM_NODES

    tracemalloc.start()
    tracemalloc.reset_peak()
    started = time.perf_counter()

    graph = load_dataset("smallworld", num_nodes=NUM_NODES, seed=3)
    graph_done = time.perf_counter()

    measure = DeepWalkProximity(
        window_size=5, truncation_threshold=TRUNCATION_THRESHOLD
    )
    proximity = measure.compute(graph, sparse=True)
    proximity_done = time.perf_counter()

    trainer = SEGEmbTrainer(graph, proximity, config=TRAINING, seed=0)
    pool_done = time.perf_counter()

    result = trainer.train(1)
    train_done = time.perf_counter()

    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    print()
    print(
        f"sparse proximity pipeline on {NUM_NODES}-node smallworld "
        f"({graph.num_edges} edges):"
    )
    print(f"  graph build             : {graph_done - started:8.2f} s")
    print(
        f"  DeepWalk proximity (CSR) : {proximity_done - graph_done:8.2f} s   "
        f"nnz={proximity.nnz} ({proximity.nnz / NUM_NODES**2:.4%} of n^2)"
    )
    print(f"  Algorithm-1 pool (bulk)  : {pool_done - proximity_done:8.2f} s")
    print(
        f"  1 training epoch (B={TRAINING.batch_size}): {train_done - pool_done:8.3f} s   "
        f"loss={result.final_loss:.4f}"
    )
    print(
        f"  peak allocation          : {peak / 1e6:8.0f} MB   "
        f"(dense n x n would be {dense_bytes / 1e6:.0f} MB)"
    )

    # Floor assertions (smoke mode): the pipeline must stay sparse end to end.
    assert proximity.is_sparse
    assert proximity.nnz < 0.05 * NUM_NODES * NUM_NODES
    # An 8x margin below one dense n×n matrix: a single densification at any
    # stage (proximity, objective binding, sampling, training) trips this.
    assert peak < dense_bytes / 8, (
        f"peak allocation {peak / 1e6:.0f} MB is too close to a dense n x n "
        f"matrix ({dense_bytes / 1e6:.0f} MB) — something densified"
    )
    # The run must have produced a usable epoch, not a degenerate no-op.
    assert result.epochs_run == 1
    assert proximity.min_positive > 0
