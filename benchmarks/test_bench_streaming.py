"""Streaming benchmarks: delta application, invalidation reuse, warm-start refits.

Three headline numbers for the streaming subsystem, all on the ~20k-node
small-world benchmark graph under ~1% edge churn:

* **apply_delta vs rebuild** — incremental CSR-order merge against a full
  ``Graph(n, edited_edge_list)`` re-canonicalisation.  Floor:
  ``REPRO_BENCH_MIN_DELTA_SPEEDUP`` (default 1.0; locally ~3-10x — the
  merge is O(m + k) against the rebuild's O(m log m) sort).
* **planner refresh vs scratch** — the :class:`DeltaPlanner` recomputing
  only the invalidated row block of a truncated DeepWalk matrix against a
  scratch ``measure.compute``.  Floor:
  ``REPRO_BENCH_MIN_INVALIDATION_SPEEDUP`` (default 1.0); the result must
  also match scratch to 1e-8.
* **warm-start refit quality** — the acceptance criterion of the streaming
  subsystem: a refit seeded from the pre-churn artifact must reach cold-fit
  link-prediction AUC (minus ``REPRO_BENCH_WARMSTART_AUC_SLACK``, default
  0.01) in 25% of the cold fit's steps.

``REPRO_STREAMING_BENCH_NODES`` scales the graph (default 20000); CI smoke
runs a reduced node count with the same assertions.  Headline numbers are
written to ``BENCH_streaming_*.json`` and recorded in
``RESULTS_streaming.md``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import EdgeDelta, DeltaPlanner, Graph, TrainingConfig, apply_delta
from repro.evaluation import link_prediction_auc, make_link_prediction_split
from repro.graph import load_dataset
from repro.models import MethodSpec, get_method, register
from repro.proximity import DeepWalkProximity

from conftest import write_bench_artifact

# The paper's se_gemb_dw spec keeps the exact (untruncated) DeepWalk
# matrix, which densifies at benchmark scale; this bench-local variant is
# the same trainer over the truncated CSR backend.  DeepWalk preference is
# the right probe here: its link-prediction AUC improves with training, so
# "warm reaches cold quality in fewer steps" is a meaningful criterion
# (the degree preference plateaus early and drifts, drowning the
# comparison in objective-vs-AUC mismatch).
register(
    MethodSpec(
        name="bench_se_gemb_dw",
        embedder="repro.embedding.trainer:SEGEmbTrainer",
        proximity="deepwalk",
        proximity_params=(("truncation_threshold", 0.01), ("window_size", 5)),
        description="bench-local truncated-DeepWalk SE-GEmb",
    ),
    overwrite=True,
)

BENCH_NODES = int(os.environ.get("REPRO_STREAMING_BENCH_NODES", "20000"))
CHURN = 0.01
ROUNDS = 3
MIN_DELTA_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_DELTA_SPEEDUP", "1.0"))
MIN_INVALIDATION_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_INVALIDATION_SPEEDUP", "1.0")
)
AUC_SLACK = float(os.environ.get("REPRO_BENCH_WARMSTART_AUC_SLACK", "0.01"))
COLD_EPOCHS = int(os.environ.get("REPRO_STREAMING_COLD_EPOCHS", "600"))
WARM_STEP_FRACTION = 0.25  # the acceptance criterion: <= 25% of cold steps


def _bench_graph() -> Graph:
    return load_dataset("smallworld", num_nodes=BENCH_NODES, seed=3)


def _churn_delta(graph: Graph, fraction: float = CHURN, seed: int = 17) -> EdgeDelta:
    """Delete ``fraction`` of the edges and insert as many fresh non-edges."""
    rng = np.random.default_rng(seed)
    edges = graph.edges
    k = max(1, int(edges.shape[0] * fraction))
    deletes = edges[rng.choice(edges.shape[0], size=k, replace=False)]
    existing = {(int(u), int(v)) for u, v in edges.tolist()}
    inserts: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    while len(inserts) < k:
        u, v = rng.integers(0, graph.num_nodes, size=2).tolist()
        if u == v:
            continue
        pair = (min(u, v), max(u, v))
        if pair in existing or pair in seen:
            continue
        seen.add(pair)
        inserts.append(pair)
    return EdgeDelta(inserts=inserts, deletes=deletes)


def _best_seconds(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_apply_delta_beats_rebuild():
    graph = _bench_graph()
    delta = _churn_delta(graph)

    def rebuild() -> Graph:
        edge_set = {(int(u), int(v)) for u, v in graph.edges.tolist()}
        edge_set -= {(int(u), int(v)) for u, v in delta.deletes.tolist()}
        edge_set |= {(int(u), int(v)) for u, v in delta.inserts.tolist()}
        return Graph(graph.num_nodes, sorted(edge_set))

    incremental = apply_delta(graph, delta)
    assert incremental.content_fingerprint() == rebuild().content_fingerprint()

    delta_seconds = _best_seconds(lambda: apply_delta(graph, delta))
    rebuild_seconds = _best_seconds(rebuild)
    speedup = rebuild_seconds / delta_seconds

    write_bench_artifact(
        "streaming_delta",
        {
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "churn_edges": int(delta.num_inserts + delta.num_deletes),
            "apply_delta_seconds": delta_seconds,
            "rebuild_seconds": rebuild_seconds,
            "speedup": speedup,
            "floor": MIN_DELTA_SPEEDUP,
        },
    )
    print(
        f"\napply_delta: {delta_seconds * 1e3:.2f} ms vs rebuild "
        f"{rebuild_seconds * 1e3:.2f} ms ({speedup:.1f}x)"
    )
    assert speedup >= MIN_DELTA_SPEEDUP


def test_planner_refresh_beats_scratch():
    graph = _bench_graph()
    # One streaming *batch* rather than the cumulative 1% churn: the
    # radius-w ball around a thousand touched nodes covers a small-world
    # graph entirely (the planner correctly falls back to full there), so
    # row reuse is exercised at the per-batch granularity it is built for.
    delta = _churn_delta(graph, fraction=4 / graph.num_edges, seed=23)
    new_graph = apply_delta(graph, delta)
    measure = DeepWalkProximity(window_size=3, truncation_threshold=1e-2)
    planner = DeltaPlanner()

    old_matrix = measure.compute(graph, sparse=True)
    result = planner.refresh(
        graph, delta, measure, new_graph=new_graph, sparse=True, old_matrix=old_matrix
    )
    scratch = measure.compute(new_graph, sparse=True)
    diff = result.matrix.sparse_matrix - scratch.sparse_matrix
    error = np.abs(diff.toarray()).max() if diff.nnz else 0.0
    assert error <= 1e-8
    assert result.source == "splice"

    refresh_seconds = _best_seconds(
        lambda: planner.refresh(
            graph,
            delta,
            measure,
            new_graph=new_graph,
            sparse=True,
            old_matrix=old_matrix,
        )
    )
    scratch_seconds = _best_seconds(lambda: measure.compute(new_graph, sparse=True))
    speedup = scratch_seconds / refresh_seconds

    write_bench_artifact(
        "streaming_invalidation",
        {
            "nodes": graph.num_nodes,
            "measure": measure.name,
            "affected_rows": result.plan.num_affected,
            "reuse_fraction": result.plan.reuse_fraction,
            "refresh_seconds": refresh_seconds,
            "scratch_seconds": scratch_seconds,
            "speedup": speedup,
            "max_error": float(error),
            "floor": MIN_INVALIDATION_SPEEDUP,
        },
    )
    print(
        f"\nplanner refresh: {refresh_seconds * 1e3:.1f} ms vs scratch "
        f"{scratch_seconds * 1e3:.1f} ms ({speedup:.1f}x, "
        f"reuse {result.plan.reuse_fraction:.1%})"
    )
    assert speedup >= MIN_INVALIDATION_SPEEDUP


SEEDS = (1, 2)  # AUC differences at bench scale are seed-noisy; average


def _fit_auc(split, epochs: int, warm_start=None, seed: int = 0) -> float:
    config = TrainingConfig(
        embedding_dim=64,
        batch_size=1024,
        learning_rate=0.1,
        negative_samples=5,
        epochs=epochs,
    )
    model = get_method("bench_se_gemb_dw").build(config, seed=seed)
    model.fit(split.training_graph, warm_start=warm_start)
    return link_prediction_auc(model.embeddings_, split)


def test_warm_start_refit_reaches_cold_quality(tmp_path):
    graph_old = _bench_graph()
    delta = _churn_delta(graph_old)
    graph_new = apply_delta(graph_old, delta)
    split = make_link_prediction_split(graph_new, seed=11)

    # The donor sees the *pre-churn* graph, scrubbed of the post-churn test
    # positives so the refit comparison is leak-free.
    donor_graph = graph_old.subgraph_without_edges(split.test_positive)
    donor_config = TrainingConfig(
        embedding_dim=64,
        batch_size=1024,
        learning_rate=0.1,
        negative_samples=5,
        epochs=COLD_EPOCHS,
    )
    donor = get_method("bench_se_gemb_dw").build(donor_config, seed=0)
    donor_start = time.perf_counter()
    donor.fit(donor_graph)
    donor_seconds = time.perf_counter() - donor_start
    artifact = tmp_path / "donor.npz"
    donor.save(artifact)

    warm_epochs = max(1, int(COLD_EPOCHS * WARM_STEP_FRACTION))
    cold_start = time.perf_counter()
    auc_cold = float(
        np.mean([_fit_auc(split, COLD_EPOCHS, seed=seed) for seed in SEEDS])
    )
    cold_seconds = (time.perf_counter() - cold_start) / len(SEEDS)
    warm_start_time = time.perf_counter()
    auc_warm = float(
        np.mean(
            [
                _fit_auc(split, warm_epochs, warm_start=str(artifact), seed=seed)
                for seed in SEEDS
            ]
        )
    )
    warm_seconds = (time.perf_counter() - warm_start_time) / len(SEEDS)

    write_bench_artifact(
        "streaming_warmstart",
        {
            "nodes": graph_new.num_nodes,
            "edges": graph_new.num_edges,
            "churn_edges": int(delta.num_inserts + delta.num_deletes),
            "cold_epochs": COLD_EPOCHS,
            "warm_epochs": warm_epochs,
            "step_fraction": WARM_STEP_FRACTION,
            "auc_cold": auc_cold,
            "auc_warm": auc_warm,
            "auc_slack": AUC_SLACK,
            "donor_fit_seconds": donor_seconds,
            "cold_fit_seconds": cold_seconds,
            "warm_fit_seconds": warm_seconds,
        },
    )
    print(
        f"\nwarm-start refit: AUC {auc_warm:.4f} in {warm_epochs} steps vs cold "
        f"{auc_cold:.4f} in {COLD_EPOCHS} steps "
        f"({warm_seconds:.1f}s vs {cold_seconds:.1f}s)"
    )
    assert auc_warm + AUC_SLACK >= auc_cold
