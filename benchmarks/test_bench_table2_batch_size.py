"""Table II: StrucEqu versus batch size B (SE-PrivGEmb DW / Deg, ε = 3.5)."""

from __future__ import annotations

from repro.experiments import table_batch_size


def test_table2_batch_size(benchmark, quick_bench_settings):
    """Regenerate Table II and print the resulting rows."""
    table = benchmark.pedantic(
        table_batch_size,
        kwargs={"settings": quick_bench_settings, "batch_sizes": (32, 64, 128)},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())
    assert len(table) == len(quick_bench_settings.datasets) * 2 * 3
    for value in table.column("strucequ_mean"):
        assert -1.0 <= value <= 1.0
