"""Table III: StrucEqu versus learning rate η (SE-PrivGEmb DW / Deg, ε = 3.5)."""

from __future__ import annotations

from repro.experiments import table_learning_rate


def test_table3_learning_rate(benchmark, quick_bench_settings):
    """Regenerate Table III and print the resulting rows."""
    table = benchmark.pedantic(
        table_learning_rate,
        kwargs={"settings": quick_bench_settings, "learning_rates": (0.01, 0.1, 0.3)},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())
    assert len(table) == len(quick_bench_settings.datasets) * 2 * 3
    for value in table.column("strucequ_mean"):
        assert -1.0 <= value <= 1.0
