"""Table IV: StrucEqu versus gradient clipping threshold C (ε = 3.5)."""

from __future__ import annotations

from repro.experiments import table_clipping


def test_table4_clipping_threshold(benchmark, quick_bench_settings):
    """Regenerate Table IV and print the resulting rows."""
    table = benchmark.pedantic(
        table_clipping,
        kwargs={"settings": quick_bench_settings, "thresholds": (1.0, 2.0, 4.0)},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())
    assert len(table) == len(quick_bench_settings.datasets) * 2 * 3
    for value in table.column("strucequ_mean"):
        assert -1.0 <= value <= 1.0
