"""Table V: StrucEqu versus negative sampling number k (ε = 3.5)."""

from __future__ import annotations

from repro.experiments import table_negative_samples


def test_table5_negative_samples(benchmark, quick_bench_settings):
    """Regenerate Table V and print the resulting rows."""
    table = benchmark.pedantic(
        table_negative_samples,
        kwargs={"settings": quick_bench_settings, "negative_samples": (1, 3, 5, 7)},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())
    assert len(table) == len(quick_bench_settings.datasets) * 2 * 4
    for value in table.column("strucequ_mean"):
        assert -1.0 <= value <= 1.0
