"""Table VI: naive (Eq. 6) versus non-zero (Eq. 9) perturbation.

The headline ablation of the paper: across datasets and privacy budgets, the
non-zero strategy must dominate the naive strategy by a wide margin.
"""

from __future__ import annotations

from repro.experiments import table_perturbation


def test_table6_perturbation_strategies(benchmark, quick_bench_settings):
    """Regenerate Table VI and check the non-zero strategy wins on average."""
    table = benchmark.pedantic(
        table_perturbation,
        kwargs={"settings": quick_bench_settings, "epsilons": (0.5, 2.0, 3.5)},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())
    assert len(table) == len(quick_bench_settings.datasets) * 2 * 3

    naive = table.column("naive_mean")
    nonzero = table.column("nonzero_mean")
    # Paper-shape check: the non-zero strategy preserves far more structure on
    # average (individual cells can be noisy at this reduced scale).
    assert sum(nonzero) / len(nonzero) > sum(naive) / len(naive)
