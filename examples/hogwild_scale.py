"""Million-node hogwild training: build big, shard the step stream, train.

Run with:

    python examples/hogwild_scale.py

The script builds a million-node preferential-attachment graph with the
vectorised (``method="batched"``) generator, trains the non-private SE
trainer over it with hogwild workers sharing the embedding matrices through
``multiprocessing.shared_memory``, and reports throughput plus the
per-worker step/loss reports.

Set ``REPRO_EXAMPLE_SMOKE=1`` to shrink the run to CI-smoke size
(20k nodes).  Set ``REPRO_HOGWILD_WORKERS`` to change the worker count
(default 2).
"""

from __future__ import annotations

import os
import time

from repro import TrainingConfig
from repro.embedding import SEGEmbTrainer
from repro.graph.generators import barabasi_albert_graph
from repro.proximity import get_proximity

SMOKE = os.environ.get("REPRO_EXAMPLE_SMOKE") == "1"
NUM_NODES = 20_000 if SMOKE else 1_000_000
STEPS = 200 if SMOKE else 2_000
WORKERS = int(os.environ.get("REPRO_HOGWILD_WORKERS", "2"))


def main() -> None:
    started = time.perf_counter()
    graph = barabasi_albert_graph(NUM_NODES, 3, seed=7, method="batched")
    print(
        f"Built {graph} in {time.perf_counter() - started:.1f}s "
        f"(batched Batagelj-Brandes generator)"
    )

    training = TrainingConfig(
        embedding_dim=32,
        epochs=STEPS,
        batch_size=128,
        learning_rate=0.05,
        negative_samples=5,
    )
    trainer = SEGEmbTrainer(
        proximity=get_proximity("degree"),
        config=training,
        seed=11,
        fast_path=True,
        workers=WORKERS,
    )

    started = time.perf_counter()
    trainer.fit(graph)
    elapsed = time.perf_counter() - started
    result = trainer.result_

    print(
        f"Trained {result.epochs_run} steps across {WORKERS} workers "
        f"in {elapsed:.1f}s ({result.epochs_run / elapsed:.0f} steps/s)"
    )
    print(f"Final loss: {result.losses[-1]:.4f}")
    if trainer.last_worker_reports:
        for report in trainer.last_worker_reports:
            print(
                f"  shard {report.shard}: {report.steps} steps in pid {report.pid}"
            )
    print(f"Embeddings: {trainer.embeddings_.shape} ({trainer.embeddings_.dtype})")


if __name__ == "__main__":
    main()
