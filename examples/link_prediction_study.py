"""Link-prediction study: AUC versus privacy budget (a slice of Figure 4).

For each privacy budget, the script fits SE-PrivGEmb on the 90% training
graph of a fresh link-prediction split and scores the held-out edges against
an equal number of sampled non-edges, alongside the non-private SE-GEmb
upper bound.  Both methods come from the same registry and are fitted
through the same ``build(...).fit(graph)`` estimator surface.

Run with:

    python examples/link_prediction_study.py [dataset]

Set ``REPRO_EXAMPLE_SMOKE=1`` to shrink the run to CI-smoke size.
"""

from __future__ import annotations

import os
import sys

from repro import (
    PrivacyConfig,
    TrainingConfig,
    get_method,
    link_prediction_auc,
    load_dataset,
    make_link_prediction_split,
)

SMOKE = os.environ.get("REPRO_EXAMPLE_SMOKE") == "1"


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "chameleon"
    graph = load_dataset(dataset, scale=0.2 if SMOKE else 0.4, seed=0)
    print(f"Loaded {graph}")

    training = TrainingConfig(
        embedding_dim=8 if SMOKE else 16,
        batch_size=96,
        learning_rate=0.1,
        negative_samples=5,
        epochs=40 if SMOKE else 200,
    )
    split = make_link_prediction_split(graph, test_fraction=0.1, seed=0)

    # The split's training graph is throwaway, so the DeepWalk proximity is
    # computed ephemerally (proximity_cache="off") instead of staying
    # pinned in the process-wide cache; both methods share it by fitting
    # the non-private model first and reusing its matrix.
    nonprivate = (
        get_method("se_gemb_dw")
        .build(training, seed=0, proximity_cache="off")
        .fit(split.training_graph)
    )
    auc = link_prediction_auc(nonprivate.embeddings_, split)
    print(f"non-private SE-GEmb DW : AUC = {auc:.4f}")

    spec = get_method("se_privgemb_dw")
    epsilons = (0.5, 3.5) if SMOKE else (0.5, 1.5, 2.5, 3.5)
    for epsilon in epsilons:
        model = spec.build(
            training,
            PrivacyConfig(epsilon=epsilon),
            seed=0,
            proximity_cache="off",
        ).fit(split.training_graph, proximity=nonprivate.proximity_matrix)
        auc = link_prediction_auc(model.embeddings_, split)
        spent = model.result_.privacy_spent
        print(
            f"SE-PrivGEmb DW ε={epsilon:<4}: AUC = {auc:.4f} "
            f"({model.result_.epochs_run} private epochs, spent {spent.epsilon:.2f})"
        )


if __name__ == "__main__":
    main()
