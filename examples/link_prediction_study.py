"""Link-prediction study: AUC versus privacy budget (a slice of Figure 4).

For each privacy budget, the script trains SE-PrivGEmb on the 90% training
graph of a fresh link-prediction split and scores the held-out edges against
an equal number of sampled non-edges, alongside the non-private SE-GEmb
upper bound.

Run with:

    python examples/link_prediction_study.py [dataset]
"""

from __future__ import annotations

import sys

from repro import (
    PrivacyConfig,
    SEGEmbTrainer,
    SEPrivGEmbTrainer,
    TrainingConfig,
    DeepWalkProximity,
    link_prediction_auc,
    load_dataset,
    make_link_prediction_split,
)


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "chameleon"
    graph = load_dataset(dataset, scale=0.4, seed=0)
    print(f"Loaded {graph}")

    training = TrainingConfig(
        embedding_dim=16, batch_size=96, learning_rate=0.1, negative_samples=5, epochs=200
    )
    proximity = DeepWalkProximity(window_size=5)
    split = make_link_prediction_split(graph, test_fraction=0.1, seed=0)

    nonprivate = SEGEmbTrainer(split.training_graph, proximity, config=training, seed=0).train()
    print(f"non-private SE-GEmb DW : AUC = {link_prediction_auc(nonprivate.embeddings, split):.4f}")

    for epsilon in (0.5, 1.5, 2.5, 3.5):
        trainer = SEPrivGEmbTrainer(
            split.training_graph,
            proximity,
            training_config=training,
            privacy_config=PrivacyConfig(epsilon=epsilon),
            seed=0,
        )
        result = trainer.train()
        auc = link_prediction_auc(result.embeddings, split)
        print(
            f"SE-PrivGEmb DW ε={epsilon:<4}: AUC = {auc:.4f} "
            f"({result.epochs_run} private epochs, spent {result.privacy_spent.epsilon:.2f})"
        )


if __name__ == "__main__":
    main()
