"""Illustration of the private update of W_in (the paper's Figure 2).

Builds one batch of edge subgraphs, computes the structure-preference
gradients, and shows how the two perturbation strategies treat the gradient
matrix differently:

* naive (Eq. 6): every row of the gradient receives Gaussian noise calibrated
  to sensitivity B·C, including rows whose true gradient is exactly zero;
* non-zero (Eq. 9): only rows actually touched by the batch receive noise,
  calibrated to sensitivity C.

Run with:

    python examples/perturbation_illustration.py
"""

from __future__ import annotations

import numpy as np

from repro import TrainingConfig, load_dataset
from repro.embedding.objectives import StructurePreferenceObjective
from repro.embedding.perturbation import NaivePerturbation, NonZeroPerturbation
from repro.embedding.skipgram import SkipGramModel
from repro.graph.sampling import SubgraphSampler, UnigramNegativeSampler, generate_disjoint_subgraphs
from repro.proximity import DeepWalkProximity


def main() -> None:
    graph = load_dataset("smallworld", num_nodes=40, seed=0)
    config = TrainingConfig(embedding_dim=3, batch_size=8, negative_samples=2, epochs=1)

    proximity = DeepWalkProximity(window_size=3).compute(graph)
    objective = StructurePreferenceObjective(proximity)
    model = SkipGramModel(graph.num_nodes, config.embedding_dim, seed=0)

    sampler = UnigramNegativeSampler(graph, seed=0)
    subgraphs = generate_disjoint_subgraphs(graph, sampler, config.negative_samples)
    batch = SubgraphSampler(subgraphs, config.batch_size, seed=0).sample_batch()

    example_gradients = [
        objective.example_gradients(model.w_in, model.w_out, subgraph) for subgraph in batch
    ]
    touched = sorted({g.center for g in example_gradients})
    print(f"Batch of {len(batch)} edges touches W_in rows: {touched}\n")

    naive = NaivePerturbation(clipping_threshold=2.0, noise_multiplier=5.0, seed=1)
    nonzero = NonZeroPerturbation(clipping_threshold=2.0, noise_multiplier=5.0, seed=1)

    naive_grad = naive.perturb(example_gradients, graph.num_nodes, config.embedding_dim)
    nonzero_grad = nonzero.perturb(example_gradients, graph.num_nodes, config.embedding_dim)

    np.set_printoptions(precision=3, suppress=True)
    show = min(10, graph.num_nodes)
    print(f"Naive perturbation (Eq. 6), sensitivity B·C = {naive.sensitivity(len(batch)):.0f}")
    print("first rows of the noisy W_in gradient (every row is noisy):")
    print(naive_grad.w_in_gradient[:show])
    print()
    print(f"Non-zero perturbation (Eq. 9), sensitivity C = {nonzero.sensitivity(len(batch)):.0f}")
    print("first rows of the noisy W_in gradient (untouched rows stay exactly zero):")
    print(nonzero_grad.w_in_gradient[:show])
    print()
    ratio = np.linalg.norm(naive_grad.w_in_gradient) / np.linalg.norm(nonzero_grad.w_in_gradient)
    print(f"Frobenius-norm ratio naive / non-zero: {ratio:.1f}x more noise under Eq. (6)")


if __name__ == "__main__":
    main()
