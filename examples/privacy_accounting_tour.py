"""A tour of the privacy accounting used by SE-PrivGEmb.

Shows, for the paper's default noise multiplier σ = 5 and δ = 1e-5:

* how the subsampled-Gaussian RDP curve is amplified by the sampling rate
  γ = B / |E| (Theorem 4),
* how many private epochs each target ε admits (Algorithm 2's stop rule),
* how the Moments-Accountant bound used by the DPGGAN/DPGVAE baselines
  compares at the same parameters.

Run with:

    python examples/privacy_accounting_tour.py
"""

from __future__ import annotations

from repro import MomentsAccountant, RdpAccountant, load_dataset
from repro.config import TrainingConfig


def main() -> None:
    graph = load_dataset("chameleon", scale=0.5, seed=0)
    training = TrainingConfig(batch_size=128)
    sampling_rate = min(training.batch_size, graph.num_edges) / graph.num_edges
    print(f"{graph}")
    print(f"batch size B = {training.batch_size}, |E| = {graph.num_edges}, γ = {sampling_rate:.4f}\n")

    delta = 1e-5
    accountant = RdpAccountant(noise_multiplier=5.0, sampling_rate=sampling_rate)
    moments = MomentsAccountant(noise_multiplier=5.0, sampling_rate=sampling_rate)

    print("target ε   max private epochs (RDP)   max steps (Moments Accountant)")
    for epsilon in (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5):
        rdp_steps = accountant.max_steps(epsilon, delta)
        ma_steps = moments.max_steps(epsilon, delta)
        print(f"{epsilon:>8}   {rdp_steps:>24}   {ma_steps:>30}")

    print("\nPrivacy actually spent after 200 epochs at γ above:")
    accountant.step(200)
    print(f"  {accountant.get_privacy_spent(delta)}")

    print("\nAmplification effect: per-step ε(α=8) with and without subsampling")
    full = RdpAccountant(noise_multiplier=5.0, sampling_rate=1.0)
    idx = list(full.alphas).index(8.0)
    print(f"  without subsampling: {full.per_step_rdp[idx]:.5f}")
    print(f"  with γ = {sampling_rate:.4f}:  {accountant.per_step_rdp[idx]:.7f}")


if __name__ == "__main__":
    main()
