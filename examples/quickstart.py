"""Quickstart: train SE-PrivGEmb through the estimator API and evaluate it.

Run with:

    python examples/quickstart.py

The script loads the Chameleon stand-in graph, resolves the paper's
flagship method from the declarative registry, fits it as a differentially
private estimator, reports the privacy actually spent, evaluates both
downstream tasks from the paper (structural equivalence and link
prediction), and round-trips the fitted model through a persisted artifact.

Set ``REPRO_EXAMPLE_SMOKE=1`` to shrink the run to CI-smoke size.
"""

from __future__ import annotations

import os
import tempfile

from repro import (
    Embedder,
    PrivacyConfig,
    TrainingConfig,
    get_method,
    link_prediction_auc,
    load_dataset,
    make_link_prediction_split,
    structural_equivalence_score,
)
from repro.proximity import default_proximity_cache

SMOKE = os.environ.get("REPRO_EXAMPLE_SMOKE") == "1"


def main() -> None:
    graph = load_dataset("chameleon", scale=0.25 if SMOKE else 0.5, seed=0)
    print(f"Loaded {graph}")

    training = TrainingConfig(
        embedding_dim=16 if SMOKE else 32,
        batch_size=128,
        learning_rate=0.1,
        negative_samples=5,
        epochs=40 if SMOKE else 200,
    )
    privacy = PrivacyConfig(epsilon=3.5, delta=1e-5, noise_multiplier=5.0, clipping_threshold=2.0)

    # Every method of the paper is one registry entry; the spec knows its
    # trainer class, proximity factory, perturbation and privacy flag.
    spec = get_method("se_privgemb_dw")
    print(f"Method {spec.name!r}: private={spec.private}, proximity={spec.proximity!r}")

    # build() -> unfitted estimator; fit(graph) trains it.  The DeepWalk
    # proximity matrix is resolved through the process-wide cache
    # (proximity_cache="default"), so a second fit on the same graph —
    # another model, a sweep, an ε study — never recomputes it.
    model = spec.build(training, privacy, seed=0).fit(graph)
    cache = default_proximity_cache()
    print(f"Proximity cache after fit: {cache.hits} hits, {cache.misses} misses")

    result = model.result_
    print(f"Trained for {result.epochs_run} epochs; privacy spent: {result.privacy_spent}")

    strucequ = structural_equivalence_score(graph, model.embeddings_)
    print(f"Structural equivalence (StrucEqu): {strucequ:.4f}")

    split = make_link_prediction_split(graph, seed=0)
    auc = link_prediction_auc(model.embeddings_, split)
    print(f"Link prediction AUC on held-out edges: {auc:.4f}")

    # The fitted model is a persistable artifact: one .npz file carrying
    # the embeddings plus the method spec, configs, dataset/proximity
    # fingerprints and the budget spent.  load() round-trips bit-exactly.
    with tempfile.TemporaryDirectory() as directory:
        path = os.path.join(directory, "se_privgemb_dw.npz")
        model.save(path)
        reloaded = Embedder.load(path)
        identical = (reloaded.embeddings_ == model.embeddings_).all()
        print(
            f"Artifact round-trip: identical={bool(identical)}, "
            f"spent={reloaded.result_.privacy_spent}"
        )

    # Cached reuse: a second model on the same graph hits the cache.
    spec.build(training, privacy, seed=1).fit(graph)
    print(f"Proximity cache after a second fit: {cache.hits} hits, {cache.misses} misses")


if __name__ == "__main__":
    main()
