"""Quickstart: train SE-PrivGEmb on a built-in dataset and evaluate it.

Run with:

    python examples/quickstart.py

The script loads the Chameleon stand-in graph, trains the differentially
private SE-PrivGEmb embedding with the DeepWalk structure preference, reports
the privacy actually spent, and evaluates both downstream tasks from the
paper (structural equivalence and link prediction).
"""

from __future__ import annotations

from repro import (
    PrivacyConfig,
    SEPrivGEmbTrainer,
    TrainingConfig,
    link_prediction_auc,
    load_dataset,
    make_link_prediction_split,
    structural_equivalence_score,
)
from repro.proximity import compute_proximity, default_proximity_cache


def main() -> None:
    graph = load_dataset("chameleon", scale=0.5, seed=0)
    print(f"Loaded {graph}")

    training = TrainingConfig(
        embedding_dim=32,
        batch_size=128,
        learning_rate=0.1,
        negative_samples=5,
        epochs=200,
    )
    privacy = PrivacyConfig(epsilon=3.5, delta=1e-5, noise_multiplier=5.0, clipping_threshold=2.0)

    # The proximity is deterministic given the graph, so route it through the
    # cache: the first call computes the matrix, repeated runs on the same
    # graph — a second trainer, a sweep, another script invocation with a
    # disk-backed cache — reuse it without recomputing.  (Pass
    # truncation_threshold > 0 for the CSR-backed scale path.)
    proximity = compute_proximity("deepwalk", graph, window_size=5)
    cache = default_proximity_cache()
    print(f"Proximity: {proximity} (cache: {cache.hits} hits, {cache.misses} misses)")

    trainer = SEPrivGEmbTrainer(
        graph,
        proximity,
        training_config=training,
        privacy_config=privacy,
        seed=0,
    )
    print(f"Budget allows at most {trainer.max_private_epochs()} private epochs")

    result = trainer.train()
    print(f"Trained for {result.epochs_run} epochs; privacy spent: {result.privacy_spent}")

    strucequ = structural_equivalence_score(graph, result.embeddings)
    print(f"Structural equivalence (StrucEqu): {strucequ:.4f}")

    split = make_link_prediction_split(graph, seed=0)
    auc = link_prediction_auc(result.embeddings, split)
    print(f"Link prediction AUC on held-out edges: {auc:.4f}")

    # Cached reuse: asking for the same proximity again is a hit, no recompute.
    compute_proximity("deepwalk", graph, window_size=5)
    print(f"Proximity cache after reuse: {cache.hits} hits, {cache.misses} misses")


if __name__ == "__main__":
    main()
