"""Serving quickstart: train once, export, memory-map, query in batches.

Run with:

    python examples/serving_quickstart.py

The script trains a non-private SE-GEmb model on the small-world stand-in
graph, exports it as a memory-mapped *servable* directory, inspects the
artifact without loading its payload, answers batched top-k and
link-probability queries through the zero-allocation query engine, and
finally serves concurrent single-node requests through the asyncio
micro-batching front end.

Set ``REPRO_EXAMPLE_SMOKE=1`` to shrink the run to CI-smoke size.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
from pathlib import Path

from repro import TrainingConfig, get_method, load_dataset
from repro.models import peek_artifact
from repro.serving import BatchingServer, QueryProfiler, ServableModel

SMOKE = os.environ.get("REPRO_EXAMPLE_SMOKE") == "1"


def main() -> None:
    graph = load_dataset("smallworld", num_nodes=500 if SMOKE else 5000, seed=0)
    print(f"Loaded {graph}")

    training = TrainingConfig(
        embedding_dim=16 if SMOKE else 64,
        batch_size=128,
        learning_rate=0.1,
        negative_samples=5,
        epochs=20 if SMOKE else 100,
    )
    model = get_method("se_gemb_deg").build(training=training, seed=0)
    model.fit(graph)
    print(f"Trained {type(model).__name__}: final loss {model.result_.final_loss:.4f}")

    with tempfile.TemporaryDirectory() as workdir:
        artifact = Path(workdir) / "model.npz"
        model.save(artifact)

        # peek_artifact reads metadata + array headers only — O(metadata)
        # however large the model is
        peeked = peek_artifact(artifact)
        shapes = {name: info["shape"] for name, info in peeked["arrays"].items()}
        print(f"Artifact holds method={peeked['method']!r}, arrays={shapes}")

        # export once; every subsequent open is zero-copy (mmap)
        servable_path = Path(workdir) / "model.servable"
        model.export_servable(servable_path)
        with ServableModel.open(servable_path) as servable:
            print(
                f"Opened servable: {servable.num_nodes} nodes x "
                f"{servable.embedding_dim} dims, payload "
                f"{servable.payload_nbytes / 1e6:.1f} MB memory-mapped"
            )

            profiler = QueryProfiler()
            engine = servable.query_engine(profiler=profiler)
            nodes = list(range(0, servable.num_nodes, servable.num_nodes // 8))
            result = engine.top_k(nodes, k=5)
            for row, node in enumerate(nodes[:3]):
                pairs = ", ".join(
                    f"{int(nid)}:{float(score):.3f}"
                    for nid, score in zip(result.ids[row], result.scores[row], strict=True)
                )
                print(f"  top-5 of node {node}: {pairs}")

            probs = engine.score_links(nodes[:4], nodes[1:5])
            print("  link probabilities:", [f"{p:.3f}" for p in probs])

            profile = profiler.profile()
            phase_means = profile.to_dict()["phase_mean_seconds"]
            breakdown = ", ".join(
                f"{phase}={seconds * 1e6:.1f}us" for phase, seconds in phase_means.items()
            )
            print(f"  per-query phase means: {breakdown}")

            # the asyncio front end coalesces concurrent single-node
            # requests into vectorized engine calls
            async def serve() -> None:
                async with BatchingServer(engine, max_delay=0.002, default_k=5) as server:
                    answers = await asyncio.gather(
                        *(server.top_k(node) for node in range(32))
                    )
                    ids, _ = answers[0]
                    print(
                        f"  served {server.stats.requests} concurrent requests in "
                        f"{server.stats.batches} engine calls "
                        f"(mean batch {server.stats.mean_batch_size:.1f}); "
                        f"node 0 -> {list(map(int, ids))}"
                    )

            asyncio.run(serve())

        # a loaded estimator serves without refitting or exporting
        from repro import Embedder

        engine = Embedder.load(artifact).as_servable()
        reloaded = engine.top_k([nodes[0]], k=5)
        assert (reloaded.ids[0] == result.ids[0]).all()
        print("Reloaded estimator serves identical answers via as_servable()")


if __name__ == "__main__":
    main()
