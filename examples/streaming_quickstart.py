"""Streaming quickstart: edge deltas, cached-row reuse, warm refits, the ledger.

Run with:

    python examples/streaming_quickstart.py

The script walks one full streaming episode:

1. a batch of edge churn arrives as an :class:`~repro.EdgeDelta` and is
   applied incrementally with :func:`~repro.apply_delta`;
2. the :class:`~repro.DeltaPlanner` decides which rows of each cached
   proximity matrix survive the delta and splices only the invalidated
   block;
3. a private refit is *warm-started* from the pre-churn artifact instead
   of training from scratch;
4. every private fit and every delta is recorded in a persistent
   :class:`~repro.PrivacyLedger`, which composes the cumulative (ε, δ)
   across the whole lineage and refuses refits that would blow the budget.

Set ``REPRO_EXAMPLE_SMOKE=1`` to shrink the run to CI-smoke size.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    DeltaPlanner,
    EdgeDelta,
    PrivacyBudgetExhausted,
    PrivacyConfig,
    PrivacyLedger,
    TrainingConfig,
    apply_delta,
    get_method,
    load_dataset,
)
from repro.proximity import CommonNeighborsProximity

SMOKE = os.environ.get("REPRO_EXAMPLE_SMOKE") == "1"
NUM_NODES = 300 if SMOKE else 2000
EPOCHS = 10 if SMOKE else 60


def make_churn(graph, count: int, seed: int) -> EdgeDelta:
    """A small streaming batch: delete ``count`` edges, insert ``count`` new ones."""
    rng = np.random.default_rng(seed)
    edges = graph.edges
    deletes = edges[rng.choice(edges.shape[0], size=count, replace=False)]
    existing = {(int(u), int(v)) for u, v in edges.tolist()}
    inserts: list[tuple[int, int]] = []
    while len(inserts) < count:
        u, v = sorted(rng.integers(0, graph.num_nodes, size=2).tolist())
        if u != v and (u, v) not in existing and (u, v) not in inserts:
            inserts.append((u, v))
    return EdgeDelta(inserts=inserts, deletes=deletes)


def main() -> None:
    graph = load_dataset("smallworld", num_nodes=NUM_NODES, seed=0)
    print(f"Loaded {graph}")

    # -- 1. an edge-churn batch arrives ---------------------------------- #
    delta = make_churn(graph, count=3 if SMOKE else 10, seed=1)
    updated = apply_delta(graph, delta)
    print(f"Applied {delta}: {graph.num_edges} -> {updated.num_edges} edges")

    # -- 2. incremental proximity invalidation --------------------------- #
    measure = CommonNeighborsProximity()
    planner = DeltaPlanner()
    old_matrix = measure.compute(graph, sparse=True)
    result = planner.refresh(
        graph, delta, measure, new_graph=updated, sparse=True, old_matrix=old_matrix
    )
    plan = result.plan
    print(
        f"Planner kept {plan.num_reused}/{plan.num_rows} rows of "
        f"{measure.name!r} (source={result.source}, radius={plan.radius})"
    )

    training = TrainingConfig(
        embedding_dim=8 if SMOKE else 32,
        batch_size=64,
        learning_rate=0.1,
        negative_samples=3,
        epochs=EPOCHS,
    )
    privacy = PrivacyConfig(
        epsilon=3.5, delta=1e-5, noise_multiplier=5.0, clipping_threshold=2.0
    )

    with tempfile.TemporaryDirectory() as workdir:
        ledger = PrivacyLedger(Path(workdir) / "ledger.json")

        # -- 3. first private fit, recorded in the ledger ---------------- #
        model = get_method("se_privgemb_deg").build(training, privacy, seed=0)
        model.fit(graph, ledger=ledger)
        artifact = Path(workdir) / "model.npz"
        model.save(artifact)
        spent = ledger.total_spent()
        print(f"Fit #1 done: ledger ε={spent.epsilon:.3f} after {ledger.total_steps()} steps")

        # -- 4. the delta advances the lineage, then a warm refit -------- #
        ledger.record_delta(graph, updated, delta)
        refit = get_method("se_privgemb_deg").build(training, privacy, seed=1)
        refit.fit(updated, warm_start=str(artifact), ledger=ledger)
        spent = ledger.total_spent()
        print(
            f"Warm refit done ({refit._last_warm_start['copied_rows']} rows seeded): "
            f"cumulative ε={spent.epsilon:.3f} over {ledger.total_steps()} steps"
        )

        # -- 5. the ledger refuses a refit the budget cannot afford ------ #
        remaining = ledger.remaining_steps(
            privacy.epsilon,
            privacy.delta,
            noise_multiplier=privacy.noise_multiplier,
            sampling_rate=model.accountant.sampling_rate,
        )
        print(f"Budget ε={privacy.epsilon} admits {remaining} more steps")
        # A target equal to what is already spent admits nothing: the
        # admission check refuses *before* any training happens.
        exhausted = PrivacyConfig(
            epsilon=spent.epsilon,
            delta=privacy.delta,
            noise_multiplier=privacy.noise_multiplier,
            clipping_threshold=privacy.clipping_threshold,
        )
        try:
            strict = get_method("se_privgemb_deg").build(training, exhausted, seed=2)
            strict.fit(updated, ledger=ledger)
        except PrivacyBudgetExhausted as refusal:
            print(f"Refused before spending: {refusal}")

        summary = ledger.summary()
        print(
            f"Ledger: {summary['fits']} fits + {summary['deltas']} delta over "
            f"lineage head {summary['dataset_fingerprint'][:12]}..., "
            f"ε={summary['epsilon']:.3f} at δ={summary['delta']}"
        )


if __name__ == "__main__":
    main()
