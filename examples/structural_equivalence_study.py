"""Structural-equivalence study: private vs non-private vs DP baselines.

Reproduces a single-dataset slice of Figure 3: for a sweep of privacy
budgets, it trains SE-PrivGEmb (DeepWalk and degree preferences), the
non-private SE-GEmb upper bound, and the GAP/ProGAP/DPGVAE baselines, and
prints the StrucEqu series.  Method names are validated through the
declarative registry (``repro.models.available_methods()``).

Run with:

    python examples/structural_equivalence_study.py [dataset]

where ``dataset`` is one of the registered dataset names (default
``chameleon``).  Set ``REPRO_EXAMPLE_SMOKE=1`` to shrink the run to
CI-smoke size.
"""

from __future__ import annotations

import os
import sys

from repro import PrivacyConfig, TrainingConfig, get_method, load_dataset
from repro.experiments import figure_structural_equivalence, ExperimentSettings

SMOKE = os.environ.get("REPRO_EXAMPLE_SMOKE") == "1"


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "chameleon"
    settings = ExperimentSettings(
        datasets=(dataset,),
        dataset_scale=0.2 if SMOKE else 0.4,
        repeats=1 if SMOKE else 2,
        training=TrainingConfig(
            embedding_dim=8 if SMOKE else 16,
            batch_size=96,
            learning_rate=0.1,
            negative_samples=5,
            epochs=20 if SMOKE else 150,
        ),
        privacy=PrivacyConfig(),
        epsilons=(0.5, 3.5) if SMOKE else (0.5, 1.5, 2.5, 3.5),
        seed=11,
    )
    methods = (
        ("se_gemb_dw", "se_privgemb_dw", "gap")
        if SMOKE
        else (
            "dpgvae",
            "gap",
            "progap",
            "se_gemb_dw",
            "se_privgemb_dw",
            "se_privgemb_deg",
        )
    )
    # fail fast (with a did-you-mean hint) before any training starts
    methods = tuple(get_method(name).name for name in methods)
    print(f"Running structural-equivalence sweep on {dataset!r} (this takes a few minutes)")
    table = figure_structural_equivalence(settings, methods=methods)
    print(table.to_text())

    best = table.best_row("strucequ_mean")
    print(
        f"\nBest cell: {best['method']} at ε={best['epsilon']} "
        f"with StrucEqu {best['strucequ_mean']:.4f}"
    )


if __name__ == "__main__":
    main()
