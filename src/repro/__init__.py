"""SE-PrivGEmb: structure-preference enabled graph embedding under differential privacy.

Reproduction of Zhang, Ye & Hu, *Structure-Preference Enabled Graph Embedding
Generation under Differential Privacy* (ICDE 2025).

The most common entry points are re-exported here.  Every method is an
:class:`~repro.models.Embedder` built from the declarative method registry:

>>> from repro import load_dataset, get_method
>>> graph = load_dataset("chameleon", scale=0.3)
>>> model = get_method("se_privgemb_dw").build(seed=0).fit(graph)
>>> model.embeddings_.shape[0] == graph.num_nodes
True
>>> model.result_.privacy_spent is not None
True
"""

from .config import PrivacyConfig, TrainingConfig
from .exceptions import (
    ReproError,
    GraphError,
    DatasetError,
    ProximityError,
    PrivacyError,
    PrivacyBudgetExhausted,
    ConfigurationError,
    TrainingError,
    EvaluationError,
)
from .graph import Graph, load_dataset, available_datasets, RandomWalker
from .proximity import (
    DeepWalkProximity,
    DegreeProximity,
    CommonNeighborsProximity,
    AdamicAdarProximity,
    ResourceAllocationProximity,
    KatzProximity,
    PersonalizedPageRankProximity,
    PreferentialAttachmentProximity,
    JaccardProximity,
    get_proximity,
    available_proximities,
)
from .privacy import RdpAccountant, MomentsAccountant, GaussianMechanism, PrivacyLedger
from .streaming import EdgeDelta, apply_delta, DeltaPlanner, InvalidationPlan
from .engine import (
    BatchGradients,
    SubgraphBatch,
    TrainingEngine,
    EngineResult,
)
from .embedding import (
    SkipGramModel,
    SEGEmbTrainer,
    SEPrivGEmbTrainer,
    NaivePerturbation,
    NonZeroPerturbation,
)
from .baselines import DPGGAN, DPGVAE, GAP, ProGAP, get_baseline, available_baselines
from .models import (
    Embedder,
    FitResult,
    MethodSpec,
    available_methods,
    get_method,
    register as register_method,
)
from .evaluation import (
    structural_equivalence_score,
    link_prediction_auc,
    make_link_prediction_split,
)
from .serving import (
    BatchingServer,
    QueryEngine,
    ServableModel,
    export_servable,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "PrivacyConfig",
    "TrainingConfig",
    "ReproError",
    "GraphError",
    "DatasetError",
    "ProximityError",
    "PrivacyError",
    "PrivacyBudgetExhausted",
    "ConfigurationError",
    "TrainingError",
    "EvaluationError",
    "Graph",
    "load_dataset",
    "available_datasets",
    "RandomWalker",
    "DeepWalkProximity",
    "DegreeProximity",
    "CommonNeighborsProximity",
    "AdamicAdarProximity",
    "ResourceAllocationProximity",
    "KatzProximity",
    "PersonalizedPageRankProximity",
    "PreferentialAttachmentProximity",
    "JaccardProximity",
    "get_proximity",
    "available_proximities",
    "RdpAccountant",
    "MomentsAccountant",
    "GaussianMechanism",
    "PrivacyLedger",
    "EdgeDelta",
    "apply_delta",
    "DeltaPlanner",
    "InvalidationPlan",
    "BatchGradients",
    "SubgraphBatch",
    "TrainingEngine",
    "EngineResult",
    "SkipGramModel",
    "SEGEmbTrainer",
    "SEPrivGEmbTrainer",
    "NaivePerturbation",
    "NonZeroPerturbation",
    "DPGGAN",
    "DPGVAE",
    "GAP",
    "ProGAP",
    "get_baseline",
    "available_baselines",
    "Embedder",
    "FitResult",
    "MethodSpec",
    "available_methods",
    "get_method",
    "register_method",
    "structural_equivalence_score",
    "link_prediction_auc",
    "make_link_prediction_split",
    "BatchingServer",
    "QueryEngine",
    "ServableModel",
    "export_servable",
]
