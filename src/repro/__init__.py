"""SE-PrivGEmb: structure-preference enabled graph embedding under differential privacy.

Reproduction of Zhang, Ye & Hu, *Structure-Preference Enabled Graph Embedding
Generation under Differential Privacy* (ICDE 2025).

The most common entry points are re-exported here:

>>> from repro import load_dataset, SEPrivGEmbTrainer, DeepWalkProximity
>>> graph = load_dataset("chameleon", scale=0.3)
>>> trainer = SEPrivGEmbTrainer(graph, DeepWalkProximity())
>>> result = trainer.train(epochs=20)
>>> result.embeddings.shape[0] == graph.num_nodes
True
"""

from .config import PrivacyConfig, TrainingConfig
from .exceptions import (
    ReproError,
    GraphError,
    DatasetError,
    ProximityError,
    PrivacyError,
    PrivacyBudgetExhausted,
    ConfigurationError,
    TrainingError,
    EvaluationError,
)
from .graph import Graph, load_dataset, available_datasets, RandomWalker
from .proximity import (
    DeepWalkProximity,
    DegreeProximity,
    CommonNeighborsProximity,
    AdamicAdarProximity,
    ResourceAllocationProximity,
    KatzProximity,
    PersonalizedPageRankProximity,
    PreferentialAttachmentProximity,
    JaccardProximity,
    get_proximity,
    available_proximities,
)
from .privacy import RdpAccountant, MomentsAccountant, GaussianMechanism
from .engine import (
    BatchGradients,
    SubgraphBatch,
    TrainingEngine,
    EngineResult,
)
from .embedding import (
    SkipGramModel,
    SEGEmbTrainer,
    SEPrivGEmbTrainer,
    NaivePerturbation,
    NonZeroPerturbation,
)
from .baselines import DPGGAN, DPGVAE, GAP, ProGAP, get_baseline, available_baselines
from .evaluation import (
    structural_equivalence_score,
    link_prediction_auc,
    make_link_prediction_split,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "PrivacyConfig",
    "TrainingConfig",
    "ReproError",
    "GraphError",
    "DatasetError",
    "ProximityError",
    "PrivacyError",
    "PrivacyBudgetExhausted",
    "ConfigurationError",
    "TrainingError",
    "EvaluationError",
    "Graph",
    "load_dataset",
    "available_datasets",
    "RandomWalker",
    "DeepWalkProximity",
    "DegreeProximity",
    "CommonNeighborsProximity",
    "AdamicAdarProximity",
    "ResourceAllocationProximity",
    "KatzProximity",
    "PersonalizedPageRankProximity",
    "PreferentialAttachmentProximity",
    "JaccardProximity",
    "get_proximity",
    "available_proximities",
    "RdpAccountant",
    "MomentsAccountant",
    "GaussianMechanism",
    "BatchGradients",
    "SubgraphBatch",
    "TrainingEngine",
    "EngineResult",
    "SkipGramModel",
    "SEGEmbTrainer",
    "SEPrivGEmbTrainer",
    "NaivePerturbation",
    "NonZeroPerturbation",
    "DPGGAN",
    "DPGVAE",
    "GAP",
    "ProGAP",
    "get_baseline",
    "available_baselines",
    "structural_equivalence_score",
    "link_prediction_auc",
    "make_link_prediction_split",
]
