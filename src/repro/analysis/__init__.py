"""Repo-specific static analysis: the invariant linter.

``python -m repro.analysis [paths]`` walks Python sources with a small
AST rule framework and enforces the conventions the test suite can only
spot-check:

========  ==============================================================
RNG001    randomness arrives via seeded ``utils.rng`` streams — no
          legacy ``np.random.*`` global state, no unseeded
          ``default_rng()``
PRIV001   no float32 introduced in ``privacy/`` or
          ``embedding/perturbation.py`` — DP noise, sensitivity and
          accounting stay float64
ALLOC001  functions marked ``@zero_alloc`` perform no array
          allocations (workspace ``out=`` discipline)
SHM001    every ``SharedMemory(create=True)`` is paired with a
          ``weakref.finalize`` backstop or ``try/finally`` release
FP001     ``fingerprint*`` / ``group_key`` functions iterate mappings
          only via ``sorted(...)`` / ``json.dumps(sort_keys=True)``
========  ==============================================================

Inline suppressions need a written reason
(``# repro-lint: disable=RULE -- reason``), and a checked-in baseline
(:mod:`repro.analysis.baseline`) grandfathers known findings with
per-entry justifications.  The package is stdlib-only by design.
"""

from __future__ import annotations

from .baseline import Baseline, BaselineEntry
from .findings import Finding, ModuleContext
from .markers import zero_alloc
from .rules import RULE_REGISTRY, Rule, all_rules, get_rule, register_rule
from .runner import AnalysisReport, analyze_paths, iter_python_files

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ModuleContext",
    "RULE_REGISTRY",
    "Rule",
    "all_rules",
    "analyze_paths",
    "get_rule",
    "iter_python_files",
    "register_rule",
    "zero_alloc",
]
