"""CLI: ``python -m repro.analysis [paths] [--format json] [--baseline F]``.

Exit status: 0 when no active (non-baselined, non-suppressed) findings,
1 otherwise, 2 on usage errors.  With no paths the linter checks ``src``;
a ``.repro-analysis-baseline.json`` in the working directory is picked up
automatically unless ``--no-baseline`` or an explicit ``--baseline`` says
otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .rules import RULE_REGISTRY, get_rule
from .runner import analyze_paths, render_report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for the repro codebase "
        "(RNG, privacy-dtype, zero-alloc, shared-memory, fingerprint "
        "discipline).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file of grandfathered findings "
        f"(default: ./{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write the current findings to PATH as a new baseline "
        "(each entry still needs a hand-written justification) and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULE_REGISTRY):
            print(f"{rule_id}  {RULE_REGISTRY[rule_id].title}")
        return 0

    rules = None
    if args.rules:
        try:
            rules = [get_rule(rule_id) for rule_id in args.rules.split(",")]
        except KeyError as exc:
            parser.error(str(exc.args[0]))

    baseline = None
    if not args.no_baseline:
        baseline_path = (
            Path(args.baseline)
            if args.baseline
            else Path(DEFAULT_BASELINE_NAME)
        )
        if baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, KeyError) as exc:
                parser.error(f"invalid baseline {baseline_path}: {exc}")
        elif args.baseline:
            parser.error(f"baseline file not found: {baseline_path}")

    try:
        report = analyze_paths(args.paths, rules=rules, baseline=baseline)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    if args.write_baseline:
        new_baseline = Baseline.from_findings(
            report.findings,
            justification="TODO: justify this grandfathered finding",
        )
        new_baseline.save(Path(args.write_baseline))
        print(
            f"wrote {len(new_baseline)} entr(y/ies) to {args.write_baseline}; "
            "fill in each justification before committing"
        )
        return 0

    print(render_report(report, args.output_format))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
