"""Checked-in baseline of grandfathered findings.

The baseline lets the linter land with zero noise on a tree that still
carries known violations: existing findings are recorded once — each with
a written justification — and CI fails only on *new* findings.  Entries
match on ``(rule, path, source line text)`` rather than line numbers, so
unrelated edits above a grandfathered line do not resurrect it.  Entries
whose finding no longer exists are reported as stale so the file shrinks
monotonically toward empty.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .findings import Finding

__all__ = ["BaselineEntry", "Baseline", "DEFAULT_BASELINE_NAME"]

#: the runner auto-loads this file from the working directory when present
DEFAULT_BASELINE_NAME = ".repro-analysis-baseline.json"

_FORMAT = "repro-analysis-baseline"
_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding and why it is tolerated."""

    rule: str
    path: str
    code: str
    justification: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.code)


class Baseline:
    """A set of grandfathered findings keyed by ``(rule, path, code)``."""

    def __init__(self, entries: list[BaselineEntry] | None = None) -> None:
        self.entries: dict[tuple[str, str, str], BaselineEntry] = {
            entry.key: entry for entry in (entries or [])
        }

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, finding: Finding) -> bool:
        return finding.baseline_key in self.entries

    def stale_entries(self, findings: list[Finding]) -> list[BaselineEntry]:
        """Entries no longer matched by any current finding."""
        seen = {finding.baseline_key for finding in findings}
        return [
            entry for key, entry in sorted(self.entries.items()) if key not in seen
        ]

    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        payload = json.loads(path.read_text(encoding="utf-8"))
        if (
            not isinstance(payload, dict)
            or payload.get("format") != _FORMAT
            or payload.get("version") != _VERSION
        ):
            raise ValueError(
                f"{path} is not a version-{_VERSION} {_FORMAT} file"
            )
        entries = []
        for raw in payload.get("entries", []):
            entry = BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                code=str(raw["code"]),
                justification=str(raw.get("justification", "")).strip(),
            )
            if not entry.justification:
                raise ValueError(
                    f"baseline entry {entry.rule} at {entry.path} has no "
                    "justification; every grandfathered finding must say why"
                )
            entries.append(entry)
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding], justification: str) -> "Baseline":
        return cls(
            [
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    code=finding.code,
                    justification=justification,
                )
                for finding in findings
            ]
        )

    def save(self, path: Path) -> None:
        payload = {
            "format": _FORMAT,
            "version": _VERSION,
            "entries": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "code": entry.code,
                    "justification": entry.justification,
                }
                for _, entry in sorted(self.entries.items())
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
