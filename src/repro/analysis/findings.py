"""Finding records and the module context rules run against."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["Finding", "ModuleContext"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file and line.

    ``code`` carries the stripped source line the finding anchors to: the
    baseline matches on ``(rule, path, code)`` rather than the line number,
    so grandfathered findings survive unrelated edits above them.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""
    code: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (the documented ``--format json`` schema)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "code": self.code,
        }

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used to match baseline entries (line-number free)."""
        return (self.rule, self.path, self.code)

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one parsed module."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    _parents: dict[ast.AST, ast.AST] | None = None

    @classmethod
    def parse(cls, path: Path, display_path: str | None = None) -> "ModuleContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            display_path=display_path if display_path is not None else str(path),
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )

    # ------------------------------------------------------------------ #
    def source_line(self, lineno: int) -> str:
        """The stripped source text of 1-based line ``lineno`` ('' if gone)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def parent(self, node: ast.AST) -> ast.AST | None:
        """Syntactic parent of ``node`` (lazy full-tree parent map)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[child] = outer
            self._parents = parents
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> list[ast.AST]:
        """Ancestor chain of ``node``, nearest first."""
        chain: list[ast.AST] = []
        current = self.parent(node)
        while current is not None:
            chain.append(current)
            current = self.parent(current)
        return chain

    def finding(
        self, node: ast.AST, rule: str, message: str, hint: str = ""
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.display_path,
            line=line,
            col=col + 1,
            rule=rule,
            message=message,
            hint=hint,
            code=self.source_line(line),
        )
