"""Marker decorators the invariant linter keys on.

Markers are pure annotations: they attach a flag attribute and return the
function unchanged, so decorating a hot-path method costs nothing at call
time, survives pickling across hogwild forks, and never imports numpy.
The AST rules in :mod:`repro.analysis.rules` recognise the markers *by
name* (``@zero_alloc`` / ``@markers.zero_alloc``), so static analysis
works without importing the decorated module.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TypeVar

__all__ = ["zero_alloc"]

F = TypeVar("F", bound=Callable[..., object])


def zero_alloc(func: F) -> F:
    """Declare a function allocation-free at steady state.

    Functions carrying this marker are checked by rule ``ALLOC001``: no
    allocating numpy calls (``np.zeros`` / ``np.empty`` / ``np.concatenate``
    / ``np.unique`` / ...), no ``.copy()`` / ``.astype()``, and no
    out-capable numpy call (ufuncs, ``einsum``, ``take``, ``sum``, ...)
    without an explicit ``out=``.  Apply it to step-time methods only —
    never to ``__init__`` / ``_build*`` setup phases, which are expected
    to allocate.
    """
    func.__zero_alloc__ = True  # type: ignore[attr-defined]
    return func
