"""Rule framework: the base class, the registry, and the shipped rules.

A rule is a class with a unique ``id``, a one-line ``title``, a ``hint``
users see under each finding, and a :meth:`Rule.check` generator yielding
:class:`~repro.analysis.findings.Finding` records for one parsed module.
Registering is declarative::

    @register_rule
    class MyRule(Rule):
        id = "XYZ001"
        ...

Adding a rule = one module under ``repro/analysis/rules/`` + an import
below; everything else (CLI ``--rules`` filtering, suppressions, baseline,
output) comes from the framework.
"""

from __future__ import annotations

import abc
import ast
from collections.abc import Iterator
from typing import ClassVar

from ..findings import Finding, ModuleContext

__all__ = ["Rule", "register_rule", "all_rules", "get_rule", "RULE_REGISTRY"]

RULE_REGISTRY: dict[str, type["Rule"]] = {}


class Rule(abc.ABC):
    """One invariant check over a parsed module."""

    id: ClassVar[str]
    title: ClassVar[str]
    hint: ClassVar[str] = ""

    def applies_to(self, display_path: str) -> bool:
        """Whether this rule inspects the given file (default: every file)."""
        del display_path
        return True

    @abc.abstractmethod
    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""

    def finding(self, context: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Shorthand: build a finding carrying this rule's id and hint."""
        return context.finding(node, self.id, message, hint=self.hint)


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_id = getattr(cls, "id", None)
    if not rule_id or not isinstance(rule_id, str):
        raise ValueError(f"rule {cls.__name__} must define a string id")
    if rule_id in RULE_REGISTRY and RULE_REGISTRY[rule_id] is not cls:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    RULE_REGISTRY[rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    return [RULE_REGISTRY[rule_id]() for rule_id in sorted(RULE_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    key = rule_id.strip().upper()
    if key not in RULE_REGISTRY:
        raise KeyError(
            f"unknown rule {rule_id!r}; available: {sorted(RULE_REGISTRY)}"
        )
    return RULE_REGISTRY[key]()


# importing the rule modules populates the registry
from . import alloc, fingerprint, privacy_dtype, retry, rng, shm  # registration side effects
