"""ALLOC001: functions marked ``@zero_alloc`` perform no array allocations.

The PR-5/PR-7 fast paths (training ``StepWorkspace``, serving
``QueryWorkspace``) preallocate every per-step array and thread them
through ``out=`` ufunc chains; tracemalloc tests pin the *aggregate*
behaviour, but one careless ``np.zeros`` or a ufunc that lost its ``out=``
re-introduces allocator traffic long before the pins notice (they have a
small-transient budget).  This rule checks the marked functions shape by
shape: any numpy call from the allocator list, any ``.copy()`` /
``.astype()``, and any out-capable numpy call without an explicit ``out=``
is a finding.  Setup phases (``__init__`` / ``_build*``) are never
checked — the marker does not belong on them.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..findings import Finding, ModuleContext
from . import Rule, register_rule

__all__ = ["ZeroAllocRule", "ALLOCATING_CALLS", "OUT_CAPABLE_CALLS"]

_NUMPY_NAMES = ("np", "numpy")

#: numpy namespace calls that always materialise a fresh array
ALLOCATING_CALLS = frozenset(
    {
        "zeros", "empty", "ones", "full",
        "zeros_like", "empty_like", "ones_like", "full_like",
        "array", "asarray", "ascontiguousarray", "asfortranarray",
        "arange", "linspace", "logspace", "eye", "identity",
        "concatenate", "stack", "vstack", "hstack", "dstack", "column_stack",
        "tile", "repeat", "pad", "copy", "meshgrid",
        "unique", "bincount", "where", "nonzero", "flatnonzero",
        "sort", "argsort", "argpartition", "partition", "take_along_axis",
        "diff", "outer", "kron", "split",
    }
)

#: numpy calls that accept ``out=`` — allocating only when it is omitted
OUT_CAPABLE_CALLS = frozenset(
    {
        # binary ufuncs
        "add", "subtract", "multiply", "divide", "true_divide",
        "floor_divide", "remainder", "mod", "power", "float_power",
        "maximum", "minimum", "fmax", "fmin", "hypot", "arctan2",
        "logaddexp", "logaddexp2",
        "bitwise_and", "bitwise_or", "bitwise_xor",
        "left_shift", "right_shift",
        "equal", "not_equal", "less", "less_equal", "greater",
        "greater_equal", "logical_and", "logical_or", "logical_xor",
        # unary ufuncs
        "negative", "positive", "absolute", "abs", "fabs", "sign",
        "exp", "expm1", "exp2", "log", "log1p", "log2", "log10",
        "sqrt", "cbrt", "square", "reciprocal", "logical_not", "invert",
        "sin", "cos", "tan", "tanh", "sinh", "cosh",
        "floor", "ceil", "trunc", "rint",
        # reductions / gathers / contractions with an out parameter
        "sum", "prod", "mean", "cumsum", "cumprod", "clip", "round",
        "take", "compress", "matmul", "dot", "einsum", "cross",
    }
)


def _is_zero_alloc_decorator(node: ast.expr) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id == "zero_alloc"
    return isinstance(target, ast.Attribute) and target.attr == "zero_alloc"


def _has_out_keyword(call: ast.Call) -> bool:
    return any(keyword.arg == "out" for keyword in call.keywords)


@register_rule
class ZeroAllocRule(Rule):
    id = "ALLOC001"
    title = "no allocating numpy calls inside @zero_alloc functions"
    hint = (
        "route the result through a preallocated workspace buffer "
        "(out= / np.copyto / in-place method); allocation belongs in "
        "__init__ / _build phases"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not any(_is_zero_alloc_decorator(d) for d in node.decorator_list):
                continue
            if node.name == "__init__" or node.name.startswith("_build"):
                # setup phases allocate by design; the marker is a mistake
                # there, but silently skipping would hide that mistake
                yield self.finding(
                    context,
                    node,
                    f"@zero_alloc on setup-phase function {node.name}; "
                    "mark only step-time methods",
                )
                continue
            yield from self._check_function(context, node)

    def _check_function(
        self, context: ModuleContext, func: ast.AST
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if isinstance(callee, ast.Attribute):
                # np.<name>(...)
                if (
                    isinstance(callee.value, ast.Name)
                    and callee.value.id in _NUMPY_NAMES
                ):
                    if callee.attr in ALLOCATING_CALLS:
                        yield self.finding(
                            context,
                            node,
                            f"np.{callee.attr} allocates a fresh array in a "
                            "@zero_alloc function",
                        )
                    elif callee.attr in OUT_CAPABLE_CALLS and not _has_out_keyword(
                        node
                    ):
                        yield self.finding(
                            context,
                            node,
                            f"np.{callee.attr} without out= allocates its "
                            "result in a @zero_alloc function",
                        )
                # <expr>.copy() / <expr>.astype(...)
                elif callee.attr == "copy" and not node.args and not node.keywords:
                    yield self.finding(
                        context,
                        node,
                        ".copy() allocates in a @zero_alloc function",
                    )
                elif callee.attr == "astype":
                    yield self.finding(
                        context,
                        node,
                        ".astype() allocates a cast copy in a @zero_alloc "
                        "function (np.copyto into a staging buffer casts "
                        "in place)",
                    )
