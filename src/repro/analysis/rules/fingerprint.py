"""FP001: fingerprint/group-key functions iterate mappings canonically.

Content fingerprints key the RunStore, the proximity cache, and artifact
drift checks (PR 3/4).  A fingerprint function that iterates a dict in
insertion order produces a *valid-looking* hash that depends on call-site
construction order: the same logical configuration re-keys, stored sweep
cells silently recompute, and caches split.  The canonical idioms are
``sorted(...)`` around any ``.items()`` / ``.keys()`` / ``.values()`` /
``vars()`` iteration, and ``json.dumps(..., sort_keys=True)`` for whole
payloads.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..findings import Finding, ModuleContext
from . import Rule, register_rule

__all__ = ["FingerprintOrderRule"]

_DICT_VIEWS = ("items", "keys", "values")


def _is_fingerprint_function(name: str) -> bool:
    return "fingerprint" in name or name == "group_key"


def _unsorted_mapping_iter(node: ast.expr) -> str | None:
    """Name the mapping view if ``node`` iterates one without sorting."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _DICT_VIEWS:
            return f".{func.attr}()"
        if isinstance(func, ast.Name) and func.id == "vars":
            return "vars()"
    return None


@register_rule
class FingerprintOrderRule(Rule):
    id = "FP001"
    title = "fingerprints iterate dicts via sorted() / sort_keys=True"
    hint = (
        "wrap the iteration in sorted(...) or serialise with "
        "json.dumps(payload, sort_keys=True) so the digest is independent "
        "of insertion order"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_fingerprint_function(node.name):
                continue
            yield from self._check_function(context, node)

    def _check_function(
        self, context: ModuleContext, func: ast.AST
    ) -> Iterator[Finding]:
        name = getattr(func, "name", "<fn>")
        iter_exprs: list[ast.expr] = []
        for node in ast.walk(func):
            if isinstance(node, ast.For):
                iter_exprs.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iter_exprs.extend(comp.iter for comp in node.generators)
            elif isinstance(node, ast.Call):
                callee = node.func
                # json.dumps(...) must pass sort_keys=True
                is_dumps = (
                    isinstance(callee, ast.Attribute) and callee.attr == "dumps"
                ) or (isinstance(callee, ast.Name) and callee.id == "dumps")
                if is_dumps:
                    sorted_keys = any(
                        keyword.arg == "sort_keys"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                        for keyword in node.keywords
                    )
                    if not sorted_keys:
                        yield self.finding(
                            context,
                            node,
                            f"json.dumps without sort_keys=True in "
                            f"fingerprint function {name}",
                        )
        for expr in iter_exprs:
            view = _unsorted_mapping_iter(expr)
            if view is not None:
                yield self.finding(
                    context,
                    expr,
                    f"iteration over {view} in insertion order inside "
                    f"fingerprint function {name}",
                )
