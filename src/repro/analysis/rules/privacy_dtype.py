"""PRIV001: privacy arithmetic stays float64, even in float32 compute mode.

The PR-5 dtype policy: the compute fast path may run float32, but noise
calibration, sensitivity, and the RDP accountant are *exact* — their math
is always float64, and Gaussian draws happen in float64 before being
staged into compute buffers.  A ``float32`` introduced inside ``privacy/``
or in the perturbation module truncates the noise calibration silently: the
reported (ε, δ) stays the same while the actual mechanism changes, which
is precisely the failure no unit test on accuracy can catch.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import PurePath

from ..findings import Finding, ModuleContext
from . import Rule, register_rule

__all__ = ["PrivacyDtypeRule"]

_NUMPY_NAMES = ("np", "numpy")

#: call-site contexts in which a "float32" string constant is a cast
_CAST_FUNCS = frozenset({"astype", "dtype", "asarray", "array", "view", "empty",
                         "zeros", "ones", "full", "empty_like", "zeros_like"})


@register_rule
class PrivacyDtypeRule(Rule):
    id = "PRIV001"
    title = "no float32 in privacy-bearing code"
    hint = (
        "privacy math (noise, sensitivity, accountant) is float64 by "
        "contract; stage any compute-dtype cast outside the privacy path "
        "(see engine/workspace.py noise_cast)"
    )

    def applies_to(self, display_path: str) -> bool:
        parts = PurePath(display_path).parts
        return "privacy" in parts or PurePath(display_path).name == "perturbation.py"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            # np.float32 mentioned anywhere (astype(np.float32), dtype=np.float32, ...)
            if (
                isinstance(node, ast.Attribute)
                and node.attr in ("float32", "single")
                and isinstance(node.value, ast.Name)
                and node.value.id in _NUMPY_NAMES
            ):
                yield self.finding(
                    context, node, f"np.{node.attr} introduced in privacy-bearing code"
                )
            # "float32" string used as a dtype: astype("float32"),
            # dtype="float32", np.dtype("float32")
            elif isinstance(node, ast.Call):
                func_name = None
                if isinstance(node.func, ast.Attribute):
                    func_name = node.func.attr
                elif isinstance(node.func, ast.Name):
                    func_name = node.func.id
                in_cast = func_name in _CAST_FUNCS
                for arg in node.args:
                    if (
                        in_cast
                        and isinstance(arg, ast.Constant)
                        and arg.value == "float32"
                    ):
                        yield self.finding(
                            context, arg, "'float32' dtype string in privacy-bearing code"
                        )
                for keyword in node.keywords:
                    if (
                        keyword.arg == "dtype"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value == "float32"
                    ):
                        yield self.finding(
                            context,
                            keyword.value,
                            "dtype='float32' in privacy-bearing code",
                        )
