"""RETRY001: persistence-path ``except OSError`` must be retry-aware.

PR 10 added the shared :class:`~repro.robustness.retry.RetryPolicy` so the
decision "is this I/O failure transient?" lives in one classified place
instead of scattered bare handlers.  On the modules that persist state —
the atomic-write layer, the run store, the proximity cache, the servable
store, the privacy ledger, model artifacts, hogwild checkpoints — an
``except OSError`` that neither sits in retry-aware code (the enclosing
``try`` references a ``retry`` identifier) nor carries a written
suppression is a silent place for transient faults to become permanent
data loss.  The rule does not demand that every handler retries — a
read-only startup path or a best-effort cleanup legitimately should not —
it demands that the *decision is written down*: route through
``RetryPolicy`` or suppress with a reason.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from collections.abc import Iterator

from ..findings import Finding, ModuleContext
from . import Rule, register_rule

__all__ = ["PersistenceRetryRule"]

#: modules whose OSError handling sits on a persistence path (display-path
#: suffixes; the rule applies to nothing else)
_PERSISTENCE_MODULES = (
    "utils/fileio.py",
    "experiments/store.py",
    "proximity/cache.py",
    "serving/store.py",
    "privacy/ledger.py",
    "models/artifacts.py",
    "robustness/checkpoint.py",
)


def _names_oserror(handler: ast.ExceptHandler) -> bool:
    """Does this handler catch ``OSError`` (alone or in a tuple)?"""
    node = handler.type
    if node is None:
        return False
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id == "OSError":
            return True
        if isinstance(candidate, ast.Attribute) and candidate.attr == "OSError":
            return True
    return False


def _references_retry(scope: ast.AST) -> bool:
    """Any identifier in ``scope`` containing "retry" (case-insensitive)."""
    for node in ast.walk(scope):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.arg):
            name = node.arg
        elif isinstance(node, ast.keyword):
            name = node.arg
        if name is not None and "retry" in name.lower():
            return True
    return False


@register_rule
class PersistenceRetryRule(Rule):
    id = "RETRY001"
    title = "persistence-path except OSError must go through RetryPolicy"
    hint = (
        "wrap the attempt in robustness.RetryPolicy.call (or pass retry= to "
        "atomic_write_path), or suppress with '# repro-lint: "
        "disable=RETRY001 -- <why a retry is wrong here>'"
    )

    def applies_to(self, display_path: str) -> bool:
        normalized = PurePath(display_path).as_posix()
        return any(normalized.endswith(suffix) for suffix in _PERSISTENCE_MODULES)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler) or not _names_oserror(node):
                continue
            try_node = next(
                (
                    anc
                    for anc in context.ancestors(node)
                    if isinstance(anc, ast.Try)
                ),
                None,
            )
            if try_node is not None and _references_retry(try_node):
                continue
            yield self.finding(
                context,
                node,
                "except OSError on a persistence path without a RetryPolicy "
                "(or a written suppression explaining why retrying is wrong)",
            )
