"""RNG001: randomness must flow through the seeded utils.rng streams.

The repeat/stream discipline (PR 3/5) pins every stochastic result
bit-for-bit: trainers and samplers accept a seed-like parameter and
normalise it with ``ensure_rng`` / ``repeat_streams``.  One call into the
legacy global-state API (``np.random.seed``, ``np.random.rand``, ...) or
one unseeded ``np.random.default_rng()`` inside library code silently
decouples a component from those streams — results stay plausible, tests
that don't pin the exact draw keep passing, and reproducibility is gone.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..findings import Finding, ModuleContext
from . import Rule, register_rule

__all__ = ["LegacyRandomRule"]

#: numpy.random attributes that touch the legacy global state (or create
#: untracked generators); SeedSequence / Generator / default_rng excluded
_LEGACY_ATTRS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "random_integers",
        "ranf",
        "sample",
        "choice",
        "bytes",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "beta",
        "binomial",
        "poisson",
        "exponential",
        "gamma",
        "get_state",
        "set_state",
        "RandomState",
    }
)

_NUMPY_NAMES = ("np", "numpy")


def _is_np_random(node: ast.expr) -> bool:
    """True for the expression ``np.random`` / ``numpy.random``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in _NUMPY_NAMES
    )


def _is_default_rng(func: ast.expr) -> bool:
    if isinstance(func, ast.Name):
        return func.id == "default_rng"
    return isinstance(func, ast.Attribute) and func.attr == "default_rng"


@register_rule
class LegacyRandomRule(Rule):
    id = "RNG001"
    title = "no unseeded or legacy numpy randomness"
    hint = (
        "thread randomness through a seed-like parameter and normalise it "
        "with repro.utils.rng.ensure_rng / repeat_streams"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            # np.random.<legacy>( ... ) or bare np.random.<legacy> reference
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _LEGACY_ATTRS
                and _is_np_random(node.value)
            ):
                yield self.finding(
                    context,
                    node,
                    f"legacy global-state randomness np.random.{node.attr}",
                )
            # from numpy.random import rand, seed, ...
            elif isinstance(node, ast.ImportFrom) and node.module in (
                "numpy.random",
            ):
                for alias in node.names:
                    if alias.name in _LEGACY_ATTRS:
                        yield self.finding(
                            context,
                            node,
                            f"legacy randomness imported from numpy.random: "
                            f"{alias.name}",
                        )
            # default_rng() with no entropy: a fresh OS-seeded stream that
            # no experiment fingerprint can reproduce
            elif isinstance(node, ast.Call) and _is_default_rng(node.func):
                unseeded = not node.args and not node.keywords
                none_seeded = (
                    len(node.args) == 1
                    and not node.keywords
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                if unseeded or none_seeded:
                    yield self.finding(
                        context,
                        node,
                        "unseeded default_rng(): the stream cannot be "
                        "reproduced or fingerprinted",
                    )
