"""SHM001: every created SharedMemory block has a release path with it.

The hogwild layer (PR 6) creates named ``/dev/shm`` segments; a segment
whose ``unlink`` lives only on the happy path outlives the process when an
exception (or a SIGKILL-adjacent teardown) skips it — CI greps for leaked
``repro_hw_*`` blocks, but only on the paths CI happens to exercise.  The
rule enforces the structural contract instead: a
``SharedMemory(create=True)`` call must be paired, *where the block is
owned*, with either a ``weakref.finalize`` backstop or a ``try/finally``
release.  Accepted shapes:

* the creating class registers ``weakref.finalize`` anywhere in its body
  (the :class:`~repro.embedding.shared_model.SharedSkipGramModel`
  pattern);
* the create call sits inside a ``try`` whose ``finally`` calls
  ``.close()`` / ``.unlink()``;
* a factory function immediately *returns* the block (ownership moves to
  the caller) and the same module registers ``weakref.finalize`` for the
  stored blocks.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..findings import Finding, ModuleContext
from . import Rule, register_rule

__all__ = ["SharedMemoryReleaseRule"]

_RELEASE_METHODS = ("close", "unlink")


def _is_shared_memory_create(node: ast.Call) -> bool:
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name != "SharedMemory":
        return False
    for keyword in node.keywords:
        if (
            keyword.arg == "create"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
        ):
            return True
    return False


def _calls_finalize(scope: ast.AST) -> bool:
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "finalize":
                return True
            if isinstance(func, ast.Name) and func.id == "finalize":
                return True
    return False


def _finally_releases(try_node: ast.Try) -> bool:
    for node in try_node.finalbody:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _RELEASE_METHODS
            ):
                return True
    return False


@register_rule
class SharedMemoryReleaseRule(Rule):
    id = "SHM001"
    title = "SharedMemory(create=True) needs a finalize/try-finally release"
    hint = (
        "register weakref.finalize on the owning object (unlink-before-"
        "close, pid-guarded) or wrap the block's lifetime in try/finally; "
        "see embedding/shared_model.py"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        creates = [
            node
            for node in ast.walk(context.tree)
            if isinstance(node, ast.Call) and _is_shared_memory_create(node)
        ]
        if not creates:
            return
        module_has_finalize = _calls_finalize(context.tree)
        for call in creates:
            ancestors = context.ancestors(call)
            # shape 2: created under a try whose finally releases
            if any(
                isinstance(anc, ast.Try) and _finally_releases(anc)
                for anc in ancestors
            ):
                continue
            # shape 1: the owning class registers a weakref.finalize backstop
            owning_class = next(
                (anc for anc in ancestors if isinstance(anc, ast.ClassDef)), None
            )
            if owning_class is not None and _calls_finalize(owning_class):
                continue
            # shape 3: factory immediately returning the block, with a
            # module-level finalize registration where the blocks land
            if owning_class is None and module_has_finalize:
                returned = any(
                    isinstance(anc, ast.Return) for anc in ancestors[:2]
                )
                if returned:
                    continue
            yield self.finding(
                context,
                call,
                "SharedMemory(create=True) without a weakref.finalize "
                "backstop or try/finally release on the owning scope",
            )
