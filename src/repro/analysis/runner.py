"""Walk paths, run the rules, apply suppressions and the baseline.

This is the linter's engine; :mod:`repro.analysis.__main__` is the thin
CLI over it.  Everything here is stdlib-only — the analysis package must
import (and run on itself) in environments that have nothing but Python.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline
from .findings import Finding, ModuleContext
from .rules import Rule, all_rules
from .suppressions import Suppression, collect_suppressions

__all__ = ["AnalysisReport", "SuppressedFinding", "analyze_paths", "iter_python_files"]

#: rule id attached to files the parser rejects
PARSE_RULE_ID = "PARSE001"

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", ".egg-info"}


@dataclass(frozen=True)
class SuppressedFinding:
    """A finding silenced by an inline suppression (kept for reporting)."""

    finding: Finding
    reason: str


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[SuppressedFinding] = field(default_factory=list)
    stale_baseline: list = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        """0 when clean; 1 when any non-baselined finding is active."""
        return 1 if self.findings else 0

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """The ``--format json`` schema (stable; tests pin the keys)."""
        return {
            "format": "repro-analysis-report",
            "version": 1,
            "files_checked": self.files_checked,
            "findings": [finding.to_dict() for finding in self.findings],
            "baselined": [finding.to_dict() for finding in self.baselined],
            "suppressed": [
                {**item.finding.to_dict(), "reason": item.reason}
                for item in self.suppressed
            ],
            "stale_baseline": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "code": entry.code,
                    "justification": entry.justification,
                }
                for entry in self.stale_baseline
            ],
            "counts": {
                "active": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "stale_baseline": len(self.stale_baseline),
            },
        }

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        if self.stale_baseline:
            lines.append("")
            lines.append("stale baseline entries (remove them from the file):")
            lines.extend(
                f"  {entry.rule} {entry.path}: {entry.code!r}"
                for entry in self.stale_baseline
            )
        summary = (
            f"checked {self.files_checked} file(s): "
            f"{len(self.findings)} finding(s), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed"
        )
        lines.append(summary if not lines else f"\n{summary}")
        return "\n".join(lines)


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        else:
            candidates = []
        for candidate in candidates:
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            seen.setdefault(candidate, None)
    return list(seen)


def _display_path(path: Path) -> str:
    """Repo-relative posix path when possible — baseline keys must not
    depend on the machine's absolute checkout location."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def analyze_paths(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[Rule] | None = None,
    baseline: Baseline | None = None,
) -> AnalysisReport:
    """Run the rule set over ``paths`` and fold in suppressions + baseline."""
    active_rules = list(rules) if rules is not None else all_rules()
    report = AnalysisReport()
    raw_findings: list[Finding] = []
    suppression_maps: dict[str, dict[int, Suppression]] = {}

    for file_path in iter_python_files(paths):
        display = _display_path(file_path)
        report.files_checked += 1
        try:
            context = ModuleContext.parse(file_path, display)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            raw_findings.append(
                Finding(
                    path=display,
                    line=line,
                    col=1,
                    rule=PARSE_RULE_ID,
                    message=f"could not parse file: {exc.msg if isinstance(exc, SyntaxError) else exc}",
                    hint="the linter only checks files the compiler accepts",
                )
            )
            continue
        suppressions, malformed = collect_suppressions(context)
        suppression_maps[display] = suppressions
        raw_findings.extend(malformed)
        for rule in active_rules:
            if rule.applies_to(display):
                raw_findings.extend(rule.check(context))

    for finding in sorted(raw_findings):
        suppression = suppression_maps.get(finding.path, {}).get(finding.line)
        if suppression is not None and suppression.covers(finding):
            report.suppressed.append(
                SuppressedFinding(finding=finding, reason=suppression.reason)
            )
        elif baseline is not None and baseline.matches(finding):
            report.baselined.append(finding)
        else:
            report.findings.append(finding)

    if baseline is not None:
        report.stale_baseline = baseline.stale_entries(
            report.findings + report.baselined + [s.finding for s in report.suppressed]
        )
    return report


def render_report(report: AnalysisReport, output_format: str) -> str:
    """Render a report as ``text`` or ``json``."""
    if output_format == "json":
        return json.dumps(report.to_dict(), indent=2, sort_keys=True)
    return report.render_text()
