"""Inline suppression comments: ``# repro-lint: disable=RULE -- reason``.

A suppression silences the named rules *on its own line only* (the line a
finding anchors to), and the reason after ``--`` is mandatory: a disable
without a written justification is itself reported as ``SUP001`` and does
not suppress anything.  Comments are located with :mod:`tokenize`, so a
``# repro-lint:`` inside a string literal never registers.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

from .findings import Finding, ModuleContext

__all__ = ["Suppression", "SUPPRESSION_RULE_ID", "collect_suppressions"]

#: rule id reported for malformed suppression comments
SUPPRESSION_RULE_ID = "SUP001"

_MARKER = "repro-lint:"
_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s+--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """A parsed suppression comment."""

    line: int
    rules: frozenset[str]
    reason: str

    def covers(self, finding: Finding) -> bool:
        return finding.line == self.line and (
            finding.rule in self.rules or "ALL" in self.rules
        )


def collect_suppressions(
    context: ModuleContext,
) -> tuple[dict[int, Suppression], list[Finding]]:
    """Parse every suppression comment in a module.

    Returns ``(suppressions by line, malformed-suppression findings)``.
    """
    suppressions: dict[int, Suppression] = {}
    malformed: list[Finding] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(context.source).readline)
        comments = [
            (token.start[0], token.start[1], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT and _MARKER in token.string
        ]
    except tokenize.TokenError:  # pragma: no cover - ast.parse succeeded first
        comments = []
    for line, col, comment in comments:
        match = _PATTERN.search(comment)
        anchor = Finding(
            path=context.display_path,
            line=line,
            col=col + 1,
            rule=SUPPRESSION_RULE_ID,
            message="",
            code=context.source_line(line),
        )
        if match is None:
            malformed.append(
                Finding(
                    **{
                        **anchor.to_dict(),
                        "message": "malformed repro-lint comment; expected "
                        "'# repro-lint: disable=RULE -- reason'",
                        "hint": "name the rule ids and give a reason after '--'",
                    }
                )
            )
            continue
        rules = frozenset(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        reason = (match.group("reason") or "").strip()
        if not rules or not reason:
            malformed.append(
                Finding(
                    **{
                        **anchor.to_dict(),
                        "message": "suppression without a reason; append "
                        "' -- <why this violation is sanctioned>'",
                        "hint": "suppressions are only valid with a written "
                        "justification; this one is ignored",
                    }
                )
            )
            continue
        suppressions[line] = Suppression(line=line, rules=rules, reason=reason)
    return suppressions, malformed
