"""Competitor methods used in the paper's evaluation (Figures 3 and 4)."""

from .base import BaselineEmbedder
from .dpggan import DPGGAN
from .dpgvae import DPGVAE
from .gap import GAP
from .progap import ProGAP
from .registry import available_baselines, get_baseline

__all__ = [
    "BaselineEmbedder",
    "DPGGAN",
    "DPGVAE",
    "GAP",
    "ProGAP",
    "available_baselines",
    "get_baseline",
]
