"""Common interface for the baseline embedding methods.

The experiment runner treats every method — SE-PrivGEmb variants and the
four DP baselines — as "something that maps a graph to an ``|V| × r``
embedding matrix under a privacy budget".  :class:`BaselineEmbedder` adapts
that contract onto the :class:`~repro.models.Embedder` estimator protocol:
``fit(graph)`` returns the fitted estimator (use :attr:`embeddings` /
``embeddings_`` or :meth:`fit_transform` for the matrix itself); concrete
baselines implement :meth:`_fit_embeddings` and document which privacy
mechanism they use and how faithful the simplification is to the published
method.
"""

from __future__ import annotations

import abc

import numpy as np

from ..config import PrivacyConfig, TrainingConfig
from ..exceptions import TrainingError
from ..graph import Graph
from ..models.base import Embedder, FitResult
from ..privacy.accountant import PrivacySpent
from ..utils.rng import ensure_rng

__all__ = ["BaselineEmbedder"]


class BaselineEmbedder(Embedder):
    """A method that produces node embeddings for a graph under a DP budget.

    Parameters
    ----------
    training_config:
        Shared hyper-parameters (embedding dimension, epochs, learning rate).
    privacy_config:
        The (ε, δ) budget and mechanism parameters.  Non-private baselines
        may ignore it.
    seed:
        Seed or generator controlling all randomness of the method.
    compute_dtype:
        Dtype of the *published* embedding matrix (``"float32"`` or
        ``"float64"``, default float64).  The baselines' internal training
        math stays float64 — unlike the SE trainers they have no float32
        compute path — so a float32 baseline is the float64 result rounded
        at release, which keeps the estimator surface uniform across all
        eight registered methods.
    """

    #: registry key; subclasses override.
    name: str = "baseline"

    def __init__(
        self,
        training_config: TrainingConfig | None = None,
        privacy_config: PrivacyConfig | None = None,
        seed: int | np.random.Generator | None = None,
        compute_dtype="float64",
    ) -> None:
        super().__init__()
        from ..engine.workspace import resolve_compute_dtype

        self.training_config = training_config or TrainingConfig()
        self.privacy_config = privacy_config or PrivacyConfig()
        self._seed = seed
        self._rng = ensure_rng(seed)
        self.compute_dtype = resolve_compute_dtype(compute_dtype)

    # ------------------------------------------------------------------ #
    def _fit_rng(self) -> np.random.Generator:
        # a fresh generator from the stored seed per fit: `cls(seed=7)`
        # stays bitwise identical to the pre-estimator behaviour on its
        # first fit, *and* refits are deterministic / unaffected by an
        # earlier per-fit rng override (matching the SE trainers)
        return ensure_rng(self._seed)

    def _fit(self, graph: Graph, rng: np.random.Generator) -> FitResult:
        self._rng = rng
        self._fit_embeddings(graph)
        # These baselines have no step-level accountant to snapshot: each
        # calibrates its mechanism noise so the *whole* release meets the
        # configured (ε, δ) target, so the budget spent is the target by
        # construction.  best_alpha/steps are 0 — "no accountant curve".
        privacy = self.privacy_config
        return FitResult(
            privacy_spent=PrivacySpent(
                epsilon=privacy.epsilon,
                delta=privacy.delta,
                best_alpha=0.0,
                steps=0,
            )
        )

    @abc.abstractmethod
    def _fit_embeddings(self, graph: Graph) -> np.ndarray:
        """Train on ``graph``; call :meth:`_store` with the ``|V| × r`` matrix."""

    @property
    def embeddings(self) -> np.ndarray:
        """The embeddings produced by the last :meth:`fit` call."""
        if self._embeddings is None:
            raise TrainingError(f"{type(self).__name__} has not been fitted yet")
        return self._embeddings

    # ------------------------------------------------------------------ #
    def _output_noise_std(
        self,
        sensitivity: float,
        epsilon: float,
        delta: float | None = None,
    ) -> float:
        """Gaussian-mechanism noise std for releasing a per-node output.

        Uses the classic calibration ``σ = sqrt(2 ln(1.25/δ)) · S / ε``.
        The GAN/VAE baselines release embeddings that are functions of each
        node's own (raw) adjacency row, so the release itself must be
        privatised; the paper's baselines spend part of their budget on
        exactly this kind of output protection.
        """
        if sensitivity <= 0:
            raise TrainingError(f"sensitivity must be positive, got {sensitivity}")
        if epsilon <= 0:
            raise TrainingError(f"epsilon must be positive, got {epsilon}")
        delta = self.privacy_config.delta if delta is None else delta
        return float(np.sqrt(2.0 * np.log(1.25 / delta)) * sensitivity / epsilon)

    def _privatize_output(
        self,
        embeddings: np.ndarray,
        epsilon: float,
        row_clip: float = 1.0,
    ) -> np.ndarray:
        """Clip embedding rows to ``row_clip`` and add output-release noise."""
        embeddings = np.asarray(embeddings, dtype=float)
        norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
        clipped = embeddings / np.maximum(1.0, norms / row_clip)
        std = self._output_noise_std(row_clip, epsilon)
        return clipped + self._rng.normal(0.0, std, size=clipped.shape)

    def _store(self, embeddings: np.ndarray) -> np.ndarray:
        """Validate, cache and return the embedding matrix."""
        embeddings = np.asarray(embeddings, dtype=self.compute_dtype)
        if embeddings.ndim != 2:
            raise TrainingError(
                f"embeddings must be 2-D, got shape {embeddings.shape}"
            )
        if not np.all(np.isfinite(embeddings)):
            # Large DP noise can occasionally blow up activations; clamp so
            # downstream metrics stay defined (this mirrors what the public
            # baseline implementations do before evaluation).
            embeddings = np.nan_to_num(embeddings, nan=0.0, posinf=0.0, neginf=0.0)
        self._embeddings = embeddings
        return embeddings

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(epsilon={self.privacy_config.epsilon}, "
            f"embedding_dim={self.training_config.embedding_dim})"
        )
