"""DPGGAN baseline: differentially private graph GAN.

Yang et al. (IJCAI 2021) pair a generator that produces adjacency rows from
latent codes with a discriminator trained on real rows, privatising the
discriminator gradients with DPSGD + the Moments Accountant.  Node
embeddings are read from the generator's latent codes (one learnable code
per node, as in the original implementation).

This numpy reproduction keeps the adversarial structure small:

* per-node latent code ``z_v`` (the embedding being learned),
* generator: ``z_v → dense → sigmoid → fake adjacency row``,
* discriminator: ``row → dense → sigmoid → real/fake``,
* the discriminator step is DPSGD-noised and accounted with MA; training
  stops when the MA budget for the target (ε, δ) is exhausted, which is
  early for small ε — the premature-convergence behaviour the paper reports.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..nn.layers import Activation, DenseLayer
from ..privacy.mechanisms import clip_gradient
from ..privacy.moments import MomentsAccountant
from ..utils.math import sigmoid, stable_log
from .base import BaselineEmbedder

__all__ = ["DPGGAN"]


class DPGGAN(BaselineEmbedder):
    """Differentially private graph GAN (simplified numpy reproduction)."""

    name = "dpggan"

    def __init__(self, *args, hidden_dim: int = 64, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.hidden_dim = int(hidden_dim)

    def _fit_embeddings(self, graph: Graph) -> np.ndarray:
        """Adversarially train the DP graph GAN and return the latent codes."""
        cfg = self.training_config
        privacy = self.privacy_config
        adjacency = np.asarray(graph.adjacency_matrix(dense=True), dtype=float)
        n = graph.num_nodes
        r = cfg.embedding_dim

        latent_codes = self._rng.normal(0.0, 0.1, size=(n, r))
        generator = DenseLayer(r, n, seed=self._rng)
        discriminator_hidden = DenseLayer(n, self.hidden_dim, seed=self._rng)
        discriminator_act = Activation("relu")
        discriminator_out = DenseLayer(self.hidden_dim, 1, seed=self._rng)

        batch_size = min(cfg.batch_size, n)
        accountant = MomentsAccountant(
            noise_multiplier=privacy.noise_multiplier,
            sampling_rate=batch_size / n,
        )
        # Half the budget pays for the DPSGD discriminator updates, half for
        # privatising the released latent codes (which are per-node
        # parameters updated from each node's own adjacency row).
        training_epsilon = privacy.epsilon / 2.0
        release_epsilon = privacy.epsilon - training_epsilon
        max_steps = accountant.max_steps(training_epsilon, privacy.delta)
        steps = min(cfg.epochs, max(1, max_steps))
        learning_rate = cfg.learning_rate * 0.1

        disc_layers = [discriminator_hidden, discriminator_out]

        def discriminate(rows: np.ndarray) -> np.ndarray:
            hidden = discriminator_act.forward(discriminator_hidden.forward(rows))
            return sigmoid(discriminator_out.forward(hidden))

        for _ in range(steps):
            nodes = self._rng.choice(n, size=batch_size, replace=False)

            # ---------------- discriminator step (privatised) -------------- #
            per_example_grads: list[list[np.ndarray]] = []
            for node in nodes:
                for layer in disc_layers:
                    layer.zero_grad()
                real_row = adjacency[node : node + 1]
                fake_row = sigmoid(generator.forward(latent_codes[node : node + 1]))

                real_score = discriminate(real_row)
                grad_real = -(1.0 - real_score)  # d/ds of -log σ(s) after sigmoid
                hidden_grad = discriminator_out.backward(grad_real)
                discriminator_hidden.backward(discriminator_act.backward(hidden_grad))

                fake_score = discriminate(fake_row)
                grad_fake = fake_score  # d/ds of -log(1 - σ(s)) after sigmoid
                hidden_grad = discriminator_out.backward(grad_fake)
                discriminator_hidden.backward(discriminator_act.backward(hidden_grad))

                example = [
                    clip_gradient(g, privacy.clipping_threshold)
                    for layer in disc_layers
                    for g in layer.gradients()
                ]
                per_example_grads.append(example)

            summed = [np.zeros_like(g) for g in per_example_grads[0]]
            for example in per_example_grads:
                for target_grad, g in zip(summed, example, strict=True):
                    target_grad += g
            noise_std = privacy.noise_multiplier * privacy.clipping_threshold
            averaged = [
                (g + self._rng.normal(0.0, noise_std, size=g.shape)) / batch_size
                for g in summed
            ]
            idx = 0
            for layer in disc_layers:
                for param in layer.parameters():
                    param -= learning_rate * averaged[idx]
                    idx += 1
            accountant.step()

            # ---------------- generator / embedding step ------------------- #
            # The generator update is post-processing of the (private)
            # discriminator, so it needs no additional noise (Theorem 2).
            for node in nodes:
                generator.zero_grad()
                code = latent_codes[node : node + 1]
                fake_row = sigmoid(generator.forward(code))
                real_row = adjacency[node : node + 1]
                # Generator wants the fake row to look real *and* match the
                # observed adjacency (auto-encoding term stabilises training).
                fake_score = discriminate(fake_row)
                adversarial_grad = -(1.0 - fake_score)
                recon_grad = (fake_row - real_row) / n
                adversarial_push = float(np.asarray(adversarial_grad).reshape(-1)[0])
                row_grad = recon_grad + 0.1 * adversarial_push * np.ones_like(fake_row) / n
                pre_sigmoid_grad = row_grad * fake_row * (1.0 - fake_row)
                code_grad = generator.backward(pre_sigmoid_grad)
                generator.apply_gradients(learning_rate)
                latent_codes[node] -= learning_rate * code_grad.ravel()

        self._last_loss = float(
            np.mean(-stable_log(discriminate(adjacency)))
        )
        private_codes = self._privatize_output(latent_codes, release_epsilon)
        return self._store(private_codes)
