"""DPGVAE baseline: differentially private graph variational autoencoder.

Yang et al. (IJCAI 2021) train a graph VAE whose encoder maps each node's
adjacency row to a latent Gaussian and whose decoder reconstructs edges from
latent inner products, with DPSGD + a Moments-Accountant budget.  This
reproduction keeps that structure on the numpy NN substrate:

* encoder: ``adjacency row → hidden → (μ, log σ²)``,
* reparameterised latent sample ``z = μ + σ ⊙ ε``,
* decoder: ``σ(z_i · z_j)`` for sampled positive/negative pairs,
* per-node gradients clipped to ``C``, summed, Gaussian-noised, averaged
  (DPSGD), with the :class:`~repro.privacy.moments.MomentsAccountant`
  deciding when the budget is exhausted.

The paper observes DPGVAE "converges prematurely when using MA, especially
when the privacy budget is small" — that behaviour emerges here because the
MA bound allows only a few noisy steps at small ε.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..nn.layers import Activation, DenseLayer
from ..privacy.mechanisms import clip_gradient
from ..privacy.moments import MomentsAccountant
from ..utils.math import sigmoid
from .base import BaselineEmbedder

__all__ = ["DPGVAE"]


class DPGVAE(BaselineEmbedder):
    """Differentially private graph VAE (simplified numpy reproduction)."""

    name = "dpgvae"

    def __init__(self, *args, hidden_dim: int = 64, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.hidden_dim = int(hidden_dim)

    def _fit_embeddings(self, graph: Graph) -> np.ndarray:
        """Train the DP graph VAE and return the latent mean embeddings."""
        cfg = self.training_config
        privacy = self.privacy_config
        adjacency = np.asarray(graph.adjacency_matrix(dense=True), dtype=float)
        n = graph.num_nodes
        r = cfg.embedding_dim

        hidden_layer = DenseLayer(n, self.hidden_dim, seed=self._rng)
        hidden_act = Activation("tanh")
        mean_layer = DenseLayer(self.hidden_dim, r, seed=self._rng)
        logvar_layer = DenseLayer(self.hidden_dim, r, seed=self._rng)

        batch_size = min(cfg.batch_size, n)
        accountant = MomentsAccountant(
            noise_multiplier=privacy.noise_multiplier,
            sampling_rate=batch_size / n,
        )
        # Half of the (ε, δ) budget pays for DPSGD training, the other half
        # for privatising the released per-node embeddings (which are a
        # function of each node's raw adjacency row).
        training_epsilon = privacy.epsilon / 2.0
        release_epsilon = privacy.epsilon - training_epsilon
        max_steps = accountant.max_steps(training_epsilon, privacy.delta)
        steps = min(cfg.epochs, max(1, max_steps))
        learning_rate = cfg.learning_rate * 0.1  # VAEs need a gentler rate here

        layers = [hidden_layer, mean_layer, logvar_layer]
        for _ in range(steps):
            nodes = self._rng.choice(n, size=batch_size, replace=False)
            for layer in layers:
                layer.zero_grad()

            per_example_grads: list[list[np.ndarray]] = []
            for node in nodes:
                row = adjacency[node : node + 1]
                for layer in layers:
                    layer.zero_grad()
                hidden = hidden_act.forward(hidden_layer.forward(row))
                mu = mean_layer.forward(hidden)
                logvar = np.clip(logvar_layer.forward(hidden), -5.0, 5.0)
                noise = self._rng.normal(size=mu.shape)
                latent = mu + np.exp(0.5 * logvar) * noise

                # Reconstruction against the node's own adjacency row through a
                # shared linear "decoder" given by the latent means of all nodes
                # would be quadratic; use the standard trick of reconstructing
                # the hidden representation instead (denoising objective).
                reconstruction = sigmoid(latent @ mean_layer.weight.T)
                target = hidden
                recon_grad = (reconstruction - target) / reconstruction.size

                # Backprop (treating the decoder weight as tied to mean_layer).
                grad_latent = recon_grad @ mean_layer.weight
                kl_grad_mu = mu / mu.size
                kl_grad_logvar = 0.5 * (np.exp(logvar) - 1.0) / logvar.size
                grad_mu = grad_latent + kl_grad_mu
                grad_logvar = grad_latent * noise * 0.5 * np.exp(0.5 * logvar) + kl_grad_logvar

                grad_hidden = mean_layer.backward(grad_mu) + logvar_layer.backward(grad_logvar)
                hidden_layer.backward(hidden_act.backward(grad_hidden))

                example = [
                    clip_gradient(g, privacy.clipping_threshold)
                    for layer in layers
                    for g in layer.gradients()
                ]
                per_example_grads.append(example)

            # DPSGD aggregation: sum clipped per-example grads, add noise, average.
            summed = [np.zeros_like(g) for g in per_example_grads[0]]
            for example in per_example_grads:
                for target_grad, g in zip(summed, example, strict=True):
                    target_grad += g
            noise_std = privacy.noise_multiplier * privacy.clipping_threshold
            averaged = [
                (g + self._rng.normal(0.0, noise_std, size=g.shape)) / batch_size
                for g in summed
            ]

            idx = 0
            for layer in layers:
                params = layer.parameters()
                for param in params:
                    param -= learning_rate * averaged[idx]
                    idx += 1
            accountant.step()

        hidden = hidden_act.forward(hidden_layer.forward(adjacency))
        embeddings = mean_layer.forward(hidden)
        embeddings = self._privatize_output(embeddings, release_epsilon)
        return self._store(embeddings)
