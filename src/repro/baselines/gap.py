"""GAP baseline: differentially private GNN with aggregation perturbation.

Sajadmanesh et al. (USENIX Security 2023) make a GNN private by adding
Gaussian noise to every neighbourhood aggregation ("aggregation
perturbation", AP) instead of to gradients.  Because standard GNNs recompute
aggregations at every forward pass, all aggregate outputs must be
re-perturbed at each training iteration — the compatibility issue the paper
points to when explaining GAP's weak utility.

The reproduction follows the same recipe on the numpy substrate:

* node features are random (the paper's evaluation uses random features for
  the feature-less graphs considered here),
* a stack of GCN layers encodes the graph; each aggregation ``Â H`` is
  row-clipped and perturbed with Gaussian noise whose scale is calibrated so
  the *total* RDP cost over all perturbed aggregations meets the (ε, δ)
  target,
* the encoder output is the embedding (no task head is trained — the
  downstream evaluation is unsupervised, as in the paper's setting).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..nn.gcn import GCNEncoder, normalized_adjacency
from ..privacy.mechanisms import clip_rows
from ..privacy.rdp import DEFAULT_ALPHA_GRID, gaussian_rdp, rdp_to_dp
from .base import BaselineEmbedder

__all__ = ["GAP"]


class GAP(BaselineEmbedder):
    """Aggregation-perturbation GNN (simplified numpy reproduction)."""

    name = "gap"

    def __init__(
        self,
        *args,
        num_hops: int = 2,
        feature_dim: int = 64,
        row_clip: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if num_hops < 1:
            raise ValueError(f"num_hops must be >= 1, got {num_hops}")
        self.num_hops = int(num_hops)
        self.feature_dim = int(feature_dim)
        self.row_clip = float(row_clip)

    # ------------------------------------------------------------------ #
    def _calibrate_noise(self, num_perturbations: int) -> float:
        """Find the per-aggregation noise multiplier meeting the (ε, δ) target.

        The total privacy loss is the RDP composition of
        ``num_perturbations`` Gaussian mechanisms with row sensitivity
        ``row_clip``; binary-search the noise multiplier whose converted ε
        matches the budget.
        """
        target_eps = self.privacy_config.epsilon
        delta = self.privacy_config.delta

        def epsilon_for(noise_multiplier: float) -> float:
            curve = num_perturbations * gaussian_rdp(noise_multiplier, DEFAULT_ALPHA_GRID)
            eps, _ = rdp_to_dp(curve, DEFAULT_ALPHA_GRID, delta)
            return eps

        lo, hi = 1e-2, 1e4
        for _ in range(80):
            mid = np.sqrt(lo * hi)
            if epsilon_for(mid) > target_eps:
                lo = mid
            else:
                hi = mid
        return hi

    def _fit_embeddings(self, graph: Graph) -> np.ndarray:
        """Encode the graph with noisy aggregations and return the embeddings."""
        cfg = self.training_config
        n = graph.num_nodes
        r = cfg.embedding_dim

        features = self._rng.normal(0.0, 1.0, size=(n, self.feature_dim))
        adjacency = normalized_adjacency(graph)
        encoder = GCNEncoder(
            [self.feature_dim, *[max(r, 16)] * (self.num_hops - 1), r],
            seed=self._rng,
        )

        noise_multiplier = self._calibrate_noise(self.num_hops)
        noise_std = noise_multiplier * self.row_clip

        def perturb_aggregation(aggregated: np.ndarray) -> np.ndarray:
            clipped = clip_rows(aggregated, self.row_clip)
            return clipped + self._rng.normal(0.0, noise_std, size=clipped.shape)

        embeddings = encoder.encode(adjacency, features, aggregation_hook=perturb_aggregation)
        return self._store(embeddings)
