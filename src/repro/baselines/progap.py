"""ProGAP baseline: progressive GNN with aggregation perturbation.

Sajadmanesh & Gatica-Perez (WSDM 2024) improve on GAP by training the model
*progressively*: stage ``s`` perturbs only one new aggregation computed on
the (already private) output of stage ``s-1``, then caches it, so noisy
aggregations are not recomputed every iteration.  The privacy budget is
split across stages rather than across every training step, which is why
ProGAP "offers slightly better utility than GAP" (Section VI-D of the
SE-PrivGEmb paper).

The reproduction mirrors that structure: each stage computes one clipped,
noised aggregation of the previous stage's embedding, passes it through a
small trainable transform, and concatenates a residual of the previous
stage.  The per-stage noise is calibrated so the composed RDP cost meets the
(ε, δ) target — the same calibration as GAP, but with fewer perturbations
re-used more effectively.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..nn.gcn import GCNLayer, normalized_adjacency
from ..privacy.mechanisms import clip_rows
from ..privacy.rdp import DEFAULT_ALPHA_GRID, gaussian_rdp, rdp_to_dp
from .base import BaselineEmbedder

__all__ = ["ProGAP"]


class ProGAP(BaselineEmbedder):
    """Progressive aggregation-perturbation GNN (simplified numpy reproduction)."""

    name = "progap"

    def __init__(
        self,
        *args,
        num_stages: int = 3,
        feature_dim: int = 64,
        row_clip: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if num_stages < 1:
            raise ValueError(f"num_stages must be >= 1, got {num_stages}")
        self.num_stages = int(num_stages)
        self.feature_dim = int(feature_dim)
        self.row_clip = float(row_clip)

    def _calibrate_noise(self) -> float:
        """Noise multiplier whose ``num_stages``-fold composition meets the budget."""
        target_eps = self.privacy_config.epsilon
        delta = self.privacy_config.delta

        def epsilon_for(noise_multiplier: float) -> float:
            curve = self.num_stages * gaussian_rdp(noise_multiplier, DEFAULT_ALPHA_GRID)
            eps, _ = rdp_to_dp(curve, DEFAULT_ALPHA_GRID, delta)
            return eps

        lo, hi = 1e-2, 1e4
        for _ in range(80):
            mid = np.sqrt(lo * hi)
            if epsilon_for(mid) > target_eps:
                lo = mid
            else:
                hi = mid
        return hi

    def _fit_embeddings(self, graph: Graph) -> np.ndarray:
        """Progressively encode the graph and return the final-stage embeddings."""
        cfg = self.training_config
        n = graph.num_nodes
        r = cfg.embedding_dim

        adjacency = normalized_adjacency(graph)
        noise_multiplier = self._calibrate_noise()
        noise_std = noise_multiplier * self.row_clip

        current = self._rng.normal(0.0, 1.0, size=(n, self.feature_dim))
        stage_outputs: list[np.ndarray] = []
        for _stage in range(self.num_stages):
            aggregated = clip_rows(adjacency @ current, self.row_clip)
            noisy = aggregated + self._rng.normal(0.0, noise_std, size=aggregated.shape)
            # Once perturbed, the aggregation is cached; the transform below is
            # post-processing and costs no extra privacy (Theorem 2).
            layer = GCNLayer(noisy.shape[1], r, activation="tanh", seed=self._rng)
            transformed = layer.transform(noisy)
            stage_outputs.append(transformed)
            # The next stage aggregates the (private) output of this one,
            # concatenated with a residual to keep low-hop information.
            current = np.concatenate([transformed, noisy], axis=1)

        # Progressive models read out from the concatenation of all stages,
        # projected back to the embedding dimension.
        stacked = np.concatenate(stage_outputs, axis=1)
        projection = self._rng.normal(
            0.0, 1.0 / np.sqrt(stacked.shape[1]), size=(stacked.shape[1], r)
        )
        return self._store(stacked @ projection)
