"""Name-based registry of baseline embedders."""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from ..exceptions import ConfigurationError
from .base import BaselineEmbedder
from .dpggan import DPGGAN
from .dpgvae import DPGVAE
from .gap import GAP
from .progap import ProGAP

__all__ = ["available_baselines", "get_baseline", "register_baseline"]

_REGISTRY: dict[str, Callable[..., BaselineEmbedder]] = {
    DPGGAN.name: DPGGAN,
    DPGVAE.name: DPGVAE,
    GAP.name: GAP,
    ProGAP.name: ProGAP,
}


def available_baselines() -> list[str]:
    """Return the sorted list of registered baseline names."""
    return sorted(_REGISTRY)


def get_baseline(name: str, **kwargs: Any) -> BaselineEmbedder:
    """Instantiate a baseline by registry name, forwarding keyword arguments."""
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown baseline {name!r}; available: {', '.join(available_baselines())}"
        )
    return _REGISTRY[key](**kwargs)


def register_baseline(name: str, factory: Callable[..., BaselineEmbedder]) -> None:
    """Register a custom baseline under ``name`` (overwrites existing)."""
    _REGISTRY[name.strip().lower()] = factory
