"""Configuration dataclasses shared across trainers, baselines and experiments.

Two configuration objects cover the knobs exposed by the paper:

* :class:`PrivacyConfig` — the differential-privacy parameters
  (epsilon, delta, noise multiplier, clipping threshold).
* :class:`TrainingConfig` — the skip-gram / SGD parameters
  (embedding dimension, batch size, learning rate, negative samples,
  number of epochs).

Both validate their fields eagerly so that a bad experiment specification
fails before any expensive work starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Mapping
from typing import Any

from .exceptions import ConfigurationError

__all__ = ["PrivacyConfig", "TrainingConfig"]


@dataclass(frozen=True)
class PrivacyConfig:
    """Differential-privacy parameters used by the private trainers.

    Attributes
    ----------
    epsilon:
        Target privacy budget ``ε``.  Must be positive.
    delta:
        Failure probability ``δ``.  Must be in ``(0, 1)``.
    noise_multiplier:
        Standard deviation multiplier ``σ`` of the Gaussian mechanism.  The
        paper fixes ``σ = 5`` in all experiments.
    clipping_threshold:
        Per-example ℓ2 gradient clipping threshold ``C``.
    accountant:
        Which accountant tracks the privacy loss: ``"rdp"`` (default, used
        by SE-PrivGEmb) or ``"moments"`` (used by the DPGGAN / DPGVAE
        baselines).
    """

    epsilon: float = 3.5
    delta: float = 1e-5
    noise_multiplier: float = 5.0
    clipping_threshold: float = 2.0
    accountant: str = "rdp"

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {self.epsilon}")
        if not 0 < self.delta < 1:
            raise ConfigurationError(f"delta must be in (0, 1), got {self.delta}")
        if self.noise_multiplier <= 0:
            raise ConfigurationError(
                f"noise_multiplier must be positive, got {self.noise_multiplier}"
            )
        if self.clipping_threshold <= 0:
            raise ConfigurationError(
                f"clipping_threshold must be positive, got {self.clipping_threshold}"
            )
        if self.accountant not in {"rdp", "moments"}:
            raise ConfigurationError(
                f"accountant must be 'rdp' or 'moments', got {self.accountant!r}"
            )

    def with_epsilon(self, epsilon: float) -> "PrivacyConfig":
        """Return a copy of this config with a different target epsilon."""
        return replace(self, epsilon=epsilon)

    def to_dict(self) -> dict[str, Any]:
        """Return the configuration as a plain dictionary."""
        return {
            "epsilon": self.epsilon,
            "delta": self.delta,
            "noise_multiplier": self.noise_multiplier,
            "clipping_threshold": self.clipping_threshold,
            "accountant": self.accountant,
        }


@dataclass(frozen=True)
class TrainingConfig:
    """Skip-gram / SGD hyper-parameters.

    The defaults follow the parameter study in Section VI-B of the paper:
    batch size ``B = 128``, learning rate ``η = 0.1``, clipping ``C = 2``
    (held in :class:`PrivacyConfig`), negative samples ``k = 5`` and
    embedding dimension ``r = 128``.  ``epochs`` defaults to the structural
    equivalence setting (200); link prediction uses 2000 in the paper.
    """

    embedding_dim: int = 128
    batch_size: int = 128
    learning_rate: float = 0.1
    negative_samples: int = 5
    epochs: int = 200
    seed: int | None = None
    extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.embedding_dim <= 0:
            raise ConfigurationError(
                f"embedding_dim must be positive, got {self.embedding_dim}"
            )
        if self.batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if self.negative_samples <= 0:
            raise ConfigurationError(
                f"negative_samples must be positive, got {self.negative_samples}"
            )
        if self.epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {self.epochs}")

    def with_updates(self, **kwargs: Any) -> "TrainingConfig":
        """Return a copy with the provided fields replaced."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict[str, Any]:
        """Return the configuration as a plain dictionary."""
        return {
            "embedding_dim": self.embedding_dim,
            "batch_size": self.batch_size,
            "learning_rate": self.learning_rate,
            "negative_samples": self.negative_samples,
            "epochs": self.epochs,
            "seed": self.seed,
            "extra": dict(self.extra),
        }
