"""Skip-gram graph embedding: the paper's core (SE-GEmb / SE-PrivGEmb)."""

from .skipgram import SkipGramModel
from .shared_model import SharedModelHandle, SharedSkipGramModel
from .objectives import (
    StructurePreferenceObjective,
    pair_loss,
    pair_gradients,
    PairGradients,
)
from .optimizer import SGDOptimizer
from .perturbation import (
    PerturbationStrategy,
    NaivePerturbation,
    NonZeroPerturbation,
    get_perturbation,
)
from .trainer import SEGEmbTrainer, EmbeddingResult
from .private_trainer import SEPrivGEmbTrainer, PrivateEmbeddingResult

__all__ = [
    "SkipGramModel",
    "SharedSkipGramModel",
    "SharedModelHandle",
    "StructurePreferenceObjective",
    "pair_loss",
    "pair_gradients",
    "PairGradients",
    "SGDOptimizer",
    "PerturbationStrategy",
    "NaivePerturbation",
    "NonZeroPerturbation",
    "get_perturbation",
    "SEGEmbTrainer",
    "EmbeddingResult",
    "SEPrivGEmbTrainer",
    "PrivateEmbeddingResult",
]
