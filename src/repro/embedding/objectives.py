"""The structure-preference skip-gram objective and its gradients.

Eq. (5) of the paper defines, for each observed edge ``(v_i, v_j)`` with
proximity weight ``p_ij``:

``L_nov(v_i, v_j, p_ij) = -p_ij log σ(v_j · v_i)
                          - p_ij Σ_{n=1..k} E_{v_n ~ P_n} log σ(-v_n · v_i)``

Its gradients (Eq. 7 and Eq. 8) touch only the centre row of ``W_in`` and the
``k + 1`` sampled rows of ``W_out``:

* ``∂L/∂v_i  = p_ij Σ_{n=0..k} (σ(v_n·v_i) - 1[v_n = v_j]) v_n``
* ``∂L/∂v_n  = p_ij (σ(v_n·v_i) - 1[v_n = v_j]) v_i``

where ``n = 0`` denotes the positive node ``v_j``.  That sparsity is exactly
what the non-zero perturbation strategy exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..analysis.markers import zero_alloc
from ..engine.batch import BatchGradients, SubgraphBatch
from ..exceptions import TrainingError
from ..graph.sampling import EdgeSubgraph
from ..proximity.base import ProximityMatrix
from ..utils.math import log_sigmoid, sigmoid

__all__ = [
    "PairGradients",
    "pair_loss",
    "pair_gradients",
    "StructurePreferenceObjective",
]

# Mirrors the exp() clamp inside utils.math.sigmoid: at |score| = 35 the
# sigmoid saturates to within 1e-15 of {0, 1}, so clamping the workspace
# score buffer in place is numerically indistinguishable from the default
# path while keeping every exp() finite in float32 as well.
_SCORE_CLAMP = 35.0


@dataclass
class PairGradients:
    """Sparse gradients of one training example (one edge subgraph).

    Attributes
    ----------
    center:
        The centre node index whose ``W_in`` row has a non-zero gradient.
    center_gradient:
        Gradient with respect to ``W_in[center]`` (shape ``(r,)``).
    context_nodes:
        The ``k + 1`` context node indices (positive first) whose ``W_out``
        rows have non-zero gradients.
    context_gradients:
        Gradient rows aligned with ``context_nodes`` (shape ``(k + 1, r)``).
    loss:
        The scalar loss value of this example.
    """

    center: int
    center_gradient: np.ndarray
    context_nodes: np.ndarray
    context_gradients: np.ndarray
    loss: float


def pair_loss(
    w_in: np.ndarray,
    w_out: np.ndarray,
    subgraph: EdgeSubgraph,
    weight: float,
) -> float:
    """Loss of a single edge subgraph under the structure-preference objective."""
    center_vec = w_in[subgraph.center]
    positive_score = float(w_out[subgraph.positive] @ center_vec)
    negative_scores = w_out[subgraph.negatives] @ center_vec
    loss = -weight * float(log_sigmoid(positive_score))
    loss -= weight * float(np.sum(log_sigmoid(-negative_scores)))
    return loss


def pair_gradients(
    w_in: np.ndarray,
    w_out: np.ndarray,
    subgraph: EdgeSubgraph,
    weight: float,
) -> PairGradients:
    """Gradients (Eq. 7 / Eq. 8) of a single edge subgraph.

    The returned gradients are of the *loss* (to be subtracted, scaled by the
    learning rate, during descent).
    """
    if weight < 0:
        raise TrainingError(f"proximity weight must be non-negative, got {weight}")
    center = int(subgraph.center)
    context_nodes = subgraph.all_context_nodes()
    center_vec = w_in[center]
    context_vecs = w_out[context_nodes]

    scores = context_vecs @ center_vec
    probabilities = sigmoid(scores)
    indicators = np.zeros_like(probabilities)
    indicators[0] = 1.0  # the first context node is the positive v_j
    errors = weight * (probabilities - indicators)

    center_gradient = errors @ context_vecs
    context_gradients = np.outer(errors, center_vec)

    loss = -weight * float(log_sigmoid(scores[0]))
    loss -= weight * float(np.sum(log_sigmoid(-scores[1:])))

    return PairGradients(
        center=center,
        center_gradient=center_gradient,
        context_nodes=context_nodes,
        context_gradients=context_gradients,
        loss=loss,
    )


class StructurePreferenceObjective:
    """Binds a proximity matrix to the skip-gram objective of Eq. (5).

    The objective supplies, per edge subgraph, the proximity weight ``p_ij``
    and (through :meth:`negative_sampling_mass`) the Theorem-3 negative
    sampling mass ``min(P)/Σ_j p_ij`` that makes the optimum preserve
    ``log(p_ij / (k · min(P)))``.

    Parameters
    ----------
    proximity:
        The computed :class:`ProximityMatrix`.
    weight_floor:
        Proximity values below this floor are lifted to it so that every
        observed edge retains a non-zero learning signal even if the chosen
        proximity assigns it zero (e.g. common neighbours of a degree-1
        node).  Set to 0 to disable.
    normalize_weights:
        If ``True`` (default), edge weights are divided by ``max(P)`` so the
        loss multiplier lies in ``(0, 1]``.  Rescaling the whole proximity
        matrix leaves the Theorem-3 optimum unchanged (it depends only on
        the ratio ``p_ij / min(P)``) but keeps SGD steps well conditioned —
        raw DeepWalk proximities can be in the tens and would otherwise blow
        up the unclipped non-private trainer.
    """

    def __init__(
        self,
        proximity: ProximityMatrix,
        weight_floor: float = 1e-6,
        normalize_weights: bool = True,
    ) -> None:
        if weight_floor < 0:
            raise TrainingError(f"weight_floor must be non-negative, got {weight_floor}")
        self.proximity = proximity
        self.weight_floor = float(weight_floor)
        self.normalize_weights = bool(normalize_weights)
        # max_value is tracked by the ProximityMatrix on both backends —
        # reading .matrix here would densify a CSR-backed proximity.
        peak = proximity.max_value
        self._weight_scale = 1.0 / peak if (self.normalize_weights and peak > 0) else 1.0

    def edge_weight(self, center: int, positive: int) -> float:
        """Return the (optionally rescaled) ``p_ij`` for an observed edge."""
        value = self.proximity.pair_value(center, positive) * self._weight_scale
        return max(value, self.weight_floor)

    def edge_weights(self, centers: np.ndarray, positives: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`edge_weight` for parallel centre/positive arrays."""
        values = self.proximity.pair_values(centers, positives) * self._weight_scale
        return np.maximum(values, self.weight_floor)

    def negative_sampling_mass(self, center: int) -> float:
        """Theorem-3 mass ``min(P) / Σ_j p_ij`` for the given centre."""
        return self.proximity.negative_sampling_mass(center)

    def optimal_inner_product(self, center: int, positive: int, num_negatives: int) -> float:
        """Eq. (10): the theoretically optimal ``v_i · v_j`` for this pair."""
        return self.proximity.theoretical_optimal_inner_product(
            center, positive, num_negatives
        )

    def example_loss(self, w_in: np.ndarray, w_out: np.ndarray, subgraph: EdgeSubgraph) -> float:
        """Loss of one edge subgraph with its proximity weight applied."""
        weight = self.edge_weight(subgraph.center, subgraph.positive)
        return pair_loss(w_in, w_out, subgraph, weight)

    def example_gradients(
        self, w_in: np.ndarray, w_out: np.ndarray, subgraph: EdgeSubgraph
    ) -> PairGradients:
        """Gradients of one edge subgraph with its proximity weight applied."""
        weight = self.edge_weight(subgraph.center, subgraph.positive)
        return pair_gradients(w_in, w_out, subgraph, weight)

    # ---------------------------------------------------------------- #
    # Vectorized batch path (the engine's hot path)
    # ---------------------------------------------------------------- #
    def _resolve_batch(
        self, batch: SubgraphBatch | Sequence[EdgeSubgraph]
    ) -> tuple[SubgraphBatch, np.ndarray]:
        """Normalise list/array input and bind proximity weights to it."""
        if not isinstance(batch, SubgraphBatch):
            if len(batch) == 0:
                raise TrainingError("batch must not be empty")
            batch = SubgraphBatch.from_subgraphs(batch)
        weights = batch.weights
        if weights is None:
            weights = self.edge_weights(batch.centers, batch.positives)
        elif np.any(weights < 0):
            raise TrainingError("proximity weights must be non-negative")
        return batch, weights

    @staticmethod
    def _batch_scores(
        w_in: np.ndarray, w_out: np.ndarray, batch: SubgraphBatch
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All ``B × (1+k)`` sigmoid pre-activations in one contraction."""
        center_vecs = w_in[batch.centers]  # [B, r]
        context_vecs = w_out[batch.contexts]  # [B, 1+k, r]
        scores = np.einsum("bkr,br->bk", context_vecs, center_vecs)
        return center_vecs, context_vecs, scores

    @staticmethod
    def _batch_losses(scores: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Per-example Eq. (5) losses from the score matrix."""
        positive_ll = log_sigmoid(scores[:, 0])
        negative_ll = np.sum(log_sigmoid(-scores[:, 1:]), axis=1)
        return -weights * (positive_ll + negative_ll)

    def batch_gradients(
        self,
        w_in: np.ndarray,
        w_out: np.ndarray,
        batch: SubgraphBatch | Sequence[EdgeSubgraph],
        *,
        workspace=None,
    ) -> BatchGradients:
        """Eq. (7) / Eq. (8) gradients of a whole batch in one vectorized pass.

        Numerically equivalent to calling :meth:`example_gradients` per
        subgraph — one matmul computes all ``B × (1+k)`` scores instead of
        ``B`` Python-level matvecs.  The per-example losses are returned on
        the :class:`BatchGradients` (they fall out of the same scores), so
        callers never pay a second loss pass.

        With ``workspace`` (a :class:`~repro.engine.StepWorkspace`) the
        whole pass runs through preallocated buffers — gathers with
        ``np.take(out=)``, contractions with ``einsum(out=)``, losses and
        errors through in-place ufunc chains — and the returned
        :class:`BatchGradients` is the workspace's reused view.  The batch
        must carry pre-bound proximity weights in that mode.
        """
        if workspace is not None:
            return self._batch_gradients_into(w_in, w_out, batch, workspace)
        batch, weights = self._resolve_batch(batch)
        center_vecs, context_vecs, scores = self._batch_scores(w_in, w_out, batch)

        errors = np.asarray(sigmoid(scores))  # fresh array, safe to mutate
        errors[:, 0] -= 1.0  # column 0 is the positive v_j: indicator 1
        errors *= weights[:, None]

        center_gradients = np.einsum("bk,bkr->br", errors, context_vecs)
        context_gradients = errors[:, :, None] * center_vecs[:, None, :]

        return BatchGradients(
            centers=batch.centers,
            center_gradients=center_gradients,
            context_nodes=batch.contexts,
            context_gradients=context_gradients,
            losses=self._batch_losses(scores, weights),
        )

    @zero_alloc
    def _batch_gradients_into(
        self, w_in: np.ndarray, w_out: np.ndarray, batch: SubgraphBatch, workspace
    ) -> BatchGradients:
        """The allocation-free gradient pass of the fast path.

        Every array below is a preallocated workspace buffer; the only
        heap traffic is Python object overhead.  The math is the same as
        the default path up to floating-point evaluation order (the losses
        sum all ``1+k`` log-sigmoids in one row pass instead of positive
        and negatives separately).
        """
        ws = workspace
        if not isinstance(batch, SubgraphBatch) or batch.weights is None:
            raise TrainingError(
                "the workspace fast path needs a SubgraphBatch with pre-bound "
                "proximity weights (bind them once on the pool)"
            )
        ws.validate_batch(batch)
        weights = batch.weights
        if batch is not ws.batch:
            # the returned BatchGradients views ws.centers / ws.contexts, so
            # a foreign batch must be mirrored into the workspace buffers
            np.copyto(ws.centers, batch.centers)
            np.copyto(ws.contexts, batch.contexts)

        np.take(w_in, ws.centers, axis=0, out=ws.center_vecs, mode="clip")
        np.take(w_out, ws.contexts_flat, axis=0, out=ws.context_vecs_flat, mode="clip")
        np.einsum("bkr,br->bk", ws.context_vecs, ws.center_vecs, out=ws.scores)
        np.clip(ws.scores, -_SCORE_CLAMP, _SCORE_CLAMP, out=ws.scores)

        # losses: -w * Σ_k log σ(t_k) with t_0 = s_0 and t_n = -s_n, using
        # log σ(t) = min(t, 0) - log1p(exp(-|t|))   (|t| = |s| either way)
        softplus = ws.loss_scratch_a
        signed = ws.loss_scratch_b
        np.abs(ws.scores, out=softplus)
        np.negative(softplus, out=softplus)
        np.exp(softplus, out=softplus)
        np.log1p(softplus, out=softplus)
        np.negative(ws.scores, out=signed)
        signed[:, 0] = ws.scores[:, 0]
        np.minimum(signed, 0.0, out=signed)
        np.subtract(signed, softplus, out=signed)
        np.sum(signed, axis=1, out=ws.losses)
        np.multiply(ws.losses, weights, out=ws.losses)
        np.negative(ws.losses, out=ws.losses)

        # errors = w * (σ(s) - indicator), computed in place
        errors = ws.errors
        np.negative(ws.scores, out=errors)
        np.exp(errors, out=errors)
        np.add(errors, 1.0, out=errors)
        np.reciprocal(errors, out=errors)
        errors[:, 0] -= 1.0
        weights_col = ws.weights_col if weights is ws.weights else weights[:, None]
        np.multiply(errors, weights_col, out=errors)

        np.einsum("bk,bkr->br", errors, ws.context_vecs, out=ws.center_gradients)
        np.multiply(ws.errors_col, ws.center_vecs_mid, out=ws.context_gradients)
        return ws.gradients

    def batch_loss(
        self,
        w_in: np.ndarray,
        w_out: np.ndarray,
        batch: SubgraphBatch | Sequence[EdgeSubgraph],
    ) -> float:
        """Mean loss over a batch of edge subgraphs (vectorized).

        Prefer reading :attr:`BatchGradients.mean_loss` when gradients are
        being computed anyway — the scores are shared, so calling both would
        pay for the same sigmoids twice.
        """
        batch, weights = self._resolve_batch(batch)
        _, _, scores = self._batch_scores(w_in, w_out, batch)
        return float(np.mean(self._batch_losses(scores, weights)))

    def __repr__(self) -> str:
        return (
            f"StructurePreferenceObjective(proximity={self.proximity.name!r}, "
            f"weight_floor={self.weight_floor})"
        )
