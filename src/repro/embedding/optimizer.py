"""Plain SGD with optional learning-rate decay.

The paper optimises skip-gram with vanilla SGD (Algorithm 2 updates each
weight matrix by the averaged, possibly-noised batch gradient scaled by the
learning rate ``η``).  The optimiser here applies dense deltas; sparsity is
handled upstream by the trainers, which build dense delta matrices whose
untouched rows are zero.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["SGDOptimizer"]


class SGDOptimizer:
    """Stochastic gradient descent on the two skip-gram matrices.

    Parameters
    ----------
    learning_rate:
        Initial step size ``η``.
    decay:
        Multiplicative decay applied per epoch: the effective rate at epoch
        ``t`` is ``η / (1 + decay · t)``.  ``0`` (default) keeps it constant,
        which is what the paper's parameter study uses.
    """

    def __init__(self, learning_rate: float, decay: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        if decay < 0:
            raise ConfigurationError(f"decay must be non-negative, got {decay}")
        self.learning_rate = float(learning_rate)
        self.decay = float(decay)
        self._epoch = 0

    @property
    def current_rate(self) -> float:
        """The learning rate in effect for the current epoch."""
        return self.learning_rate / (1.0 + self.decay * self._epoch)

    def step_epoch(self) -> None:
        """Advance the epoch counter (affects decayed learning rates only)."""
        self._epoch += 1

    def descend(self, parameters: np.ndarray, gradient: np.ndarray) -> None:
        """In-place descent step: ``parameters -= current_rate * gradient``."""
        if parameters.shape != gradient.shape:
            raise ConfigurationError(
                f"parameter/gradient shapes differ: {parameters.shape} vs {gradient.shape}"
            )
        parameters -= self.current_rate * gradient

    def descend_rows(
        self, parameters: np.ndarray, rows: np.ndarray, gradient_rows: np.ndarray
    ) -> None:
        """Sparse descent on selected rows only.

        ``rows`` may contain duplicates; contributions accumulate, matching
        a dense update where several examples touch the same row.
        """
        rows = np.asarray(rows, dtype=np.int64)
        gradient_rows = np.asarray(gradient_rows, dtype=float)
        if gradient_rows.shape[0] != rows.shape[0]:
            raise ConfigurationError(
                "rows and gradient_rows must have the same leading dimension"
            )
        np.subtract.at(parameters, rows, self.current_rate * gradient_rows)

    def descend_unique_rows(
        self, parameters: np.ndarray, rows: np.ndarray, gradient_rows: np.ndarray
    ) -> None:
        """Sparse descent when ``rows`` are known to be unique.

        Identical update to :meth:`descend_rows`, but uses plain fancy
        indexing instead of ``np.subtract.at`` — several times faster, and
        safe only because no row appears twice.
        """
        rows = np.asarray(rows, dtype=np.int64)
        gradient_rows = np.asarray(gradient_rows, dtype=float)
        if gradient_rows.shape[0] != rows.shape[0]:
            raise ConfigurationError(
                "rows and gradient_rows must have the same leading dimension"
            )
        parameters[rows] -= self.current_rate * gradient_rows

    def __repr__(self) -> str:
        return f"SGDOptimizer(learning_rate={self.learning_rate}, decay={self.decay})"
