"""Plain SGD with optional learning-rate decay.

The paper optimises skip-gram with vanilla SGD (Algorithm 2 updates each
weight matrix by the averaged, possibly-noised batch gradient scaled by the
learning rate ``η``).  The optimiser here applies dense deltas; sparsity is
handled upstream by the trainers, which build dense delta matrices whose
untouched rows are zero.

Every ``descend*`` method rejects float gradients whose dtype differs from
the parameters': numpy would otherwise upcast silently, and a float32
compute run that quietly descends through float64 temporaries voids the
whole point of the fast path.  Integer gradients (convenience callers,
tests) are still cast to the parameter dtype — they are exact.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["SGDOptimizer"]


def _check_gradient_dtype(parameters: np.ndarray, gradient: np.ndarray) -> np.ndarray:
    """Return ``gradient`` dtype-aligned with ``parameters`` or raise.

    Float/float mismatches raise :class:`ConfigurationError` naming both
    dtypes; non-float gradients (ints from convenience callers) are cast to
    the parameter dtype, which is lossless.
    """
    if gradient.dtype == parameters.dtype:
        return gradient
    if not np.issubdtype(gradient.dtype, np.floating):
        return gradient.astype(parameters.dtype)
    raise ConfigurationError(
        f"gradient dtype {gradient.dtype} does not match parameter dtype "
        f"{parameters.dtype}; cast the gradients (or configure the trainer's "
        "compute_dtype) instead of relying on a silent upcast"
    )


class SGDOptimizer:
    """Stochastic gradient descent on the two skip-gram matrices.

    Parameters
    ----------
    learning_rate:
        Initial step size ``η``.
    decay:
        Multiplicative decay applied per epoch: the effective rate at epoch
        ``t`` is ``η / (1 + decay · t)``.  ``0`` (default) keeps it constant,
        which is what the paper's parameter study uses.
    """

    def __init__(self, learning_rate: float, decay: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        if decay < 0:
            raise ConfigurationError(f"decay must be non-negative, got {decay}")
        self.learning_rate = float(learning_rate)
        self.decay = float(decay)
        self._epoch = 0

    @property
    def current_rate(self) -> float:
        """The learning rate in effect for the current epoch."""
        return self.learning_rate / (1.0 + self.decay * self._epoch)

    def step_epoch(self) -> None:
        """Advance the epoch counter (affects decayed learning rates only)."""
        self._epoch += 1

    def descend(self, parameters: np.ndarray, gradient: np.ndarray) -> None:
        """In-place descent step: ``parameters -= current_rate * gradient``."""
        if parameters.shape != gradient.shape:
            raise ConfigurationError(
                f"parameter/gradient shapes differ: {parameters.shape} vs {gradient.shape}"
            )
        gradient = _check_gradient_dtype(parameters, gradient)
        parameters -= self.current_rate * gradient

    def descend_rows(
        self,
        parameters: np.ndarray,
        rows: np.ndarray,
        gradient_rows: np.ndarray,
        *,
        scratch: np.ndarray | None = None,
    ) -> None:
        """Sparse descent on selected rows only.

        ``rows`` may contain duplicates; contributions accumulate, matching
        a dense update where several examples touch the same row.  With
        ``scratch`` (a preallocated ``gradient_rows``-shaped buffer) the
        rate-scaled rows are computed into it instead of a fresh array —
        the workspace fast path.
        """
        rows = np.asarray(rows, dtype=np.int64)
        gradient_rows = np.asarray(gradient_rows)
        if gradient_rows.shape[0] != rows.shape[0]:
            raise ConfigurationError(
                "rows and gradient_rows must have the same leading dimension"
            )
        gradient_rows = _check_gradient_dtype(parameters, gradient_rows)
        if scratch is None:
            np.subtract.at(parameters, rows, self.current_rate * gradient_rows)
        else:
            np.multiply(gradient_rows, self.current_rate, out=scratch)
            np.subtract.at(parameters, rows, scratch)

    def descend_unique_rows(
        self,
        parameters: np.ndarray,
        rows: np.ndarray,
        gradient_rows: np.ndarray,
        *,
        scratch: np.ndarray | None = None,
        gather: np.ndarray | None = None,
    ) -> None:
        """Sparse descent when ``rows`` are known to be unique.

        Identical update to :meth:`descend_rows`, but uses plain fancy
        indexing instead of ``np.subtract.at`` — several times faster, and
        safe only because no row appears twice.

        The allocation-free variant takes both ``scratch`` (may alias
        ``gradient_rows``; receives the rate-scaled rows) and ``gather`` (a
        same-shaped buffer receiving the touched parameter rows): the update
        becomes gather → subtract → scatter-assign with zero fresh arrays.
        """
        rows = np.asarray(rows, dtype=np.int64)
        gradient_rows = np.asarray(gradient_rows)
        if gradient_rows.shape[0] != rows.shape[0]:
            raise ConfigurationError(
                "rows and gradient_rows must have the same leading dimension"
            )
        gradient_rows = _check_gradient_dtype(parameters, gradient_rows)
        if scratch is None or gather is None:
            parameters[rows] -= self.current_rate * gradient_rows
            return
        np.multiply(gradient_rows, self.current_rate, out=scratch)
        np.take(parameters, rows, axis=0, out=gather, mode="clip")
        np.subtract(gather, scratch, out=gather)
        parameters[rows] = gather

    def __repr__(self) -> str:
        return f"SGDOptimizer(learning_rate={self.learning_rate}, decay={self.decay})"
