"""Gradient perturbation strategies: naive (Eq. 6) vs non-zero (Eq. 9).

Both strategies follow the DPSGD recipe: per-example gradients are clipped
to ℓ2 norm ``C``, summed over the batch, noised with a Gaussian, and
averaged by the batch size ``B``.  They differ in *where* the noise goes and
in the sensitivity that calibrates it:

* :class:`NaivePerturbation` — the first-cut solution of Section III-B.
  Under node-level DP the summed gradient has worst-case sensitivity
  ``S = B·C`` (all B examples may involve the changed node), and the noise
  matrix ``N(S²σ²I)`` is dense: every row of the gradient receives noise,
  including rows whose gradient is exactly zero.
* :class:`NonZeroPerturbation` — the paper's noise-tolerance mechanism.
  Skip-gram gradients are sparse (one ``W_in`` row and ``k+1`` ``W_out``
  rows per example), so noise is injected only into the rows that are
  actually non-zero, calibrated with sensitivity ``C`` (one clipped example
  per touched row in the worst case).

The contrast between the two is the ablation of Table VI.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..analysis.markers import zero_alloc
from ..engine.batch import BatchGradients
from ..exceptions import ConfigurationError, TrainingError
from ..privacy.mechanisms import clip_gradient
from ..utils.rng import ensure_rng
from .objectives import PairGradients

__all__ = [
    "PerturbedBatchGradients",
    "SparsePerturbedBatchGradients",
    "PerturbationStrategy",
    "NaivePerturbation",
    "NonZeroPerturbation",
    "get_perturbation",
]


def _segment_sum(
    segment_ids: np.ndarray, values: np.ndarray, num_segments: int
) -> np.ndarray:
    """Row-wise scatter-add ``values`` into ``num_segments`` rows, C-speed.

    Equivalent to ``np.add.at(out, segment_ids, values)`` (same sequential
    accumulation order, hence bitwise-identical sums) but implemented with a
    single flat ``np.bincount``, which is dramatically faster for the
    thousands of small rows a training batch touches.  The sums are
    accumulated in float64 (bincount's native dtype) and returned in the
    dtype of ``values`` so float32 compute runs stay float32 end to end.
    """
    dim = values.shape[1]
    flat_idx = (segment_ids[:, None] * dim + np.arange(dim)).ravel()
    flat = np.bincount(flat_idx, weights=values.ravel(), minlength=num_segments * dim)
    return flat.reshape(num_segments, dim).astype(values.dtype, copy=False)


@dataclass
class PerturbedBatchGradients:
    """Noisy batch gradients for both skip-gram matrices.

    ``w_in_gradient`` and ``w_out_gradient`` are dense *summed* (not yet
    averaged) gradients of the same shape as the model parameters; rows not
    touched by the batch are zero in the non-zero strategy and noisy in the
    naive strategy.  ``w_in_counts`` / ``w_out_counts`` record how many
    examples touched each row, so the trainer can choose its normalisation
    (divide by the batch size as in the paper's Eq. 9, or per-row counts).
    """

    w_in_gradient: np.ndarray
    w_out_gradient: np.ndarray
    w_in_counts: np.ndarray
    w_out_counts: np.ndarray
    batch_size: int
    mean_loss: float

    def averaged_by_batch(self) -> tuple[np.ndarray, np.ndarray]:
        """Eq. (9) normalisation: divide both sums by the batch size ``B``."""
        return self.w_in_gradient / self.batch_size, self.w_out_gradient / self.batch_size

    def averaged_by_row_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-row normalisation: divide each row by the number of examples touching it.

        Rows touched by no example keep their value (zero for the non-zero
        strategy; pure noise for the naive strategy — which is exactly the
        penalty the naive strategy pays).
        """
        in_div = np.maximum(self.w_in_counts, 1.0)[:, None]
        out_div = np.maximum(self.w_out_counts, 1.0)[:, None]
        return self.w_in_gradient / in_div, self.w_out_gradient / out_div


@dataclass
class SparsePerturbedBatchGradients:
    """Noisy batch gradients stored only for the touched rows.

    The non-zero strategy (Eq. 9) leaves every untouched row exactly zero,
    so materialising two dense ``|V| × r`` matrices per step is wasted work
    at scale.  This container keeps the sorted touched-row indices and their
    compact gradient blocks; :meth:`averaged_rows` feeds a sparse descent
    directly, while the dense properties reconstruct the full matrices for
    callers written against :class:`PerturbedBatchGradients`.
    """

    w_in_rows: np.ndarray  # [U_in] sorted unique touched W_in rows
    w_in_gradient_rows: np.ndarray  # [U_in, r] noisy summed gradients
    w_in_row_counts: np.ndarray  # [U_in] examples touching each row
    w_out_rows: np.ndarray  # [U_out]
    w_out_gradient_rows: np.ndarray  # [U_out, r]
    w_out_row_counts: np.ndarray  # [U_out]
    num_nodes: int
    batch_size: int
    mean_loss: float

    def averaged_rows(
        self, normalization: str = "per_row"
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(w_in_rows, w_in_grads, w_out_rows, w_out_grads)`` averaged.

        ``normalization`` is ``"per_row"`` (divide each row by the number of
        examples that touched it) or ``"batch"`` (divide by ``B``, the
        literal Eq. 9).  Untouched rows are zero either way, so descending
        only on these rows matches the dense update exactly.
        """
        if normalization == "batch":
            return (
                self.w_in_rows,
                self.w_in_gradient_rows / self.batch_size,
                self.w_out_rows,
                self.w_out_gradient_rows / self.batch_size,
            )
        if normalization == "per_row":
            return (
                self.w_in_rows,
                self.w_in_gradient_rows / np.maximum(self.w_in_row_counts, 1.0)[:, None],
                self.w_out_rows,
                self.w_out_gradient_rows / np.maximum(self.w_out_row_counts, 1.0)[:, None],
            )
        raise TrainingError(
            f"normalization must be 'per_row' or 'batch', got {normalization!r}"
        )

    # ----------------------- dense compatibility ---------------------- #
    def _densify(self, rows: np.ndarray, values: np.ndarray) -> np.ndarray:
        dense = np.zeros((self.num_nodes, values.shape[1]), dtype=values.dtype)
        dense[rows] = values
        return dense

    @property
    def w_in_gradient(self) -> np.ndarray:
        """Dense ``|V| × r`` view of the noisy summed ``W_in`` gradient."""
        return self._densify(self.w_in_rows, self.w_in_gradient_rows)

    @property
    def w_out_gradient(self) -> np.ndarray:
        """Dense ``|V| × r`` view of the noisy summed ``W_out`` gradient."""
        return self._densify(self.w_out_rows, self.w_out_gradient_rows)

    @property
    def w_in_counts(self) -> np.ndarray:
        """Dense per-row example counts for ``W_in``."""
        counts = np.zeros(self.num_nodes, dtype=self.w_in_row_counts.dtype)
        counts[self.w_in_rows] = self.w_in_row_counts
        return counts

    @property
    def w_out_counts(self) -> np.ndarray:
        """Dense per-row example counts for ``W_out``."""
        counts = np.zeros(self.num_nodes, dtype=self.w_out_row_counts.dtype)
        counts[self.w_out_rows] = self.w_out_row_counts
        return counts

    def averaged_by_batch(self) -> tuple[np.ndarray, np.ndarray]:
        """Dense Eq. (9) normalisation (compatibility path)."""
        rows_in, g_in, rows_out, g_out = self.averaged_rows("batch")
        return self._densify(rows_in, g_in), self._densify(rows_out, g_out)

    def averaged_by_row_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Dense per-row normalisation (compatibility path)."""
        rows_in, g_in, rows_out, g_out = self.averaged_rows("per_row")
        return self._densify(rows_in, g_in), self._densify(rows_out, g_out)


class PerturbationStrategy(abc.ABC):
    """Base class: clip, aggregate, noise, and average per-example gradients.

    Parameters
    ----------
    clipping_threshold:
        Per-example ℓ2 clipping threshold ``C``.
    noise_multiplier:
        Gaussian noise multiplier ``σ``; the injected noise std is
        ``σ · sensitivity``.
    seed:
        Seed or generator for the noise draws.
    """

    name: str = "base"

    def __init__(
        self,
        clipping_threshold: float,
        noise_multiplier: float,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if clipping_threshold <= 0:
            raise ConfigurationError(
                f"clipping_threshold must be positive, got {clipping_threshold}"
            )
        if noise_multiplier <= 0:
            raise ConfigurationError(
                f"noise_multiplier must be positive, got {noise_multiplier}"
            )
        self.clipping_threshold = float(clipping_threshold)
        self.noise_multiplier = float(noise_multiplier)
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------ #
    def perturb(
        self,
        example_gradients: list[PairGradients],
        num_nodes: int,
        embedding_dim: int,
    ) -> PerturbedBatchGradients:
        """Clip each example, aggregate over the batch, add noise, and average."""
        if not example_gradients:
            raise TrainingError("example_gradients must not be empty")
        batch_size = len(example_gradients)

        w_in_sum = np.zeros((num_nodes, embedding_dim))
        w_out_sum = np.zeros((num_nodes, embedding_dim))
        w_in_counts = np.zeros(num_nodes)
        w_out_counts = np.zeros(num_nodes)
        touched_in: set[int] = set()
        touched_out: set[int] = set()
        total_loss = 0.0

        for example in example_gradients:
            clipped_center = clip_gradient(example.center_gradient, self.clipping_threshold)
            w_in_sum[example.center] += clipped_center
            w_in_counts[example.center] += 1
            touched_in.add(int(example.center))

            clipped_context = self._clip_context_rows(example.context_gradients)
            np.add.at(w_out_sum, example.context_nodes, clipped_context)
            np.add.at(w_out_counts, example.context_nodes, 1)
            touched_out.update(int(n) for n in example.context_nodes)

            total_loss += example.loss

        w_in_noisy = self._add_noise(w_in_sum, sorted(touched_in), batch_size)
        w_out_noisy = self._add_noise(w_out_sum, sorted(touched_out), batch_size)

        return PerturbedBatchGradients(
            w_in_gradient=w_in_noisy,
            w_out_gradient=w_out_noisy,
            w_in_counts=w_in_counts,
            w_out_counts=w_out_counts,
            batch_size=batch_size,
            mean_loss=total_loss / batch_size,
        )

    def _clip_context_rows(self, context_gradients: np.ndarray) -> np.ndarray:
        """Clip the joint (k+1)-row context gradient of one example to norm C."""
        return clip_gradient(context_gradients, self.clipping_threshold)

    # ------------------------------------------------------------------ #
    def _clip_batch(
        self, batch_gradients: BatchGradients
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized per-example clipping over the same ℓ2 blocks as Eq. (3).

        The norm of each example is taken over one ``W_in`` row and over the
        joint ``(k+1)``-row ``W_out`` block respectively, matching the
        per-example :func:`clip_gradient` calls of the list-based path.
        """
        threshold = self.clipping_threshold

        center_grads = batch_gradients.center_gradients  # [B, r]
        center_norms = np.sqrt(np.einsum("br,br->b", center_grads, center_grads))
        clipped_centers = center_grads / np.maximum(1.0, center_norms / threshold)[:, None]

        context_grads = batch_gradients.context_gradients  # [B, 1+k, r]
        context_norms = np.sqrt(np.einsum("bkr,bkr->b", context_grads, context_grads))
        clipped_contexts = (
            context_grads / np.maximum(1.0, context_norms / threshold)[:, None, None]
        )
        return clipped_centers, clipped_contexts

    def perturb_batch(
        self,
        batch_gradients: BatchGradients,
        num_nodes: int,
        embedding_dim: int,
        *,
        workspace=None,
    ) -> PerturbedBatchGradients | SparsePerturbedBatchGradients:
        """Vectorized :meth:`perturb`: clip → aggregate → noise, no Python loop.

        Numerically equivalent to the per-example path — per-example ℓ2
        norms are taken over the same blocks (one ``W_in`` row; the joint
        ``(k+1)``-row ``W_out`` block), clipping happens before noising
        exactly as Eq. (9) prescribes, and the noise is drawn for the same
        sorted set of touched rows so the RNG stream matches draw for draw.

        ``workspace`` is accepted by every strategy for interface
        uniformity; only strategies with a compact result (the non-zero
        Eq. 9) use it — the dense Eq. 6 noise matrix is inherently a fresh
        ``|V| × r`` draw, so this base implementation ignores it.
        """
        del workspace  # dense strategies have no allocation-free form
        batch_size = len(batch_gradients)
        if batch_size == 0:
            raise TrainingError("batch_gradients must not be empty")
        clipped_centers, clipped_contexts = self._clip_batch(batch_gradients)
        dtype = clipped_centers.dtype

        w_in_sum = np.zeros((num_nodes, embedding_dim), dtype=dtype)
        w_in_counts = np.zeros(num_nodes, dtype=dtype)
        np.add.at(w_in_sum, batch_gradients.centers, clipped_centers)
        np.add.at(w_in_counts, batch_gradients.centers, 1)

        flat_contexts = batch_gradients.context_nodes.reshape(-1)
        w_out_sum = np.zeros((num_nodes, embedding_dim), dtype=dtype)
        w_out_counts = np.zeros(num_nodes, dtype=dtype)
        np.add.at(w_out_sum, flat_contexts, clipped_contexts.reshape(-1, embedding_dim))
        np.add.at(w_out_counts, flat_contexts, 1)

        w_in_noisy = self._add_noise(w_in_sum, np.unique(batch_gradients.centers), batch_size)
        w_out_noisy = self._add_noise(w_out_sum, np.unique(flat_contexts), batch_size)

        return PerturbedBatchGradients(
            w_in_gradient=w_in_noisy,
            w_out_gradient=w_out_noisy,
            w_in_counts=w_in_counts,
            w_out_counts=w_out_counts,
            batch_size=batch_size,
            mean_loss=batch_gradients.mean_loss,
        )

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def sensitivity(self, batch_size: int) -> float:
        """The ℓ2 sensitivity used to calibrate the injected noise."""

    @abc.abstractmethod
    def _add_noise(
        self,
        gradient_sum: np.ndarray,
        touched_rows: Sequence[int] | np.ndarray,
        batch_size: int,
    ) -> np.ndarray:
        """Inject Gaussian noise into the summed gradient and return it."""


class NaivePerturbation(PerturbationStrategy):
    """Eq. (6): dense noise with batch-level sensitivity ``B · C``."""

    name = "naive"

    def sensitivity(self, batch_size: int) -> float:
        """Worst-case node-level sensitivity of the summed gradient: ``B·C``."""
        if batch_size < 1:
            raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
        return self.clipping_threshold * batch_size

    def _add_noise(
        self,
        gradient_sum: np.ndarray,
        touched_rows: Sequence[int] | np.ndarray,
        batch_size: int,
    ) -> np.ndarray:
        std = self.noise_multiplier * self.sensitivity(batch_size)
        # noise is always drawn in float64 (the DP calibration is exact);
        # the sum keeps the compute dtype of the gradients
        noise = self._rng.normal(0.0, std, size=gradient_sum.shape)
        return (gradient_sum + noise).astype(gradient_sum.dtype, copy=False)


class NonZeroPerturbation(PerturbationStrategy):
    """Eq. (9): noise only on non-zero gradient rows, sensitivity ``C``."""

    name = "nonzero"

    def perturb_batch(
        self,
        batch_gradients: BatchGradients,
        num_nodes: int,
        embedding_dim: int,
        *,
        workspace=None,
    ) -> SparsePerturbedBatchGradients:
        """Compact fast path: everything stays in touched-row space.

        Untouched rows are exactly zero under Eq. (9), so the clip →
        aggregate → noise pipeline never materialises the dense ``|V| × r``
        matrices — sums are bincount segment-sums over the unique touched
        rows and the Gaussian draw covers exactly those rows, in the same
        sorted order (and hence the same RNG stream) as the dense paths.

        With a :class:`~repro.engine.StepWorkspace` the same pipeline runs
        allocation-free through the workspace's segment scratch (in-place
        sort + ``reduceat`` instead of ``unique`` + ``bincount``) and the
        Gaussians land in a reused float64 buffer via
        ``standard_normal(out=...)`` — same draw count, order and values as
        the allocating path, so the noise stream stays pinned.
        """
        batch_size = len(batch_gradients)
        if batch_size == 0:
            raise TrainingError("batch_gradients must not be empty")
        if workspace is not None:
            return self._perturb_batch_into(
                batch_gradients, num_nodes, embedding_dim, workspace
            )
        clipped_centers, clipped_contexts = self._clip_batch(batch_gradients)
        dtype = clipped_centers.dtype
        std = self.noise_multiplier * self.sensitivity(batch_size)

        w_in_rows, inverse_in = np.unique(batch_gradients.centers, return_inverse=True)
        w_in_grads = _segment_sum(inverse_in, clipped_centers, w_in_rows.size)
        w_in_counts = np.bincount(inverse_in, minlength=w_in_rows.size).astype(dtype)
        w_in_grads += self._rng.normal(0.0, std, size=(w_in_rows.size, embedding_dim))

        flat_contexts = batch_gradients.context_nodes.reshape(-1)
        w_out_rows, inverse_out = np.unique(flat_contexts, return_inverse=True)
        w_out_grads = _segment_sum(
            inverse_out, clipped_contexts.reshape(-1, embedding_dim), w_out_rows.size
        )
        w_out_counts = np.bincount(inverse_out, minlength=w_out_rows.size).astype(dtype)
        w_out_grads += self._rng.normal(0.0, std, size=(w_out_rows.size, embedding_dim))

        return SparsePerturbedBatchGradients(
            w_in_rows=w_in_rows,
            w_in_gradient_rows=w_in_grads,
            w_in_row_counts=w_in_counts,
            w_out_rows=w_out_rows,
            w_out_gradient_rows=w_out_grads,
            w_out_row_counts=w_out_counts,
            num_nodes=num_nodes,
            batch_size=batch_size,
            mean_loss=batch_gradients.mean_loss,
        )

    # ------------------------------------------------------------------ #
    @zero_alloc
    def _clip_batch_inplace(self, batch_gradients: BatchGradients, workspace) -> None:
        """Per-example Eq. (3) clipping, mutating the workspace gradient buffers.

        Same ℓ2 blocks as :meth:`_clip_batch`; legal only because the fast
        path owns the gradient buffers and overwrites them next step anyway.
        """
        threshold = self.clipping_threshold
        ws = workspace
        norms = ws.example_norms
        center_grads = batch_gradients.center_gradients
        np.einsum("br,br->b", center_grads, center_grads, out=norms)
        np.sqrt(norms, out=norms)
        np.divide(norms, threshold, out=norms)
        np.maximum(norms, 1.0, out=norms)
        np.divide(center_grads, ws.example_norms_col, out=center_grads)

        context_grads = batch_gradients.context_gradients
        np.einsum("bkr,bkr->b", context_grads, context_grads, out=norms)
        np.sqrt(norms, out=norms)
        np.divide(norms, threshold, out=norms)
        np.maximum(norms, 1.0, out=norms)
        np.divide(context_grads, ws.example_norms_col3, out=context_grads)

    @zero_alloc
    def _perturb_batch_into(
        self,
        batch_gradients: BatchGradients,
        num_nodes: int,
        embedding_dim: int,
        workspace,
    ):
        """Allocation-free Eq. (9): clip in place, segment-reduce, noise in place.

        Returns the workspace's reused
        :class:`~repro.engine.workspace.WorkspacePerturbedGradients` holding
        views into the scratch buffers — valid until the next step.  Unlike
        the default path, clipping MUTATES the incoming gradient buffers
        (they are workspace scratch on the engine's fast path; copy first if
        you pass your own and still need the raw values).
        """
        del num_nodes, embedding_dim  # bound by the workspace geometry
        ws = workspace
        batch_size = len(batch_gradients)
        if batch_gradients.context_gradients.shape != ws.context_gradients.shape:
            raise TrainingError(
                f"batch gradients shape {batch_gradients.context_gradients.shape} "
                f"does not match the workspace geometry {ws.context_gradients.shape}"
            )
        self._clip_batch_inplace(batch_gradients, ws)
        std = self.noise_multiplier * self.sensitivity(batch_size)

        result = ws.perturb_result
        result.batch_size = batch_size
        result.mean_loss = batch_gradients.mean_loss
        if batch_gradients is ws.gradients:
            flat_rows = ws.contexts_flat
            flat_values = ws.context_gradients_flat
        else:  # foreign gradients: reshape views, still no data copies
            flat_rows = batch_gradients.context_nodes.reshape(-1)
            flat_values = batch_gradients.context_gradients.reshape(
                -1, batch_gradients.context_gradients.shape[-1]
            )
        phases = (
            ("w_in", ws.center_scratch, batch_gradients.centers,
             batch_gradients.center_gradients),
            ("w_out", ws.context_scratch, flat_rows, flat_values),
        )
        for prefix, scratch, rows, values in phases:
            unique = scratch.reduce(rows, values)
            noise = scratch.noise[:unique]
            self._rng.standard_normal(out=noise)
            np.multiply(noise, std, out=noise)
            sums = scratch.sums[:unique]
            if scratch.noise_cast is not scratch.noise:
                # stage the float64 draws in the compute dtype: copyto casts
                # in place, a cross-dtype np.add would allocate buffers
                noise = scratch.noise_cast[:unique]
                np.copyto(noise, scratch.noise[:unique], casting="same_kind")
            np.add(sums, noise, out=sums)
            setattr(result, f"{prefix}_rows", scratch.unique_rows[:unique])
            setattr(result, f"{prefix}_sums", sums)
            setattr(result, f"{prefix}_counts", scratch.counts[:unique])
        return result

    def sensitivity(self, batch_size: int) -> float:
        """Per-row sensitivity of the non-zero rows: the clipping threshold ``C``."""
        if batch_size < 1:
            raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
        return self.clipping_threshold

    def _add_noise(
        self,
        gradient_sum: np.ndarray,
        touched_rows: Sequence[int] | np.ndarray,
        batch_size: int,
    ) -> np.ndarray:
        noisy = gradient_sum.copy()
        rows = np.asarray(touched_rows, dtype=np.int64)
        if rows.size:
            std = self.noise_multiplier * self.sensitivity(batch_size)
            noise = self._rng.normal(0.0, std, size=(rows.size, gradient_sum.shape[1]))
            noisy[rows] += noise
        return noisy


_STRATEGIES: dict[str, type[PerturbationStrategy]] = {
    NaivePerturbation.name: NaivePerturbation,
    NonZeroPerturbation.name: NonZeroPerturbation,
}


def get_perturbation(
    name: str,
    clipping_threshold: float,
    noise_multiplier: float,
    seed: int | np.random.Generator | None = None,
) -> PerturbationStrategy:
    """Instantiate a perturbation strategy by name (``"naive"`` or ``"nonzero"``)."""
    key = name.strip().lower()
    if key not in _STRATEGIES:
        raise ConfigurationError(
            f"unknown perturbation strategy {name!r}; available: {sorted(_STRATEGIES)}"
        )
    return _STRATEGIES[key](clipping_threshold, noise_multiplier, seed=seed)
