"""Gradient perturbation strategies: naive (Eq. 6) vs non-zero (Eq. 9).

Both strategies follow the DPSGD recipe: per-example gradients are clipped
to ℓ2 norm ``C``, summed over the batch, noised with a Gaussian, and
averaged by the batch size ``B``.  They differ in *where* the noise goes and
in the sensitivity that calibrates it:

* :class:`NaivePerturbation` — the first-cut solution of Section III-B.
  Under node-level DP the summed gradient has worst-case sensitivity
  ``S = B·C`` (all B examples may involve the changed node), and the noise
  matrix ``N(S²σ²I)`` is dense: every row of the gradient receives noise,
  including rows whose gradient is exactly zero.
* :class:`NonZeroPerturbation` — the paper's noise-tolerance mechanism.
  Skip-gram gradients are sparse (one ``W_in`` row and ``k+1`` ``W_out``
  rows per example), so noise is injected only into the rows that are
  actually non-zero, calibrated with sensitivity ``C`` (one clipped example
  per touched row in the worst case).

The contrast between the two is the ablation of Table VI.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError, TrainingError
from ..privacy.mechanisms import clip_gradient
from ..utils.rng import ensure_rng
from .objectives import PairGradients

__all__ = [
    "PerturbedBatchGradients",
    "PerturbationStrategy",
    "NaivePerturbation",
    "NonZeroPerturbation",
    "get_perturbation",
]


@dataclass
class PerturbedBatchGradients:
    """Noisy batch gradients for both skip-gram matrices.

    ``w_in_gradient`` and ``w_out_gradient`` are dense *summed* (not yet
    averaged) gradients of the same shape as the model parameters; rows not
    touched by the batch are zero in the non-zero strategy and noisy in the
    naive strategy.  ``w_in_counts`` / ``w_out_counts`` record how many
    examples touched each row, so the trainer can choose its normalisation
    (divide by the batch size as in the paper's Eq. 9, or per-row counts).
    """

    w_in_gradient: np.ndarray
    w_out_gradient: np.ndarray
    w_in_counts: np.ndarray
    w_out_counts: np.ndarray
    batch_size: int
    mean_loss: float

    def averaged_by_batch(self) -> tuple[np.ndarray, np.ndarray]:
        """Eq. (9) normalisation: divide both sums by the batch size ``B``."""
        return self.w_in_gradient / self.batch_size, self.w_out_gradient / self.batch_size

    def averaged_by_row_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-row normalisation: divide each row by the number of examples touching it.

        Rows touched by no example keep their value (zero for the non-zero
        strategy; pure noise for the naive strategy — which is exactly the
        penalty the naive strategy pays).
        """
        in_div = np.maximum(self.w_in_counts, 1.0)[:, None]
        out_div = np.maximum(self.w_out_counts, 1.0)[:, None]
        return self.w_in_gradient / in_div, self.w_out_gradient / out_div


class PerturbationStrategy(abc.ABC):
    """Base class: clip, aggregate, noise, and average per-example gradients.

    Parameters
    ----------
    clipping_threshold:
        Per-example ℓ2 clipping threshold ``C``.
    noise_multiplier:
        Gaussian noise multiplier ``σ``; the injected noise std is
        ``σ · sensitivity``.
    seed:
        Seed or generator for the noise draws.
    """

    name: str = "base"

    def __init__(
        self,
        clipping_threshold: float,
        noise_multiplier: float,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if clipping_threshold <= 0:
            raise ConfigurationError(
                f"clipping_threshold must be positive, got {clipping_threshold}"
            )
        if noise_multiplier <= 0:
            raise ConfigurationError(
                f"noise_multiplier must be positive, got {noise_multiplier}"
            )
        self.clipping_threshold = float(clipping_threshold)
        self.noise_multiplier = float(noise_multiplier)
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------ #
    def perturb(
        self,
        example_gradients: list[PairGradients],
        num_nodes: int,
        embedding_dim: int,
    ) -> PerturbedBatchGradients:
        """Clip each example, aggregate over the batch, add noise, and average."""
        if not example_gradients:
            raise TrainingError("example_gradients must not be empty")
        batch_size = len(example_gradients)

        w_in_sum = np.zeros((num_nodes, embedding_dim))
        w_out_sum = np.zeros((num_nodes, embedding_dim))
        w_in_counts = np.zeros(num_nodes)
        w_out_counts = np.zeros(num_nodes)
        touched_in: set[int] = set()
        touched_out: set[int] = set()
        total_loss = 0.0

        for example in example_gradients:
            clipped_center = clip_gradient(example.center_gradient, self.clipping_threshold)
            w_in_sum[example.center] += clipped_center
            w_in_counts[example.center] += 1
            touched_in.add(int(example.center))

            clipped_context = self._clip_context_rows(example.context_gradients)
            np.add.at(w_out_sum, example.context_nodes, clipped_context)
            np.add.at(w_out_counts, example.context_nodes, 1)
            touched_out.update(int(n) for n in example.context_nodes)

            total_loss += example.loss

        w_in_noisy = self._add_noise(w_in_sum, sorted(touched_in), batch_size)
        w_out_noisy = self._add_noise(w_out_sum, sorted(touched_out), batch_size)

        return PerturbedBatchGradients(
            w_in_gradient=w_in_noisy,
            w_out_gradient=w_out_noisy,
            w_in_counts=w_in_counts,
            w_out_counts=w_out_counts,
            batch_size=batch_size,
            mean_loss=total_loss / batch_size,
        )

    def _clip_context_rows(self, context_gradients: np.ndarray) -> np.ndarray:
        """Clip the joint (k+1)-row context gradient of one example to norm C."""
        return clip_gradient(context_gradients, self.clipping_threshold)

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def sensitivity(self, batch_size: int) -> float:
        """The ℓ2 sensitivity used to calibrate the injected noise."""

    @abc.abstractmethod
    def _add_noise(
        self, gradient_sum: np.ndarray, touched_rows: list[int], batch_size: int
    ) -> np.ndarray:
        """Inject Gaussian noise into the summed gradient and return it."""


class NaivePerturbation(PerturbationStrategy):
    """Eq. (6): dense noise with batch-level sensitivity ``B · C``."""

    name = "naive"

    def sensitivity(self, batch_size: int) -> float:
        """Worst-case node-level sensitivity of the summed gradient: ``B·C``."""
        if batch_size < 1:
            raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
        return self.clipping_threshold * batch_size

    def _add_noise(
        self, gradient_sum: np.ndarray, touched_rows: list[int], batch_size: int
    ) -> np.ndarray:
        std = self.noise_multiplier * self.sensitivity(batch_size)
        noise = self._rng.normal(0.0, std, size=gradient_sum.shape)
        return gradient_sum + noise


class NonZeroPerturbation(PerturbationStrategy):
    """Eq. (9): noise only on non-zero gradient rows, sensitivity ``C``."""

    name = "nonzero"

    def sensitivity(self, batch_size: int) -> float:
        """Per-row sensitivity of the non-zero rows: the clipping threshold ``C``."""
        if batch_size < 1:
            raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
        return self.clipping_threshold

    def _add_noise(
        self, gradient_sum: np.ndarray, touched_rows: list[int], batch_size: int
    ) -> np.ndarray:
        noisy = gradient_sum.copy()
        if touched_rows:
            std = self.noise_multiplier * self.sensitivity(batch_size)
            rows = np.asarray(touched_rows, dtype=np.int64)
            noise = self._rng.normal(0.0, std, size=(rows.size, gradient_sum.shape[1]))
            noisy[rows] += noise
        return noisy


_STRATEGIES: dict[str, type[PerturbationStrategy]] = {
    NaivePerturbation.name: NaivePerturbation,
    NonZeroPerturbation.name: NonZeroPerturbation,
}


def get_perturbation(
    name: str,
    clipping_threshold: float,
    noise_multiplier: float,
    seed: int | np.random.Generator | None = None,
) -> PerturbationStrategy:
    """Instantiate a perturbation strategy by name (``"naive"`` or ``"nonzero"``)."""
    key = name.strip().lower()
    if key not in _STRATEGIES:
        raise ConfigurationError(
            f"unknown perturbation strategy {name!r}; available: {sorted(_STRATEGIES)}"
        )
    return _STRATEGIES[key](clipping_threshold, noise_multiplier, seed=seed)
