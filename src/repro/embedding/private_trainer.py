"""SE-PrivGEmb: the differentially private trainer (Algorithm 2).

Training loop, per epoch:

1. sample ``B`` edge subgraphs uniformly at random from the precomputed
   disjoint subgraph set ``GS`` (Algorithm 1),
2. compute the structure-preference gradients (Eq. 7 / Eq. 8),
3. clip per example, aggregate, perturb with the chosen strategy
   (non-zero Eq. 9 by default, naive Eq. 6 for the ablation), average,
4. descend on ``W_in`` and ``W_out``,
5. update the RDP accountant with sampling rate ``γ = B / |GS|`` and stop
   when the (ε, δ) budget would be exceeded (lines 8-10).

The published output is the pair ``(W_in, W_out)``; by post-processing
(Theorem 2) any downstream task computed from them retains the same
node-level DP guarantee.

The loop itself is :class:`~repro.engine.TrainingEngine`; this class is a
thin configuration of it — the clip→noise→average update rule plus the RDP
accounting and iterate-averaging hooks.

Since the estimator redesign the trainer follows the
:class:`~repro.models.Embedder` protocol: configure, then ``fit(graph)``::

    model = SEPrivGEmbTrainer(DeepWalkProximity(), privacy_config=privacy).fit(graph)
    model.result_.privacy_spent   # budget actually consumed

The pre-estimator convention — graph in the constructor, ``train()`` to
run — still works behind a :class:`DeprecationWarning` and produces
bit-identical embeddings for the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import PrivacyConfig, TrainingConfig
from ..engine import (
    EngineResult,
    IterateAveragingHook,
    PerturbedUpdate,
    RdpAccountingHook,
    SubgraphBatch,
    TrainingEngine,
    resolve_compute_dtype,
)
from ..exceptions import HogwildDegradedError, TrainingError
from ..graph import Graph
from ..graph.sampling import (
    ProximityNegativeSampler,
    SubgraphSampler,
    generate_disjoint_subgraph_arrays,
)
from ..models.base import FitResult
from ..privacy.accountant import PrivacySpent, RdpAccountant
from ..proximity.base import ProximityMatrix, ProximityMeasure
from ..robustness.checkpoint import SupervisorPolicy
from ..utils.logging import get_logger
from ..utils.rng import ensure_rng
from .objectives import StructurePreferenceObjective
from .optimizer import SGDOptimizer
from .perturbation import PerturbationStrategy, get_perturbation
from .skipgram import SkipGramModel
from .trainer import SkipGramTrainerBase

__all__ = ["PrivateEmbeddingResult", "SEPrivGEmbTrainer"]

_LOGGER = get_logger("embedding.private_trainer")


@dataclass
class PrivateEmbeddingResult:
    """Output of a private training run, including the privacy spent."""

    embeddings: np.ndarray
    context_embeddings: np.ndarray
    privacy_spent: PrivacySpent
    losses: list[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False

    @property
    def final_loss(self) -> float:
        """Loss of the last completed epoch (NaN if no epoch ran)."""
        return self.losses[-1] if self.losses else float("nan")


class SEPrivGEmbTrainer(SkipGramTrainerBase):
    """Structure-preference enabled private graph embedding (SE-PrivGEmb).

    Parameters
    ----------
    proximity:
        A :class:`ProximityMeasure` (computed at fit time, honouring
        ``proximity_cache``) or precomputed :class:`ProximityMatrix`
        providing the structure preference.
    training_config:
        Skip-gram / SGD hyper-parameters (``B``, ``η``, ``k``, ``r``,
        epochs).
    privacy_config:
        DP parameters (``ε``, ``δ``, ``σ``, ``C``).
    perturbation:
        ``"nonzero"`` (default, Eq. 9), ``"naive"`` (Eq. 6) or a
        pre-constructed :class:`PerturbationStrategy`.
    iterate_averaging:
        If ``True`` (default) the returned embedding is the average of the
        ``W_in`` iterates over all private steps (Polyak–Ruppert output
        averaging).  Averaging is post-processing of the noised updates, so
        it costs no additional privacy (Theorem 2), and it damps the noise
        accumulated by later steps — without it, utility can *decrease* with
        larger budgets because extra noisy steps hurt more than the extra
        signal helps.  Set to ``False`` to publish the final iterate exactly
        as Algorithm 2 states.
    gradient_normalization:
        ``"per_row"`` (default) divides each row of the noisy summed gradient
        by the number of batch examples that touched it; ``"batch"`` divides
        by the batch size ``B``, which is the literal Eq. (9).  The two are
        identical up to a constant rescaling of the learning rate (each row
        is touched by roughly one example per batch), and the rescaling is
        post-processing of the noised sum, so the privacy guarantee is
        unchanged; ``"per_row"`` simply keeps the effective per-row step at
        the configured ``η`` instead of ``η / B``, which is what makes the
        scaled-down experiments in this reproduction converge within the
        small epoch budgets the privacy accountant allows.
    seed:
        Master seed for initialisation, sampling and noise; overridable per
        fit with ``fit(graph, rng=...)``.
    proximity_cache:
        ``"off"`` (default), ``"default"`` (process-wide cache) or an
        explicit :class:`~repro.proximity.cache.ProximityCache`; ignored
        when ``proximity`` is already a matrix.
    fast_path:
        Opt into the zero-allocation training fast path (preallocated
        :class:`~repro.engine.StepWorkspace`, alias-table negative draws,
        partial Fisher–Yates batch indices).  Sampling RNG *streams*
        differ from the default; the privacy guarantee is unaffected —
        clipping, sensitivities and the Gaussian noise (always drawn in
        float64, same stream as the default perturb path) are unchanged.
    compute_dtype:
        ``"float64"`` (default) or ``"float32"`` for the model matrices
        and gradient arithmetic.  The RDP accountant, sensitivities and
        noise calibration always stay float64.
    workers:
        ``1`` (default) trains serially on the existing engine path,
        bit-for-bit.  ``> 1`` shards the private step stream over that
        many forked hogwild workers updating a shared-memory model
        (:mod:`repro.engine.hogwild`).  Privacy is composed honestly
        across the shards: the budgeted step count is fixed up front via
        :meth:`~repro.privacy.accountant.RdpAccountant.max_steps` (the
        same count the serial gate admits), every worker draws its own
        float64 noise from a spawned stream, and the accountant composes
        the per-shard counts with
        :meth:`~repro.privacy.accountant.RdpAccountant.step_shards` —
        RDP composition is linear in steps at fixed γ, so the reported
        (ε, δ) equals the serial accountant's exactly.  Falls back to
        serial with a warning where ``fork`` is unavailable.

    Passing the graph as the first constructor argument (the pre-estimator
    convention, followed by ``train()``) is still supported but deprecated.
    """

    #: private fits can check admission against / record into a PrivacyLedger
    _supports_ledger = True

    _LEGACY_POSITIONALS = (
        "proximity",
        "training_config",
        "privacy_config",
        "perturbation",
        "iterate_averaging",
        "gradient_normalization",
        "seed",
    )

    def __init__(
        self,
        *args,
        graph: Graph | None = None,
        proximity: ProximityMeasure | ProximityMatrix | None = None,
        training_config: TrainingConfig | None = None,
        privacy_config: PrivacyConfig | None = None,
        perturbation: str | PerturbationStrategy = "nonzero",
        iterate_averaging: bool = True,
        gradient_normalization: str = "per_row",
        seed: int | np.random.Generator | None = None,
        proximity_cache="off",
        fast_path: bool = False,
        compute_dtype="float64",
        workers: int = 1,
        hogwild_resilience: SupervisorPolicy | None = None,
    ) -> None:
        super().__init__()
        graph, values = self._resolve_init_args(
            args,
            graph,
            {
                "proximity": proximity,
                "training_config": training_config,
                "privacy_config": privacy_config,
                "perturbation": perturbation,
                "iterate_averaging": iterate_averaging,
                "gradient_normalization": gradient_normalization,
                "seed": seed,
            },
        )
        proximity = values["proximity"]
        training_config = values["training_config"]
        privacy_config = values["privacy_config"]
        perturbation = values["perturbation"]
        iterate_averaging = values["iterate_averaging"]
        gradient_normalization = values["gradient_normalization"]
        seed = values["seed"]

        if proximity is None:
            raise TrainingError("SEPrivGEmbTrainer requires a proximity measure or matrix")
        if gradient_normalization not in {"per_row", "batch"}:
            raise TrainingError(
                "gradient_normalization must be 'per_row' or 'batch', got "
                f"{gradient_normalization!r}"
            )
        self.proximity = proximity
        self.iterate_averaging = bool(iterate_averaging)
        self.gradient_normalization = gradient_normalization
        self.training_config = training_config or TrainingConfig()
        self.privacy_config = privacy_config or PrivacyConfig()
        self._perturbation_spec = perturbation
        self.perturbation: PerturbationStrategy | None = (
            perturbation if isinstance(perturbation, PerturbationStrategy) else None
        )
        self._seed = seed
        self._proximity_cache = proximity_cache
        self.fast_path = bool(fast_path)
        self.compute_dtype = resolve_compute_dtype(compute_dtype)
        self.workers = self._validate_workers(workers)
        self.hogwild_resilience = hogwild_resilience
        self.graph: Graph | None = None
        self.engine: TrainingEngine | None = None
        self.accountant: RdpAccountant | None = None
        self.proximity_matrix: ProximityMatrix | None = None

        if graph is not None:
            self._warn_legacy_graph_convention()
            self._rng = ensure_rng(seed if seed is not None else self.training_config.seed)
            self._setup(graph, self._rng)

    # ------------------------------------------------------------------ #
    def _metadata(self) -> dict:
        meta = super()._metadata()
        strategy = self.perturbation
        if strategy is not None:
            meta["perturbation"] = strategy.name
        elif isinstance(self._perturbation_spec, str):
            meta["perturbation"] = self._perturbation_spec
        return meta

    def _build_options(self) -> dict:
        return {
            **super()._build_options(),
            "iterate_averaging": self.iterate_averaging,
            "gradient_normalization": self.gradient_normalization,
        }

    @classmethod
    def from_method_spec(
        cls,
        spec,
        *,
        training=None,
        privacy=None,
        perturbation=None,
        proximity=None,
        proximity_cache="default",
        seed=None,
        **kwargs,
    ) -> "SEPrivGEmbTrainer":
        model = cls(
            proximity=proximity,
            training_config=training,
            privacy_config=privacy,
            perturbation=perturbation if perturbation is not None else "nonzero",
            seed=seed,
            proximity_cache=proximity_cache,
            **kwargs,
        )
        model._spec = spec
        return model

    # ------------------------------------------------------------------ #
    def _setup(
        self,
        graph: Graph,
        rng: np.random.Generator,
        proximity: ProximityMatrix | None = None,
    ) -> None:
        """Build model, samplers, perturbation, accountant and engine."""
        if graph.num_edges == 0:
            raise TrainingError("cannot train on a graph with no edges")
        self.graph = graph
        self._rng = rng
        self._active_workers = self._resolve_active_workers()
        self.proximity_matrix = self._resolve_proximity_matrix(graph, proximity)
        self.objective = StructurePreferenceObjective(self.proximity_matrix)

        self.model = self._make_model(graph)
        self.optimizer = SGDOptimizer(self.training_config.learning_rate)

        # Theorem-3 negative sampler: candidates uniform, mass min(P)/Σ_j p_ij.
        negative_sampler = ProximityNegativeSampler.from_proximity(
            graph, self.proximity_matrix, seed=self._rng, use_alias=self.fast_path
        )
        pool = generate_disjoint_subgraph_arrays(
            graph, negative_sampler, self.training_config.negative_samples
        )
        # Proximity weights bound once; batches slice them on the hot path.
        self._subgraph_pool: SubgraphBatch = pool.with_weights(
            self.objective.edge_weights(pool.centers, pool.positives)
        )
        self._sampler = SubgraphSampler(
            self._subgraph_pool, self.training_config.batch_size, seed=self._rng,
            fast_path=self.fast_path,
        )

        if isinstance(self._perturbation_spec, PerturbationStrategy):
            self.perturbation = self._perturbation_spec
        else:
            self.perturbation = get_perturbation(
                self._perturbation_spec,
                clipping_threshold=self.privacy_config.clipping_threshold,
                noise_multiplier=self.privacy_config.noise_multiplier,
                seed=self._rng,
            )

        self.accountant = RdpAccountant(
            noise_multiplier=self.privacy_config.noise_multiplier,
            sampling_rate=self._sampler.sampling_rate,
        )

        hooks = [
            RdpAccountingHook(
                self.accountant, self.privacy_config.epsilon, self.privacy_config.delta
            )
        ]
        if self.iterate_averaging:
            hooks.append(IterateAveragingHook())
        workspace = (
            self._ensure_workspace(self._subgraph_pool, graph.num_nodes)
            if self.fast_path
            else None
        )
        self.engine = TrainingEngine(
            model=self.model,
            optimizer=self.optimizer,
            objective=self.objective,
            sampler=self._sampler,
            update_rule=PerturbedUpdate(
                self.perturbation, gradient_normalization=self.gradient_normalization
            ),
            hooks=hooks,
            workspace=workspace,
        )

    def _hogwild_update_rule(self, rng):
        # Each worker must draw its own Gaussian noise: forked children would
        # otherwise share the parent strategy's COW generator state and emit
        # identical perturbations.  Rebuild the strategy from its calibration
        # on the worker's spawned stream.
        if isinstance(self._perturbation_spec, PerturbationStrategy):
            strategy = self._perturbation_spec
            perturbation = get_perturbation(
                strategy.name,
                clipping_threshold=strategy.clipping_threshold,
                noise_multiplier=strategy.noise_multiplier,
                seed=rng,
            )
        else:
            perturbation = get_perturbation(
                self._perturbation_spec,
                clipping_threshold=self.privacy_config.clipping_threshold,
                noise_multiplier=self.privacy_config.noise_multiplier,
                seed=rng,
            )
        return PerturbedUpdate(
            perturbation, gradient_normalization=self.gradient_normalization
        )

    def _run_engine(self, epochs: int | None) -> FitResult:
        epochs = int(epochs) if epochs is not None else self.training_config.epochs
        if epochs <= 0:
            raise TrainingError(f"epochs must be positive, got {epochs}")
        ledger = self._active_ledger
        ledger_capped = False
        if ledger is not None:
            # Durable budget gate: the in-process accountant starts at zero,
            # so prior refits recorded in the ledger must bound this run.
            # check_admission raises PrivacyBudgetExhausted *before* any
            # mechanism invocation when even one step would break the target.
            ledger.attach(self.accountant)
            admissible = ledger.check_admission(
                self.privacy_config.epsilon,
                self.privacy_config.delta,
                noise_multiplier=self.privacy_config.noise_multiplier,
                sampling_rate=self._sampler.sampling_rate,
            )
            if epochs > admissible:
                _LOGGER.info(
                    "privacy ledger caps this refit at %d of %d requested epochs",
                    admissible,
                    epochs,
                )
                epochs = admissible
                ledger_capped = True
        if getattr(self, "_active_workers", 1) > 1:
            result = self._run_private_hogwild(epochs)
        else:
            result = self.engine.run(epochs)
        spent = self.accountant.get_privacy_spent(self.privacy_config.delta)
        if ledger is not None:
            ledger.record_accountant(
                self.graph,
                self.accountant,
                method=self._spec.name if self._spec is not None else type(self).__name__,
                delta=self.privacy_config.delta,
                target_epsilon=self.privacy_config.epsilon,
            )
        self._embeddings = result.embeddings
        self._context_embeddings = result.context_embeddings
        return FitResult(
            losses=result.losses,
            epochs_run=result.epochs_run,
            stopped_early=result.stopped_early or ledger_capped,
            privacy_spent=spent,
        )

    def _run_private_hogwild(self, epochs: int) -> EngineResult:
        """Run the budget-gated step stream across the hogwild pool.

        The serial path gates per step (``RdpAccountingHook``); workers can't
        share that gate cheaply, so the equivalent budget is fixed up front:
        ``max_steps`` is exactly the count the serial gate admits, and the
        accountant then composes the actual per-shard counts.
        """
        remaining = max(
            0,
            self.accountant.max_steps(
                self.privacy_config.epsilon, self.privacy_config.delta
            )
            - self.accountant.steps,
        )
        total = min(int(epochs), remaining)
        if total == 0:
            embeddings = self.model.embeddings()
            context = self.model.w_out.copy()
            self.model.release()
            return EngineResult(
                embeddings=embeddings,
                context_embeddings=context,
                losses=[],
                epochs_run=0,
                stopped_early=True,
            )
        try:
            result = self._run_hogwild(
                total,
                iterate_averaging=self.iterate_averaging,
                stopped_early=total < int(epochs),
            )
        except HogwildDegradedError as exc:
            # Every incarnation — including the lost ones — already released
            # its noise; charge the conservative counts before the failure
            # propagates, and make the charge durable if a ledger is
            # attached.  Over-counting is privacy-safe; under-counting never.
            if exc.charged_steps:
                self.accountant.step_shards(exc.charged_steps)
                ledger = self._active_ledger
                if ledger is not None:
                    ledger.record_accountant(
                        self.graph,
                        self.accountant,
                        method=self._spec.name
                        if self._spec is not None
                        else type(self).__name__,
                        delta=self.privacy_config.delta,
                        target_epsilon=self.privacy_config.epsilon,
                    )
            raise
        run = self.last_hogwild_run
        self.accountant.step_shards(
            run.accountant_steps
            if run is not None
            else [report.steps for report in self.last_worker_reports]
        )
        return result

    # ------------------------------------------------------------------ #
    def max_private_epochs(self) -> int:
        """Number of epochs the (ε, δ) budget allows (Algorithm 2 stop rule).

        Requires a graph: the sampling rate γ depends on the subgraph set,
        so the trainer must have been constructed the deprecated way or
        already fitted.
        """
        self._require_setup()
        return self.accountant.max_steps(
            self.privacy_config.epsilon, self.privacy_config.delta
        )

    def train(self, epochs: int | None = None) -> PrivateEmbeddingResult:
        """Run Algorithm 2 and return the private embeddings (legacy entry).

        Training runs for ``epochs`` (default ``training_config.epochs``) or
        until the privacy budget is exhausted, whichever comes first.  New
        code should call ``fit(graph)`` and read ``embeddings_`` /
        ``result_``.
        """
        self._require_setup()
        result = self._run_engine(epochs)
        self._result = result
        self._dataset_fingerprint = self.graph.content_fingerprint()
        return PrivateEmbeddingResult(
            embeddings=self._embeddings,
            context_embeddings=self._context_embeddings,
            privacy_spent=result.privacy_spent,
            losses=result.losses,
            epochs_run=result.epochs_run,
            stopped_early=result.stopped_early,
        )

    def __repr__(self) -> str:
        graph_name = self.graph.name if self.graph is not None else None
        proximity = (
            self.proximity_matrix.name
            if self.proximity_matrix is not None
            else getattr(self.proximity, "name", type(self.proximity).__name__)
        )
        perturbation = (
            self.perturbation.name
            if self.perturbation is not None
            else str(self._perturbation_spec)
        )
        return (
            f"SEPrivGEmbTrainer(graph={graph_name!r}, "
            f"proximity={proximity!r}, "
            f"perturbation={perturbation!r}, "
            f"epsilon={self.privacy_config.epsilon})"
        )
