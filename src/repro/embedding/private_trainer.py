"""SE-PrivGEmb: the differentially private trainer (Algorithm 2).

Training loop, per epoch:

1. sample ``B`` edge subgraphs uniformly at random from the precomputed
   disjoint subgraph set ``GS`` (Algorithm 1),
2. compute the structure-preference gradients (Eq. 7 / Eq. 8),
3. clip per example, aggregate, perturb with the chosen strategy
   (non-zero Eq. 9 by default, naive Eq. 6 for the ablation), average,
4. descend on ``W_in`` and ``W_out``,
5. update the RDP accountant with sampling rate ``γ = B / |GS|`` and stop
   when the (ε, δ) budget would be exceeded (lines 8-10).

The published output is the pair ``(W_in, W_out)``; by post-processing
(Theorem 2) any downstream task computed from them retains the same
node-level DP guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import PrivacyConfig, TrainingConfig
from ..exceptions import TrainingError
from ..graph import Graph
from ..graph.sampling import (
    EdgeSubgraph,
    ProximityNegativeSampler,
    SubgraphSampler,
    generate_disjoint_subgraphs,
)
from ..privacy.accountant import PrivacySpent, RdpAccountant
from ..proximity.base import ProximityMatrix, ProximityMeasure
from ..utils.logging import get_logger
from ..utils.rng import ensure_rng
from .objectives import StructurePreferenceObjective
from .optimizer import SGDOptimizer
from .perturbation import PerturbationStrategy, get_perturbation
from .skipgram import SkipGramModel

__all__ = ["PrivateEmbeddingResult", "SEPrivGEmbTrainer"]

_LOGGER = get_logger("embedding.private_trainer")


@dataclass
class PrivateEmbeddingResult:
    """Output of a private training run, including the privacy spent."""

    embeddings: np.ndarray
    context_embeddings: np.ndarray
    privacy_spent: PrivacySpent
    losses: list[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False

    @property
    def final_loss(self) -> float:
        """Loss of the last completed epoch (NaN if no epoch ran)."""
        return self.losses[-1] if self.losses else float("nan")


class SEPrivGEmbTrainer:
    """Structure-preference enabled private graph embedding (SE-PrivGEmb).

    Parameters
    ----------
    graph:
        Training graph.
    proximity:
        A :class:`ProximityMeasure` (computed lazily) or precomputed
        :class:`ProximityMatrix` providing the structure preference.
    training_config:
        Skip-gram / SGD hyper-parameters (``B``, ``η``, ``k``, ``r``,
        epochs).
    privacy_config:
        DP parameters (``ε``, ``δ``, ``σ``, ``C``).
    perturbation:
        ``"nonzero"`` (default, Eq. 9), ``"naive"`` (Eq. 6) or a
        pre-constructed :class:`PerturbationStrategy`.
    iterate_averaging:
        If ``True`` (default) the returned embedding is the average of the
        ``W_in`` iterates over all private steps (Polyak–Ruppert output
        averaging).  Averaging is post-processing of the noised updates, so
        it costs no additional privacy (Theorem 2), and it damps the noise
        accumulated by later steps — without it, utility can *decrease* with
        larger budgets because extra noisy steps hurt more than the extra
        signal helps.  Set to ``False`` to publish the final iterate exactly
        as Algorithm 2 states.
    gradient_normalization:
        ``"per_row"`` (default) divides each row of the noisy summed gradient
        by the number of batch examples that touched it; ``"batch"`` divides
        by the batch size ``B``, which is the literal Eq. (9).  The two are
        identical up to a constant rescaling of the learning rate (each row
        is touched by roughly one example per batch), and the rescaling is
        post-processing of the noised sum, so the privacy guarantee is
        unchanged; ``"per_row"`` simply keeps the effective per-row step at
        the configured ``η`` instead of ``η / B``, which is what makes the
        scaled-down experiments in this reproduction converge within the
        small epoch budgets the privacy accountant allows.
    seed:
        Master seed for initialisation, sampling and noise.
    """

    def __init__(
        self,
        graph: Graph,
        proximity: ProximityMeasure | ProximityMatrix,
        training_config: TrainingConfig | None = None,
        privacy_config: PrivacyConfig | None = None,
        perturbation: str | PerturbationStrategy = "nonzero",
        iterate_averaging: bool = True,
        gradient_normalization: str = "per_row",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if graph.num_edges == 0:
            raise TrainingError("cannot train on a graph with no edges")
        if gradient_normalization not in {"per_row", "batch"}:
            raise TrainingError(
                "gradient_normalization must be 'per_row' or 'batch', got "
                f"{gradient_normalization!r}"
            )
        self.graph = graph
        self.iterate_averaging = bool(iterate_averaging)
        self.gradient_normalization = gradient_normalization
        self.training_config = training_config or TrainingConfig()
        self.privacy_config = privacy_config or PrivacyConfig()
        self._rng = ensure_rng(seed if seed is not None else self.training_config.seed)

        if isinstance(proximity, ProximityMatrix):
            self.proximity_matrix = proximity
        else:
            self.proximity_matrix = proximity.compute(graph)
        self.objective = StructurePreferenceObjective(self.proximity_matrix)

        self.model = SkipGramModel(
            graph.num_nodes, self.training_config.embedding_dim, seed=self._rng
        )
        self.optimizer = SGDOptimizer(self.training_config.learning_rate)

        # Theorem-3 negative sampler: candidates uniform, mass min(P)/Σ_j p_ij.
        negative_sampler = ProximityNegativeSampler(
            graph,
            proximity_row_sums=self.proximity_matrix.row_sums,
            min_positive_proximity=max(self.proximity_matrix.min_positive, 1e-12),
            seed=self._rng,
        )
        self._subgraphs: list[EdgeSubgraph] = generate_disjoint_subgraphs(
            graph, negative_sampler, self.training_config.negative_samples
        )
        self._sampler = SubgraphSampler(
            self._subgraphs, self.training_config.batch_size, seed=self._rng
        )

        if isinstance(perturbation, PerturbationStrategy):
            self.perturbation = perturbation
        else:
            self.perturbation = get_perturbation(
                perturbation,
                clipping_threshold=self.privacy_config.clipping_threshold,
                noise_multiplier=self.privacy_config.noise_multiplier,
                seed=self._rng,
            )

        self.accountant = RdpAccountant(
            noise_multiplier=self.privacy_config.noise_multiplier,
            sampling_rate=self._sampler.sampling_rate,
        )

    # ------------------------------------------------------------------ #
    @property
    def sampling_rate(self) -> float:
        """The subsampling rate ``γ = B / |GS|`` used for amplification."""
        return self._sampler.sampling_rate

    def max_private_epochs(self) -> int:
        """Number of epochs the (ε, δ) budget allows (Algorithm 2 stop rule)."""
        return self.accountant.max_steps(
            self.privacy_config.epsilon, self.privacy_config.delta
        )

    def train(self, epochs: int | None = None) -> PrivateEmbeddingResult:
        """Run Algorithm 2 and return the private embeddings.

        Training runs for ``epochs`` (default ``training_config.epochs``) or
        until the privacy budget is exhausted, whichever comes first.
        """
        epochs = int(epochs) if epochs is not None else self.training_config.epochs
        if epochs <= 0:
            raise TrainingError(f"epochs must be positive, got {epochs}")

        losses: list[float] = []
        stopped_early = False
        averaged_w_in: np.ndarray | None = None
        averaged_w_out: np.ndarray | None = None
        for epoch in range(epochs):
            if self.accountant.would_exceed(
                self.privacy_config.epsilon, self.privacy_config.delta
            ):
                stopped_early = True
                _LOGGER.debug(
                    "stopping at epoch %d: privacy budget ε=%.3f would be exceeded",
                    epoch,
                    self.privacy_config.epsilon,
                )
                break
            batch = self._sampler.sample_batch()
            loss = self._private_step(batch)
            losses.append(loss)
            self.accountant.step()
            self.optimizer.step_epoch()
            if self.iterate_averaging:
                if averaged_w_in is None:
                    averaged_w_in = self.model.w_in.copy()
                    averaged_w_out = self.model.w_out.copy()
                else:
                    averaged_w_in += self.model.w_in
                    averaged_w_out += self.model.w_out

        steps = len(losses)
        if self.iterate_averaging and averaged_w_in is not None and steps > 0:
            embeddings = averaged_w_in / steps
            context_embeddings = averaged_w_out / steps
        else:
            embeddings = self.model.embeddings()
            context_embeddings = self.model.w_out.copy()

        spent = self.accountant.get_privacy_spent(self.privacy_config.delta)
        return PrivateEmbeddingResult(
            embeddings=embeddings,
            context_embeddings=context_embeddings,
            privacy_spent=spent,
            losses=losses,
            epochs_run=steps,
            stopped_early=stopped_early,
        )

    # ------------------------------------------------------------------ #
    def _private_step(self, batch: list[EdgeSubgraph]) -> float:
        """One noisy SGD step: clip → aggregate → perturb → average → descend."""
        w_in, w_out = self.model.w_in, self.model.w_out
        example_gradients = [
            self.objective.example_gradients(w_in, w_out, subgraph) for subgraph in batch
        ]
        perturbed = self.perturbation.perturb(
            example_gradients,
            num_nodes=self.model.num_nodes,
            embedding_dim=self.model.embedding_dim,
        )
        if self.gradient_normalization == "batch":
            w_in_grad, w_out_grad = perturbed.averaged_by_batch()
        else:
            w_in_grad, w_out_grad = perturbed.averaged_by_row_counts()
        self.optimizer.descend(w_in, w_in_grad)
        self.optimizer.descend(w_out, w_out_grad)
        return perturbed.mean_loss

    def __repr__(self) -> str:
        return (
            f"SEPrivGEmbTrainer(graph={self.graph.name!r}, "
            f"proximity={self.proximity_matrix.name!r}, "
            f"perturbation={self.perturbation.name!r}, "
            f"epsilon={self.privacy_config.epsilon})"
        )
