"""SE-PrivGEmb: the differentially private trainer (Algorithm 2).

Training loop, per epoch:

1. sample ``B`` edge subgraphs uniformly at random from the precomputed
   disjoint subgraph set ``GS`` (Algorithm 1),
2. compute the structure-preference gradients (Eq. 7 / Eq. 8),
3. clip per example, aggregate, perturb with the chosen strategy
   (non-zero Eq. 9 by default, naive Eq. 6 for the ablation), average,
4. descend on ``W_in`` and ``W_out``,
5. update the RDP accountant with sampling rate ``γ = B / |GS|`` and stop
   when the (ε, δ) budget would be exceeded (lines 8-10).

The published output is the pair ``(W_in, W_out)``; by post-processing
(Theorem 2) any downstream task computed from them retains the same
node-level DP guarantee.

The loop itself is :class:`~repro.engine.TrainingEngine`; this class is a
thin configuration of it — the clip→noise→average update rule plus the RDP
accounting and iterate-averaging hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import PrivacyConfig, TrainingConfig
from ..engine import (
    IterateAveragingHook,
    PerturbedUpdate,
    RdpAccountingHook,
    SubgraphBatch,
    TrainingEngine,
)
from ..exceptions import TrainingError
from ..graph import Graph
from ..graph.sampling import (
    EdgeSubgraph,
    ProximityNegativeSampler,
    SubgraphSampler,
    generate_disjoint_subgraph_arrays,
)
from ..privacy.accountant import PrivacySpent, RdpAccountant
from ..proximity.base import ProximityMatrix, ProximityMeasure
from ..utils.logging import get_logger
from ..utils.rng import ensure_rng
from .objectives import StructurePreferenceObjective
from .optimizer import SGDOptimizer
from .perturbation import PerturbationStrategy, get_perturbation
from .skipgram import SkipGramModel

__all__ = ["PrivateEmbeddingResult", "SEPrivGEmbTrainer"]

_LOGGER = get_logger("embedding.private_trainer")


@dataclass
class PrivateEmbeddingResult:
    """Output of a private training run, including the privacy spent."""

    embeddings: np.ndarray
    context_embeddings: np.ndarray
    privacy_spent: PrivacySpent
    losses: list[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False

    @property
    def final_loss(self) -> float:
        """Loss of the last completed epoch (NaN if no epoch ran)."""
        return self.losses[-1] if self.losses else float("nan")


class SEPrivGEmbTrainer:
    """Structure-preference enabled private graph embedding (SE-PrivGEmb).

    Parameters
    ----------
    graph:
        Training graph.
    proximity:
        A :class:`ProximityMeasure` (computed lazily) or precomputed
        :class:`ProximityMatrix` providing the structure preference.
    training_config:
        Skip-gram / SGD hyper-parameters (``B``, ``η``, ``k``, ``r``,
        epochs).
    privacy_config:
        DP parameters (``ε``, ``δ``, ``σ``, ``C``).
    perturbation:
        ``"nonzero"`` (default, Eq. 9), ``"naive"`` (Eq. 6) or a
        pre-constructed :class:`PerturbationStrategy`.
    iterate_averaging:
        If ``True`` (default) the returned embedding is the average of the
        ``W_in`` iterates over all private steps (Polyak–Ruppert output
        averaging).  Averaging is post-processing of the noised updates, so
        it costs no additional privacy (Theorem 2), and it damps the noise
        accumulated by later steps — without it, utility can *decrease* with
        larger budgets because extra noisy steps hurt more than the extra
        signal helps.  Set to ``False`` to publish the final iterate exactly
        as Algorithm 2 states.
    gradient_normalization:
        ``"per_row"`` (default) divides each row of the noisy summed gradient
        by the number of batch examples that touched it; ``"batch"`` divides
        by the batch size ``B``, which is the literal Eq. (9).  The two are
        identical up to a constant rescaling of the learning rate (each row
        is touched by roughly one example per batch), and the rescaling is
        post-processing of the noised sum, so the privacy guarantee is
        unchanged; ``"per_row"`` simply keeps the effective per-row step at
        the configured ``η`` instead of ``η / B``, which is what makes the
        scaled-down experiments in this reproduction converge within the
        small epoch budgets the privacy accountant allows.
    seed:
        Master seed for initialisation, sampling and noise.
    """

    def __init__(
        self,
        graph: Graph,
        proximity: ProximityMeasure | ProximityMatrix,
        training_config: TrainingConfig | None = None,
        privacy_config: PrivacyConfig | None = None,
        perturbation: str | PerturbationStrategy = "nonzero",
        iterate_averaging: bool = True,
        gradient_normalization: str = "per_row",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if graph.num_edges == 0:
            raise TrainingError("cannot train on a graph with no edges")
        if gradient_normalization not in {"per_row", "batch"}:
            raise TrainingError(
                "gradient_normalization must be 'per_row' or 'batch', got "
                f"{gradient_normalization!r}"
            )
        self.graph = graph
        self.iterate_averaging = bool(iterate_averaging)
        self.gradient_normalization = gradient_normalization
        self.training_config = training_config or TrainingConfig()
        self.privacy_config = privacy_config or PrivacyConfig()
        self._rng = ensure_rng(seed if seed is not None else self.training_config.seed)

        if isinstance(proximity, ProximityMatrix):
            self.proximity_matrix = proximity
        else:
            self.proximity_matrix = proximity.compute(graph)
        self.objective = StructurePreferenceObjective(self.proximity_matrix)

        self.model = SkipGramModel(
            graph.num_nodes, self.training_config.embedding_dim, seed=self._rng
        )
        self.optimizer = SGDOptimizer(self.training_config.learning_rate)

        # Theorem-3 negative sampler: candidates uniform, mass min(P)/Σ_j p_ij.
        negative_sampler = ProximityNegativeSampler.from_proximity(
            graph, self.proximity_matrix, seed=self._rng
        )
        pool = generate_disjoint_subgraph_arrays(
            graph, negative_sampler, self.training_config.negative_samples
        )
        # Proximity weights bound once; batches slice them on the hot path.
        self._subgraph_pool: SubgraphBatch = pool.with_weights(
            self.objective.edge_weights(pool.centers, pool.positives)
        )
        self._sampler = SubgraphSampler(
            self._subgraph_pool, self.training_config.batch_size, seed=self._rng
        )

        if isinstance(perturbation, PerturbationStrategy):
            self.perturbation = perturbation
        else:
            self.perturbation = get_perturbation(
                perturbation,
                clipping_threshold=self.privacy_config.clipping_threshold,
                noise_multiplier=self.privacy_config.noise_multiplier,
                seed=self._rng,
            )

        self.accountant = RdpAccountant(
            noise_multiplier=self.privacy_config.noise_multiplier,
            sampling_rate=self._sampler.sampling_rate,
        )

        hooks = [
            RdpAccountingHook(
                self.accountant, self.privacy_config.epsilon, self.privacy_config.delta
            )
        ]
        if self.iterate_averaging:
            hooks.append(IterateAveragingHook())
        self.engine = TrainingEngine(
            model=self.model,
            optimizer=self.optimizer,
            objective=self.objective,
            sampler=self._sampler,
            update_rule=PerturbedUpdate(
                self.perturbation, gradient_normalization=self.gradient_normalization
            ),
            hooks=hooks,
        )

    # ------------------------------------------------------------------ #
    @property
    def sampling_rate(self) -> float:
        """The subsampling rate ``γ = B / |GS|`` used for amplification."""
        return self._sampler.sampling_rate

    @property
    def subgraphs(self) -> list[EdgeSubgraph]:
        """The Algorithm-1 subgraph set as per-example dataclasses.

        A fresh copy built from the pool arrays on each access; mutating
        it has no effect on training.
        """
        return self._subgraph_pool.to_subgraphs()

    def max_private_epochs(self) -> int:
        """Number of epochs the (ε, δ) budget allows (Algorithm 2 stop rule)."""
        return self.accountant.max_steps(
            self.privacy_config.epsilon, self.privacy_config.delta
        )

    def train(self, epochs: int | None = None) -> PrivateEmbeddingResult:
        """Run Algorithm 2 and return the private embeddings.

        Training runs for ``epochs`` (default ``training_config.epochs``) or
        until the privacy budget is exhausted, whichever comes first.
        """
        epochs = int(epochs) if epochs is not None else self.training_config.epochs
        if epochs <= 0:
            raise TrainingError(f"epochs must be positive, got {epochs}")

        result = self.engine.run(epochs)
        spent = self.accountant.get_privacy_spent(self.privacy_config.delta)
        return PrivateEmbeddingResult(
            embeddings=result.embeddings,
            context_embeddings=result.context_embeddings,
            privacy_spent=spent,
            losses=result.losses,
            epochs_run=result.epochs_run,
            stopped_early=result.stopped_early,
        )

    def __repr__(self) -> str:
        return (
            f"SEPrivGEmbTrainer(graph={self.graph.name!r}, "
            f"proximity={self.proximity_matrix.name!r}, "
            f"perturbation={self.perturbation.name!r}, "
            f"epsilon={self.privacy_config.epsilon})"
        )
