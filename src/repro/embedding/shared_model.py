"""Shared-memory backed skip-gram model for hogwild training.

:class:`SharedSkipGramModel` is a :class:`~repro.embedding.skipgram.SkipGramModel`
whose two matrices live in ``multiprocessing.shared_memory`` blocks instead
of private heap pages.  Forked hogwild workers therefore see — and update,
through the in-place ``descend*`` scatter writes of
:class:`~repro.embedding.optimizer.SGDOptimizer` — the *same* physical
parameters, with no per-worker copy and no gradient shipping.

Lifecycle contract (the part shared memory makes easy to get wrong):

* exactly one process — the creator — owns the blocks and ``unlink``\\ s
  them; every process (owner included) ``close``\\ s its own mapping;
* :meth:`release` is the deterministic cleanup: it copies the current
  values into ordinary private arrays (so the model object stays usable
  after training) and then closes + unlinks the blocks;
* a ``weakref.finalize`` backstop runs the same cleanup at garbage
  collection if :meth:`release` was never reached (e.g. the training loop
  raised before its ``finally``), so segments cannot leak into
  ``/dev/shm`` past the owner's lifetime;
* forked children inherit the finalizer registry, so cleanup is guarded by
  the creating PID — a worker exiting must never unlink blocks the parent
  is still training on.

The constructor draws its initial weights through the *parent class*
first and then copies them into the blocks, so the RNG stream is
bit-identical to a plain :class:`SkipGramModel` with the same seed — the
property the workers=1 shared-memory parity test pins.
"""

from __future__ import annotations

import os
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..exceptions import TrainingError
from .skipgram import SkipGramModel

__all__ = ["SharedModelHandle", "SharedSkipGramModel", "SHARED_SEGMENT_PREFIX"]

#: name prefix of every segment this module creates — the CI leak check
#: greps ``/dev/shm`` for it after a training run
SHARED_SEGMENT_PREFIX = "repro_hw_"


def _allocate_block(nbytes: int) -> shared_memory.SharedMemory:
    """Create a fresh named shared-memory block (collision-retried)."""
    for _ in range(16):
        name = SHARED_SEGMENT_PREFIX + secrets.token_hex(8)
        try:
            return shared_memory.SharedMemory(create=True, size=int(nbytes), name=name)
        except FileExistsError:  # pragma: no cover - 64-bit token collision
            continue
    raise TrainingError("could not allocate a shared-memory block (name collisions)")


def _cleanup_blocks(
    blocks: tuple[shared_memory.SharedMemory, ...], owner_pid: int | None
) -> None:
    """Close (and, in the owning process, unlink) the given blocks.

    Unlink happens first and unconditionally succeeds-or-is-gone: even if a
    lingering ndarray view keeps the mapping pinned (``close`` then raises
    ``BufferError``), the *name* is removed so nothing leaks in
    ``/dev/shm`` — the memory itself is freed when the last view dies.
    """
    unlink = owner_pid is not None and os.getpid() == owner_pid
    for block in blocks:
        if unlink:
            try:
                block.unlink()
            except FileNotFoundError:
                pass
        try:
            block.close()
        except BufferError:  # pragma: no cover - views still exported
            pass


@dataclass(frozen=True)
class SharedModelHandle:
    """Picklable descriptor of a shared model's two memory blocks.

    Enough to :meth:`SharedSkipGramModel.attach` from *any* process that
    can see the segments — fork workers normally just inherit the model
    object, but the handle keeps the subsystem usable from spawned
    processes and makes the wiring testable without a pool.
    """

    w_in_name: str
    w_out_name: str
    num_nodes: int
    embedding_dim: int
    dtype: str


class SharedSkipGramModel(SkipGramModel):
    """A skip-gram model whose matrices live in shared memory.

    Construction is exactly :class:`SkipGramModel` (same arguments, same
    RNG draws) followed by moving both matrices into freshly created
    shared blocks.  The creating process owns the blocks; see the module
    docstring for the cleanup contract.
    """

    def __init__(
        self,
        num_nodes: int,
        embedding_dim: int,
        init_scale: float | None = None,
        seed: int | np.random.Generator | None = None,
        dtype=np.float64,
    ) -> None:
        super().__init__(
            num_nodes, embedding_dim, init_scale=init_scale, seed=seed, dtype=dtype
        )
        self._shm_in = _allocate_block(self.w_in.nbytes)
        self._shm_out = _allocate_block(self.w_out.nbytes)
        shape = (self.num_nodes, self.embedding_dim)
        shared_in = np.ndarray(shape, dtype=self.dtype, buffer=self._shm_in.buf)
        shared_out = np.ndarray(shape, dtype=self.dtype, buffer=self._shm_out.buf)
        shared_in[:] = self.w_in
        shared_out[:] = self.w_out
        self.w_in = shared_in
        self.w_out = shared_out
        self._install_lifecycle(owner=True)

    # ------------------------------------------------------------------ #
    def _install_lifecycle(self, owner: bool) -> None:
        self._released = False
        self._owner = bool(owner)
        self._owner_pid = os.getpid() if owner else None
        self._finalizer = weakref.finalize(
            self, _cleanup_blocks, (self._shm_in, self._shm_out), self._owner_pid
        )

    @classmethod
    def attach(cls, handle: SharedModelHandle) -> "SharedSkipGramModel":
        """Map an existing shared model's blocks (zero-copy, non-owning)."""
        from ..engine.workspace import resolve_compute_dtype

        model = object.__new__(cls)
        model.num_nodes = int(handle.num_nodes)
        model.embedding_dim = int(handle.embedding_dim)
        model.dtype = resolve_compute_dtype(handle.dtype)
        model._shm_in = shared_memory.SharedMemory(name=handle.w_in_name)
        model._shm_out = shared_memory.SharedMemory(name=handle.w_out_name)
        shape = (model.num_nodes, model.embedding_dim)
        model.w_in = np.ndarray(shape, dtype=model.dtype, buffer=model._shm_in.buf)
        model.w_out = np.ndarray(shape, dtype=model.dtype, buffer=model._shm_out.buf)
        model._install_lifecycle(owner=False)
        return model

    # ------------------------------------------------------------------ #
    @property
    def handle(self) -> SharedModelHandle:
        """Picklable descriptor for :meth:`attach` in another process."""
        if self._released:
            raise TrainingError("shared model already released; its blocks are gone")
        return SharedModelHandle(
            w_in_name=self._shm_in.name,
            w_out_name=self._shm_out.name,
            num_nodes=self.num_nodes,
            embedding_dim=self.embedding_dim,
            dtype=self.dtype.name,
        )

    @property
    def released(self) -> bool:
        """``True`` once :meth:`release` ran (matrices are private again)."""
        return self._released

    @property
    def is_owner(self) -> bool:
        """``True`` in the process that created (and must unlink) the blocks."""
        return self._owner

    def release(self) -> None:
        """Copy the matrices to private memory, close and (owner) unlink.

        Idempotent.  After release the model behaves like a plain
        :class:`SkipGramModel` holding the final trained values — callers
        keep reading ``model.w_in`` / ``embeddings()`` as usual.
        """
        if self._released:
            return
        self._released = True
        self._finalizer.detach()
        # rebinding drops the last ndarray views of the buffers, so close()
        # below can release the mappings
        self.w_in = np.array(self.w_in, dtype=self.dtype, copy=True)
        self.w_out = np.array(self.w_out, dtype=self.dtype, copy=True)
        _cleanup_blocks((self._shm_in, self._shm_out), self._owner_pid)

    def __repr__(self) -> str:
        state = "released" if self._released else (
            "owner" if self._owner else "attached"
        )
        return (
            f"SharedSkipGramModel(num_nodes={self.num_nodes}, "
            f"embedding_dim={self.embedding_dim}, {state})"
        )
