"""The skip-gram model: two embedding matrices and the operations on them.

Figure 1 of the paper: the model holds an input (centre) matrix ``W_in`` of
shape ``|V| × r`` and an output (context) matrix ``W_out`` of the same
shape.  For a node pair ``(v_i, v_j)`` the score is the inner product of
``W_in[i]`` and ``W_out[j]``; the published embedding is ``W_in``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.rng import ensure_rng

__all__ = ["SkipGramModel"]


class SkipGramModel:
    """Holds and updates the two skip-gram embedding matrices.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``|V|``.
    embedding_dim:
        Embedding dimension ``r``.
    init_scale:
        Uniform initialisation half-width; weights start in
        ``[-init_scale, init_scale]`` (word2vec-style ``0.5 / r`` by default
        when ``None``).
    seed:
        Seed or generator for the initialisation.
    dtype:
        Storage/compute dtype of both matrices (``"float32"`` or
        ``"float64"``, default float64).  Initial weights are always drawn
        in float64 — the RNG stream is identical for both dtypes, float32
        models simply round the same draws — so a float32 model is the
        rounded image of its float64 twin.
    """

    def __init__(
        self,
        num_nodes: int,
        embedding_dim: int,
        init_scale: float | None = None,
        seed: int | np.random.Generator | None = None,
        dtype=np.float64,
    ) -> None:
        if num_nodes <= 0:
            raise ConfigurationError(f"num_nodes must be positive, got {num_nodes}")
        if embedding_dim <= 0:
            raise ConfigurationError(f"embedding_dim must be positive, got {embedding_dim}")
        from ..engine.workspace import resolve_compute_dtype

        self.num_nodes = int(num_nodes)
        self.embedding_dim = int(embedding_dim)
        self.dtype = resolve_compute_dtype(dtype)
        rng = ensure_rng(seed)
        scale = float(init_scale) if init_scale is not None else 0.5 / self.embedding_dim
        if scale <= 0:
            raise ConfigurationError(f"init_scale must be positive, got {init_scale}")
        shape = (self.num_nodes, self.embedding_dim)
        # astype(copy=False) keeps the float64 default allocation-identical
        self.w_in = rng.uniform(-scale, scale, size=shape).astype(self.dtype, copy=False)
        self.w_out = rng.uniform(-scale, scale, size=shape).astype(self.dtype, copy=False)

    # ------------------------------------------------------------------ #
    def center_vector(self, node: int) -> np.ndarray:
        """Return the centre (input) vector of ``node`` — a view, not a copy."""
        return self.w_in[int(node)]

    def context_vector(self, node: int) -> np.ndarray:
        """Return the context (output) vector of ``node`` — a view, not a copy."""
        return self.w_out[int(node)]

    def score(self, center: int, context: int) -> float:
        """Inner product ``v_i · v_j`` between a centre and a context vector."""
        return float(self.w_in[int(center)] @ self.w_out[int(context)])

    def scores(self, centers: np.ndarray, contexts: np.ndarray) -> np.ndarray:
        """Vectorised inner products for parallel centre/context index arrays."""
        centers = np.asarray(centers, dtype=np.int64)
        contexts = np.asarray(contexts, dtype=np.int64)
        return np.einsum("ij,ij->i", self.w_in[centers], self.w_out[contexts])

    def embeddings(self) -> np.ndarray:
        """Return a copy of the published embedding matrix ``W_in``."""
        return self.w_in.copy()

    def apply_update(self, w_in_delta: np.ndarray, w_out_delta: np.ndarray) -> None:
        """Add dense deltas to both matrices (used by the trainers)."""
        if w_in_delta.shape != self.w_in.shape or w_out_delta.shape != self.w_out.shape:
            raise ConfigurationError(
                "update shapes do not match the model: "
                f"{w_in_delta.shape} / {w_out_delta.shape} vs {self.w_in.shape}"
            )
        self.w_in += w_in_delta
        self.w_out += w_out_delta

    def copy(self) -> "SkipGramModel":
        """Return a deep copy of the model (used to snapshot non-private baselines)."""
        clone = SkipGramModel(
            self.num_nodes, self.embedding_dim, init_scale=1e-6, seed=0, dtype=self.dtype
        )
        clone.w_in = self.w_in.copy()
        clone.w_out = self.w_out.copy()
        return clone

    def __repr__(self) -> str:
        return (
            f"SkipGramModel(num_nodes={self.num_nodes}, "
            f"embedding_dim={self.embedding_dim})"
        )
