"""Non-private structure-preference skip-gram trainer (SE-GEmb).

SE-GEmb\\ :sub:`DW` / SE-GEmb\\ :sub:`Deg` are the non-private counterparts
the paper uses as utility upper bounds in Figures 3 and 4.  The trainer
optimises the same structure-preference objective (Eq. 5) over the same
edge-subgraph batches, but applies the exact (un-clipped, un-noised) batch
gradient.

The epoch loop itself lives in :class:`~repro.engine.TrainingEngine`; this
class is a thin configuration of it — vectorized batch gradients applied
with the exact scatter update rule, plus a loss-logging hook.

Since the estimator redesign the trainer follows the
:class:`~repro.models.Embedder` protocol: configure it with a proximity
measure, then ``fit(graph)``::

    model = SEGEmbTrainer(DegreeProximity(), config=training, seed=0).fit(graph)
    model.embeddings_

The pre-redesign convention — graph in the constructor, ``train()`` to run —
still works behind a :class:`DeprecationWarning` and produces bit-identical
embeddings for the same seed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from dataclasses import replace as _dc_replace

import numpy as np

from ..config import TrainingConfig
from ..engine import (
    DirectSparseUpdate,
    EngineResult,
    HogwildRun,
    LossLoggingHook,
    StepWorkspace,
    SubgraphBatch,
    TrainingEngine,
    WorkerReport,
    resolve_compute_dtype,
    run_hogwild,
)
from ..exceptions import TrainingError
from ..robustness.checkpoint import SupervisorPolicy
from ..graph import Graph
from ..graph.sampling import (
    EdgeSubgraph,
    ProximityNegativeSampler,
    SubgraphSampler,
    UnigramNegativeSampler,
    generate_disjoint_subgraph_arrays,
)
from ..models.base import Embedder, FitResult
from ..proximity.base import ProximityMatrix, ProximityMeasure
from ..proximity.cache import resolve_cache_policy
from ..utils import mp as _mp
from ..utils.logging import get_logger
from ..utils.rng import ensure_rng
from .objectives import StructurePreferenceObjective
from .optimizer import SGDOptimizer
from .shared_model import SharedSkipGramModel
from .skipgram import SkipGramModel

__all__ = ["EmbeddingResult", "SEGEmbTrainer"]

_LOGGER = get_logger("embedding.trainer")


def bind_legacy_positionals(
    cls_name: str, names: tuple[str, ...], args: tuple, kwargs: dict
) -> None:
    """Map leftover legacy positional arguments onto their keyword slots.

    Shared by both trainers' dual-convention constructors; mutates
    ``kwargs`` in place and raises ``TypeError`` with the usual
    duplicate/arity messages so the shim feels like a normal signature.
    """
    if len(args) > len(names):
        raise TypeError(
            f"{cls_name}() takes at most {len(names) + 1} positional arguments "
            f"({len(args) + 1} given)"
        )
    for name, value in zip(names, args, strict=False):
        if name in kwargs:
            raise TypeError(f"{cls_name}() got multiple values for argument {name!r}")
        kwargs[name] = value


@dataclass
class EmbeddingResult:
    """Output of a (non-private) training run."""

    embeddings: np.ndarray
    context_embeddings: np.ndarray
    losses: list[float] = field(default_factory=list)
    epochs_run: int = 0

    @property
    def final_loss(self) -> float:
        """Loss of the last completed epoch (NaN if no epoch ran)."""
        return self.losses[-1] if self.losses else float("nan")


class SkipGramTrainerBase(Embedder):
    """Estimator plumbing shared by the SE-GEmb / SE-PrivGEmb trainers.

    Both trainers configure the same engine around a proximity-driven
    skip-gram model; everything that is not specific to the private update
    path lives here once: proximity resolution (with the per-fit override),
    the fit skeleton, the set-up guard, and the Algorithm-1 accessors.
    Subclasses provide ``_setup(graph, rng, proximity=None)`` and
    ``_run_engine(epochs)``.
    """

    proximity: ProximityMeasure | ProximityMatrix
    graph: Graph | None
    engine: TrainingEngine | None
    proximity_matrix: ProximityMatrix | None
    _proximity_cache: object
    _seed: object
    #: both skip-gram trainers can seed matrices from a prior artifact
    _supports_warm_start = True
    #: hogwild worker count requested at construction (1 = serial path)
    workers: int = 1
    #: have hogwild workers report tracemalloc evidence (tests/benchmarks)
    trace_hogwild_memory: bool = False
    #: per-worker reports of the most recent hogwild fit
    last_worker_reports: "list[WorkerReport] | None" = None
    #: opt-in crash supervision for the hogwild pool (checkpoints + restarts);
    #: ``None`` keeps the historical all-or-nothing failure semantics
    hogwild_resilience: "SupervisorPolicy | None" = None
    #: full :class:`~repro.engine.hogwild.HogwildRun` of the most recent
    #: hogwild fit (conservative ``charged_steps``, restart count)
    last_hogwild_run: "HogwildRun | None" = None

    @staticmethod
    def _validate_workers(workers: int) -> int:
        workers = int(workers)
        if workers < 1:
            raise TrainingError(f"workers must be >= 1, got {workers}")
        return workers

    def _resolve_active_workers(self) -> int:
        """Fit-time worker count: the configured knob, fork-gated once."""
        if self.workers <= 1:
            return 1
        return _mp.resolve_fork_workers(self.workers, "hogwild training")

    def _make_model(self, graph: Graph) -> SkipGramModel:
        """Build the model — shared-memory backed when hogwild will run.

        Both classes draw initialisation through the identical RNG stream,
        so the choice never perturbs any downstream sampling stream.
        """
        model_cls = SharedSkipGramModel if self._active_workers > 1 else SkipGramModel
        model = model_cls(
            graph.num_nodes,
            self.training_config.embedding_dim,
            seed=self._rng,
            dtype=self.compute_dtype,
        )
        self._apply_warm_start(model)
        return model

    def _apply_warm_start(self, model: SkipGramModel) -> None:
        """Overwrite the model's leading rows with the warm-start matrices.

        The model is always constructed through its full pinned init stream
        first, so node ``i >= donor`` rows (new nodes) keep exactly the
        initialisation a cold fit would give them, and the RNG stream
        position after ``_make_model`` is identical either way — sampling
        downstream is unperturbed by warm starting.  Donor rows beyond the
        current node count (removed nodes) are simply not copied.
        """
        warm = self._pending_warm_start
        if warm is None:
            return
        shared = min(model.num_nodes, warm.num_nodes)
        model.w_in[:shared] = warm.embeddings[:shared].astype(model.dtype, copy=False)
        if warm.context_embeddings is not None:
            model.w_out[:shared] = warm.context_embeddings[:shared].astype(
                model.dtype, copy=False
            )
        self._last_warm_start = {
            "source": warm.source,
            "method": warm.method,
            "dataset_fingerprint": warm.dataset_fingerprint,
            "donor_nodes": warm.num_nodes,
            "copied_rows": int(shared),
            "copied_context": warm.context_embeddings is not None,
        }

    def _fit_rng(self) -> np.random.Generator:
        # training_config is the protocol-wide name (SEGEmbTrainer aliases
        # its `config` attribute onto it)
        return ensure_rng(
            self._seed if self._seed is not None else self.training_config.seed
        )

    def _resolve_init_args(
        self, args: tuple, graph: Graph | None, keyword_values: dict
    ) -> tuple[Graph | None, dict]:
        """Shared dual-convention constructor parsing.

        ``keyword_values`` maps the class's ``_LEGACY_POSITIONALS`` names to
        the keyword-passed values; leftover positionals (with an optional
        leading legacy graph) are bound over them.  Returns the graph (when
        the deprecated graph-first convention was used) and the final
        name → value mapping.
        """
        cls_name = type(self).__name__
        values = dict(keyword_values)
        if args and isinstance(args[0], Graph):
            if graph is not None:
                raise TypeError(f"{cls_name}() got multiple values for argument 'graph'")
            graph, args = args[0], args[1:]
        if args:
            if values.get("proximity") is not None:
                raise TypeError(
                    f"{cls_name}() got multiple values for argument 'proximity'"
                )
            bound: dict = {"proximity": args[0]}
            bind_legacy_positionals(cls_name, self._LEGACY_POSITIONALS[1:], args[1:], bound)
            values.update(bound)
        return graph, values

    def _warn_legacy_graph_convention(self) -> None:
        warnings.warn(
            f"passing the graph to {type(self).__name__}(...) is deprecated; "
            "construct with the proximity only and call fit(graph) (or use "
            "repro.models.get_method(...).build(...))",
            DeprecationWarning,
            stacklevel=3,
        )

    def _resolve_proximity_matrix(
        self, graph: Graph, override: ProximityMatrix | None = None
    ) -> ProximityMatrix:
        """Measure → (possibly cached) matrix; matrices pass through.

        ``override`` is the per-fit precomputed matrix; it applies to this
        fit only and never replaces the configured ``self.proximity``, so a
        later ``fit`` on another graph resolves that graph's own matrix.
        """
        source = override if override is not None else self.proximity
        if isinstance(source, ProximityMatrix):
            self._proximity_fingerprint = f"matrix:{source.name}"
            return source
        measure: ProximityMeasure = source
        self._proximity_fingerprint = measure.fingerprint()
        cache = resolve_cache_policy(self._proximity_cache)
        if cache is None:
            return measure.compute(graph)
        return cache.get_or_compute(measure, graph)

    def _fit(
        self,
        graph: Graph,
        rng: np.random.Generator,
        proximity: ProximityMatrix | None = None,
        epochs: int | None = None,
    ):
        self._setup(graph, rng, proximity=proximity)
        return self._run_engine(epochs)

    def _build_options(self) -> dict:
        """Record the fast-path knobs (shared by both trainers) for artifacts."""
        options = super()._build_options()
        if self.fast_path:
            options["fast_path"] = True
        if self.compute_dtype != np.dtype(np.float64):
            options["compute_dtype"] = self.compute_dtype.name
        if self.workers != 1:
            options["workers"] = self.workers
        return options

    # ------------------------------------------------------------------ #
    # hogwild execution (workers > 1)
    # ------------------------------------------------------------------ #
    def _hogwild_update_rule(self, rng: np.random.Generator):
        """The per-worker update rule; the private trainer overrides this."""
        del rng  # the exact scatter update draws no randomness
        return DirectSparseUpdate()

    def _hogwild_engine(self, rng: np.random.Generator) -> TrainingEngine:
        """Build one worker's private engine over the shared model.

        Runs *inside* the forked worker: everything heavy (subgraph pool,
        proximity weights, the shared model) is inherited zero-copy; only
        the sampler, optimizer, update rule and step workspace are
        worker-private, each seeded from the worker's spawned stream.
        Workers always run the zero-allocation fast path — a preallocated
        :class:`~repro.engine.StepWorkspace` per worker is the PR-5
        invariant this subsystem preserves.
        """
        pool = self._subgraph_pool
        sampler = SubgraphSampler(
            pool, self.training_config.batch_size, seed=rng, fast_path=True
        )
        workspace = StepWorkspace(
            batch_size=sampler.batch_size,
            num_negatives=pool.num_negatives,
            embedding_dim=self.training_config.embedding_dim,
            num_nodes=self.graph.num_nodes,
            dtype=self.compute_dtype,
        )
        return TrainingEngine(
            model=self.model,
            optimizer=SGDOptimizer(self.training_config.learning_rate),
            objective=self.objective,
            sampler=sampler,
            update_rule=self._hogwild_update_rule(rng),
            hooks=(),
            workspace=workspace,
        )

    def _run_hogwild(
        self,
        total_steps: int,
        iterate_averaging: bool = False,
        stopped_early: bool = False,
    ) -> EngineResult:
        """Shard ``total_steps`` over the hogwild pool and release the blocks.

        The shared-memory segments are unlinked in the ``finally`` — also
        when a worker crashes — after which ``self.model`` holds ordinary
        private arrays with the final trained values.
        """
        try:
            run = run_hogwild(
                model=self.model,
                engine_factory=self._hogwild_engine,
                total_steps=total_steps,
                workers=self._active_workers,
                seed=self._rng,
                iterate_averaging=iterate_averaging,
                trace_memory=self.trace_hogwild_memory,
                supervision=self.hogwild_resilience,
            )
        finally:
            self.model.release()
        self.last_worker_reports = run.reports
        self.last_hogwild_run = run
        result = run.result
        if stopped_early:
            result = _dc_replace(result, stopped_early=True)
        return result

    def _ensure_workspace(self, pool: SubgraphBatch, num_nodes: int) -> StepWorkspace:
        """Create (or reuse, when the geometry matches) the step workspace.

        Reuse across fits is deliberate — the buffers are fully rewritten
        every step, so a second ``fit`` on the same-shaped problem pays no
        reallocation; a leak test pins that reuse cannot carry state over.
        """
        geometry = dict(
            batch_size=self._sampler.batch_size,
            num_negatives=pool.num_negatives,
            embedding_dim=self.training_config.embedding_dim,
            num_nodes=num_nodes,
            dtype=self.compute_dtype,
        )
        existing: StepWorkspace | None = getattr(self, "_workspace", None)
        if existing is None or not existing.matches(**geometry):
            self._workspace = StepWorkspace(**geometry)
        return self._workspace

    def _require_setup(self) -> None:
        if self.engine is None:
            raise TrainingError(
                f"{type(self).__name__} has no graph yet; call fit(graph) first"
            )

    @property
    def sampling_rate(self) -> float:
        """The subsampling rate ``γ = B / |GS|``."""
        self._require_setup()
        return self._sampler.sampling_rate

    @property
    def subgraphs(self) -> list[EdgeSubgraph]:
        """The Algorithm-1 subgraph set as per-example dataclasses.

        A fresh copy built from the pool arrays on each access; mutating
        it has no effect on training.
        """
        self._require_setup()
        return self._subgraph_pool.to_subgraphs()


class SEGEmbTrainer(SkipGramTrainerBase):
    """Train structure-preference skip-gram embeddings without privacy.

    Parameters
    ----------
    proximity:
        Either a :class:`ProximityMeasure` (computed on the graph at fit
        time, honouring ``proximity_cache``) or an already-computed
        :class:`ProximityMatrix`.
    config:
        Training hyper-parameters.
    negative_sampling:
        ``"proximity"`` (default) uses the Theorem-3 sampler — the same one
        SE-PrivGEmb uses, making this trainer its exact non-private
        counterpart.  ``"unigram"`` uses the degree^0.75 word2vec sampler of
        the prior skip-gram methods (the comparison point of Section IV-B).
    seed:
        Master seed controlling initialisation, sampling and shuffling.
        ``fit(graph, rng=...)`` overrides it per fit.
    proximity_cache:
        ``"off"`` (default) computes a measure's matrix ephemerally;
        ``"default"`` routes it through the process-wide
        :class:`~repro.proximity.cache.ProximityCache`; an explicit cache
        instance is used as-is.  Ignored when ``proximity`` is already a
        matrix.
    fast_path:
        Opt into the zero-allocation training fast path: a preallocated
        :class:`~repro.engine.StepWorkspace` threads every step, the
        negative sampler draws through a Walker alias table and batch
        indices come from a partial Fisher–Yates shuffle.  Sampling RNG
        *streams* differ from the default (the distributions do not);
        the default path stays bit-identical.
    compute_dtype:
        ``"float64"`` (default) or ``"float32"``.  Controls the model
        matrices and all gradient arithmetic; privacy-relevant math (noise
        draws, sensitivities, the accountant) always stays float64.
    workers:
        ``1`` (default) trains serially on the existing engine path,
        bit-for-bit.  ``> 1`` backs the model with shared memory and
        shards the step stream over that many forked hogwild workers
        (:mod:`repro.engine.hogwild`); each worker runs its own
        zero-allocation workspace and a spawned RNG stream.  Multi-worker
        results are reproducible in distribution only (racy lock-free
        updates).  Falls back to serial with a warning where ``fork`` is
        unavailable.
    hogwild_resilience:
        Optional :class:`~repro.robustness.SupervisorPolicy`.  When set
        (and ``workers > 1``), the hogwild pool runs under crash
        supervision: periodic per-shard checkpoints, automatic restart of
        dead or stalled workers with exponential backoff, and — only after
        a shard exhausts its restart budget — degradation to a
        partial-result :class:`~repro.exceptions.HogwildDegradedError`.
        ``None`` (default) keeps the historical all-or-nothing semantics.

    Passing the graph as the first constructor argument (the pre-estimator
    convention, followed by ``train()``) is still supported but deprecated.
    """

    _LEGACY_POSITIONALS = ("proximity", "config", "negative_sampling", "seed")

    def __init__(
        self,
        *args,
        graph: Graph | None = None,
        proximity: ProximityMeasure | ProximityMatrix | None = None,
        config: TrainingConfig | None = None,
        negative_sampling: str = "proximity",
        seed: int | np.random.Generator | None = None,
        proximity_cache="off",
        fast_path: bool = False,
        compute_dtype="float64",
        workers: int = 1,
        hogwild_resilience: SupervisorPolicy | None = None,
    ) -> None:
        super().__init__()
        graph, values = self._resolve_init_args(
            args,
            graph,
            {
                "proximity": proximity,
                "config": config,
                "negative_sampling": negative_sampling,
                "seed": seed,
            },
        )
        proximity = values["proximity"]
        config = values["config"]
        negative_sampling = values["negative_sampling"]
        seed = values["seed"]

        if proximity is None:
            raise TrainingError("SEGEmbTrainer requires a proximity measure or matrix")
        if negative_sampling not in {"proximity", "unigram"}:
            raise TrainingError(
                f"negative_sampling must be 'proximity' or 'unigram', got {negative_sampling!r}"
            )
        self.proximity = proximity
        self.config = config or TrainingConfig()
        self.negative_sampling = negative_sampling
        self._seed = seed
        self._proximity_cache = proximity_cache
        self.fast_path = bool(fast_path)
        self.compute_dtype = resolve_compute_dtype(compute_dtype)
        self.workers = self._validate_workers(workers)
        self.hogwild_resilience = hogwild_resilience
        self.graph: Graph | None = None
        self.engine: TrainingEngine | None = None
        self.proximity_matrix: ProximityMatrix | None = None

        if graph is not None:
            self._warn_legacy_graph_convention()
            self._rng = ensure_rng(seed if seed is not None else self.config.seed)
            self._setup(graph, self._rng)

    # ------------------------------------------------------------------ #
    @property
    def training_config(self) -> TrainingConfig:
        """Alias of :attr:`config` (the protocol-wide attribute name)."""
        return self.config

    def _build_options(self) -> dict:
        return {**super()._build_options(), "negative_sampling": self.negative_sampling}

    @classmethod
    def from_method_spec(
        cls,
        spec,
        *,
        training=None,
        privacy=None,  # non-private method, accepted for protocol uniformity
        perturbation=None,
        proximity=None,
        proximity_cache="default",
        seed=None,
        **kwargs,
    ) -> "SEGEmbTrainer":
        model = cls(
            proximity=proximity,
            config=training,
            seed=seed,
            proximity_cache=proximity_cache,
            **kwargs,
        )
        model._spec = spec
        return model

    # ------------------------------------------------------------------ #
    def _setup(
        self,
        graph: Graph,
        rng: np.random.Generator,
        proximity: ProximityMatrix | None = None,
    ) -> None:
        """Build model, samplers and engine for ``graph`` (consumes ``rng``)."""
        if graph.num_edges == 0:
            raise TrainingError("cannot train on a graph with no edges")
        self.graph = graph
        self._rng = rng
        self._active_workers = self._resolve_active_workers()
        self.proximity_matrix = self._resolve_proximity_matrix(graph, proximity)
        self.objective = StructurePreferenceObjective(self.proximity_matrix)

        self.model = self._make_model(graph)
        self.optimizer = SGDOptimizer(self.config.learning_rate)

        if self.negative_sampling == "proximity":
            negative_sampler = ProximityNegativeSampler.from_proximity(
                graph, self.proximity_matrix, seed=self._rng, use_alias=self.fast_path
            )
        else:
            negative_sampler = UnigramNegativeSampler(
                graph, seed=self._rng, use_alias=self.fast_path
            )
        pool = generate_disjoint_subgraph_arrays(
            graph, negative_sampler, self.config.negative_samples
        )
        # Bind the proximity weights once; every batch then slices them
        # instead of re-reading the proximity matrix per example per step.
        self._subgraph_pool: SubgraphBatch = pool.with_weights(
            self.objective.edge_weights(pool.centers, pool.positives)
        )
        self._sampler = SubgraphSampler(
            self._subgraph_pool, self.config.batch_size, seed=self._rng,
            fast_path=self.fast_path,
        )
        workspace = (
            self._ensure_workspace(self._subgraph_pool, graph.num_nodes)
            if self.fast_path
            else None
        )
        self.engine = TrainingEngine(
            model=self.model,
            optimizer=self.optimizer,
            objective=self.objective,
            sampler=self._sampler,
            update_rule=DirectSparseUpdate(),
            hooks=(LossLoggingHook(_LOGGER),),
            workspace=workspace,
        )

    def _run_engine(self, epochs: int | None) -> FitResult:
        """Run the (already set up) engine and install the fitted state."""
        epochs = int(epochs) if epochs is not None else self.config.epochs
        if epochs <= 0:
            raise TrainingError(f"epochs must be positive, got {epochs}")
        if getattr(self, "_active_workers", 1) > 1:
            result = self._run_hogwild(epochs)
        else:
            result = self.engine.run(epochs)
        self._embeddings = result.embeddings
        self._context_embeddings = result.context_embeddings
        return FitResult(
            losses=result.losses,
            epochs_run=result.epochs_run,
            stopped_early=result.stopped_early,
        )

    def train(self, epochs: int | None = None) -> EmbeddingResult:
        """Run training and return embeddings (pre-estimator entry point).

        Requires the deprecated graph-at-construction form (or a prior
        ``fit``); new code should call ``fit(graph)`` and read
        ``embeddings_`` / ``result_``.
        """
        self._require_setup()
        result = self._run_engine(epochs)
        self._result = result
        self._dataset_fingerprint = self.graph.content_fingerprint()
        return EmbeddingResult(
            embeddings=self._embeddings,
            context_embeddings=self._context_embeddings,
            losses=result.losses,
            epochs_run=result.epochs_run,
        )

    def __repr__(self) -> str:
        proximity = getattr(self.proximity, "name", None) or type(self.proximity).__name__
        return (
            f"SEGEmbTrainer(proximity={proximity!r}, "
            f"negative_sampling={self.negative_sampling!r}, "
            f"embedding_dim={self.config.embedding_dim})"
        )
