"""Non-private structure-preference skip-gram trainer (SE-GEmb).

SE-GEmb\\ :sub:`DW` / SE-GEmb\\ :sub:`Deg` are the non-private counterparts
the paper uses as utility upper bounds in Figures 3 and 4.  The trainer
optimises the same structure-preference objective (Eq. 5) over the same
edge-subgraph batches, but applies the exact (un-clipped, un-noised) batch
gradient.

The epoch loop itself lives in :class:`~repro.engine.TrainingEngine`; this
class is a thin configuration of it — vectorized batch gradients applied
with the exact scatter update rule, plus a loss-logging hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import TrainingConfig
from ..engine import (
    DirectSparseUpdate,
    LossLoggingHook,
    SubgraphBatch,
    TrainingEngine,
)
from ..exceptions import TrainingError
from ..graph import Graph
from ..graph.sampling import (
    EdgeSubgraph,
    ProximityNegativeSampler,
    SubgraphSampler,
    UnigramNegativeSampler,
    generate_disjoint_subgraph_arrays,
)
from ..proximity.base import ProximityMatrix, ProximityMeasure
from ..utils.logging import get_logger
from ..utils.rng import ensure_rng
from .objectives import StructurePreferenceObjective
from .optimizer import SGDOptimizer
from .skipgram import SkipGramModel

__all__ = ["EmbeddingResult", "SEGEmbTrainer"]

_LOGGER = get_logger("embedding.trainer")


@dataclass
class EmbeddingResult:
    """Output of a (non-private) training run."""

    embeddings: np.ndarray
    context_embeddings: np.ndarray
    losses: list[float] = field(default_factory=list)
    epochs_run: int = 0

    @property
    def final_loss(self) -> float:
        """Loss of the last completed epoch (NaN if no epoch ran)."""
        return self.losses[-1] if self.losses else float("nan")


class SEGEmbTrainer:
    """Train structure-preference skip-gram embeddings without privacy.

    Parameters
    ----------
    graph:
        Training graph.
    proximity:
        Either a :class:`ProximityMeasure` (computed on ``graph`` lazily) or
        an already-computed :class:`ProximityMatrix`.
    config:
        Training hyper-parameters.
    negative_sampling:
        ``"proximity"`` (default) uses the Theorem-3 sampler — the same one
        SE-PrivGEmb uses, making this trainer its exact non-private
        counterpart.  ``"unigram"`` uses the degree^0.75 word2vec sampler of
        the prior skip-gram methods (the comparison point of Section IV-B).
    seed:
        Master seed controlling initialisation, sampling and shuffling.
    """

    def __init__(
        self,
        graph: Graph,
        proximity: ProximityMeasure | ProximityMatrix,
        config: TrainingConfig | None = None,
        negative_sampling: str = "proximity",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if graph.num_edges == 0:
            raise TrainingError("cannot train on a graph with no edges")
        if negative_sampling not in {"proximity", "unigram"}:
            raise TrainingError(
                f"negative_sampling must be 'proximity' or 'unigram', got {negative_sampling!r}"
            )
        self.graph = graph
        self.config = config or TrainingConfig()
        self._rng = ensure_rng(seed if seed is not None else self.config.seed)

        if isinstance(proximity, ProximityMatrix):
            self.proximity_matrix = proximity
        else:
            self.proximity_matrix = proximity.compute(graph)
        self.objective = StructurePreferenceObjective(self.proximity_matrix)

        self.model = SkipGramModel(
            graph.num_nodes, self.config.embedding_dim, seed=self._rng
        )
        self.optimizer = SGDOptimizer(self.config.learning_rate)

        if negative_sampling == "proximity":
            negative_sampler = ProximityNegativeSampler.from_proximity(
                graph, self.proximity_matrix, seed=self._rng
            )
        else:
            negative_sampler = UnigramNegativeSampler(graph, seed=self._rng)
        pool = generate_disjoint_subgraph_arrays(
            graph, negative_sampler, self.config.negative_samples
        )
        # Bind the proximity weights once; every batch then slices them
        # instead of re-reading the proximity matrix per example per step.
        self._subgraph_pool: SubgraphBatch = pool.with_weights(
            self.objective.edge_weights(pool.centers, pool.positives)
        )
        self._sampler = SubgraphSampler(
            self._subgraph_pool, self.config.batch_size, seed=self._rng
        )
        self.engine = TrainingEngine(
            model=self.model,
            optimizer=self.optimizer,
            objective=self.objective,
            sampler=self._sampler,
            update_rule=DirectSparseUpdate(),
            hooks=(LossLoggingHook(_LOGGER),),
        )

    # ------------------------------------------------------------------ #
    @property
    def sampling_rate(self) -> float:
        """``B / |GS|`` — exposed for parity with the private trainer."""
        return self._sampler.sampling_rate

    @property
    def subgraphs(self) -> list[EdgeSubgraph]:
        """The Algorithm-1 subgraph set as per-example dataclasses.

        A fresh copy built from the pool arrays on each access; mutating
        it has no effect on training.
        """
        return self._subgraph_pool.to_subgraphs()

    def train(self, epochs: int | None = None) -> EmbeddingResult:
        """Run training for ``epochs`` (default: ``config.epochs``) and return embeddings."""
        epochs = int(epochs) if epochs is not None else self.config.epochs
        if epochs <= 0:
            raise TrainingError(f"epochs must be positive, got {epochs}")
        result = self.engine.run(epochs)
        return EmbeddingResult(
            embeddings=result.embeddings,
            context_embeddings=result.context_embeddings,
            losses=result.losses,
            epochs_run=result.epochs_run,
        )
