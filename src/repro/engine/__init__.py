"""Unified vectorized training engine for SE-GEmb / SE-PrivGEmb.

This subsystem owns the hot training loop.  It moves batches of Algorithm-1
edge subgraphs as arrays (:class:`SubgraphBatch`), computes all per-example
structure-preference gradients in one vectorized pass
(:class:`BatchGradients`), and runs one shared epoch loop
(:class:`TrainingEngine`) that both the non-private and the private trainer
configure via update rules and hooks instead of re-implementing.

Two opt-in collaborators speed and instrument the loop without touching the
default path: :class:`StepWorkspace` preallocates every per-step array once
(the zero-allocation fast path), and :class:`StepProfiler` records where a
step's wall time goes (sample / gradients / perturb / descend).
"""

from .batch import BatchGradients, SubgraphBatch
from .core import EngineResult, TrainingEngine
from .hooks import (
    EngineHook,
    IterateAveragingHook,
    LossLoggingHook,
    RdpAccountingHook,
)
from .hogwild import HogwildRun, WorkerReport, plan_shards, run_hogwild
from .profiler import StepProfile, StepProfiler
from .updates import DirectSparseUpdate, PerturbedUpdate, UpdateRule
from .workspace import StepWorkspace, WorkspacePerturbedGradients, resolve_compute_dtype

__all__ = [
    "BatchGradients",
    "SubgraphBatch",
    "EngineResult",
    "TrainingEngine",
    "EngineHook",
    "LossLoggingHook",
    "RdpAccountingHook",
    "IterateAveragingHook",
    "StepProfile",
    "StepProfiler",
    "HogwildRun",
    "WorkerReport",
    "plan_shards",
    "run_hogwild",
    "StepWorkspace",
    "WorkspacePerturbedGradients",
    "UpdateRule",
    "DirectSparseUpdate",
    "PerturbedUpdate",
    "resolve_compute_dtype",
]
