"""Unified vectorized training engine for SE-GEmb / SE-PrivGEmb.

This subsystem owns the hot training loop.  It moves batches of Algorithm-1
edge subgraphs as arrays (:class:`SubgraphBatch`), computes all per-example
structure-preference gradients in one vectorized pass
(:class:`BatchGradients`), and runs one shared epoch loop
(:class:`TrainingEngine`) that both the non-private and the private trainer
configure via update rules and hooks instead of re-implementing.
"""

from .batch import BatchGradients, SubgraphBatch
from .core import EngineResult, TrainingEngine
from .hooks import (
    EngineHook,
    IterateAveragingHook,
    LossLoggingHook,
    RdpAccountingHook,
)
from .updates import DirectSparseUpdate, PerturbedUpdate, UpdateRule

__all__ = [
    "BatchGradients",
    "SubgraphBatch",
    "EngineResult",
    "TrainingEngine",
    "EngineHook",
    "LossLoggingHook",
    "RdpAccountingHook",
    "IterateAveragingHook",
    "UpdateRule",
    "DirectSparseUpdate",
    "PerturbedUpdate",
]
