"""Array-level batch containers for the vectorized training engine.

The per-example :class:`~repro.graph.sampling.EdgeSubgraph` dataclass is a
faithful rendition of one Algorithm-1 record, but iterating a Python list of
them is what kept the seed trainers slow: every SGD step paid ``B`` Python
function calls, ``B`` small matmuls and ``B`` dataclass allocations.  The
engine instead moves whole batches as struct-of-arrays:

* :class:`SubgraphBatch` — ``B`` edge subgraphs as three aligned arrays:
  centres ``[B]``, contexts ``[B, 1+k]`` (positive node first, matching
  ``EdgeSubgraph.all_context_nodes``) and optional proximity weights ``[B]``.
* :class:`BatchGradients` — the sparse gradients of a whole batch: one
  ``W_in`` row per example and ``1+k`` ``W_out`` rows per example, plus the
  per-example losses so the loss never has to be recomputed from scores.

Both containers keep ``EdgeSubgraph`` round-trips (:meth:`SubgraphBatch.
from_subgraphs` / :meth:`SubgraphBatch.to_subgraphs`) so list-based callers
keep working; the arrays are the hot path, the dataclasses the view.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import TrainingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..embedding.objectives import PairGradients
    from ..graph.sampling import EdgeSubgraph

__all__ = ["SubgraphBatch", "BatchGradients"]


@dataclass(frozen=True)
class SubgraphBatch:
    """A batch of ``B`` edge subgraphs in struct-of-arrays layout.

    Attributes
    ----------
    centers:
        Centre node ``v_i`` of each example, shape ``[B]``.
    contexts:
        Context node indices of each example, shape ``[B, 1+k]``; column 0
        is the positive node ``v_j``, columns ``1..k`` the negatives.
    weights:
        Optional proximity weights ``p_ij`` per example, shape ``[B]``.
        ``None`` means "not yet bound to an objective"; the objective fills
        them in (or computes them on the fly).
    """

    centers: np.ndarray
    contexts: np.ndarray
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        centers = np.asarray(self.centers, dtype=np.int64)
        contexts = np.asarray(self.contexts, dtype=np.int64)
        if centers.ndim != 1:
            raise TrainingError(f"centers must be 1-D, got shape {centers.shape}")
        if centers.shape[0] == 0:
            raise TrainingError("SubgraphBatch must contain at least one example")
        if contexts.ndim != 2 or contexts.shape[0] != centers.shape[0]:
            raise TrainingError(
                f"contexts must have shape ({centers.shape[0]}, 1 + k), "
                f"got {contexts.shape}"
            )
        if contexts.shape[1] < 2:
            raise TrainingError(
                "contexts needs at least two columns (positive + >=1 negative), "
                f"got shape {contexts.shape}"
            )
        object.__setattr__(self, "centers", centers)
        object.__setattr__(self, "contexts", contexts)
        if self.weights is not None:
            # float32 buffers pass through untouched (the compute-dtype fast
            # path relies on buffer identity); everything else keeps the old
            # coerce-to-float64 behaviour.
            weights = np.asarray(self.weights)
            if weights.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
                weights = weights.astype(float)
            if weights.shape != centers.shape:
                raise TrainingError(
                    f"weights must have shape {centers.shape}, got {weights.shape}"
                )
            # Weights come from proximity pair lookups (CSR or dense); a
            # non-finite value would silently poison every gradient that
            # touches the row, so reject it at construction.
            if np.any(~np.isfinite(weights)):
                raise TrainingError("proximity weights must be finite")
            object.__setattr__(self, "weights", weights)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.centers.shape[0])

    @property
    def positives(self) -> np.ndarray:
        """The positive context node of each example, shape ``[B]``."""
        return self.contexts[:, 0]

    @property
    def negatives(self) -> np.ndarray:
        """The ``k`` negative nodes of each example, shape ``[B, k]``."""
        return self.contexts[:, 1:]

    @property
    def num_negatives(self) -> int:
        """``k``, the number of negative samples per example."""
        return int(self.contexts.shape[1]) - 1

    # ------------------------------------------------------------------ #
    def take(self, indices: np.ndarray, *, out: "SubgraphBatch | None" = None) -> "SubgraphBatch":
        """Return the sub-batch at ``indices`` (used by the batch sampler).

        With ``out`` (a batch wrapping preallocated buffers, e.g.
        ``StepWorkspace.batch``) the rows are gathered straight into the
        buffers via ``np.take(..., out=..., mode="clip")`` and ``out`` is
        returned — the allocation-free fast path.  ``indices`` must already
        be in range (``mode="clip"`` silently clamps, it does not validate)
        and the weight dtypes must match exactly, otherwise numpy would
        allocate a casting buffer behind the scenes.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if out is None:
            return SubgraphBatch(
                centers=self.centers[indices],
                contexts=self.contexts[indices],
                weights=None if self.weights is None else self.weights[indices],
            )
        if self.weights is None and out.weights is not None:
            raise TrainingError(
                "cannot take() from a weightless pool into a workspace batch "
                "with weight buffers: the stale weights would be used"
            )
        np.take(self.centers, indices, out=out.centers, mode="clip")
        np.take(self.contexts, indices, axis=0, out=out.contexts, mode="clip")
        if self.weights is not None:
            if out.weights is None or out.weights.dtype != self.weights.dtype:
                raise TrainingError(
                    "workspace weight buffer dtype "
                    f"{None if out.weights is None else out.weights.dtype} does "
                    f"not match pool weights {self.weights.dtype}; cast the pool "
                    "once (SubgraphSampler does this) instead of per step"
                )
            np.take(self.weights, indices, out=out.weights, mode="clip")
        return out

    def with_weights(self, weights: np.ndarray) -> "SubgraphBatch":
        """Return a copy of this batch with proximity weights attached."""
        return SubgraphBatch(centers=self.centers, contexts=self.contexts, weights=weights)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_subgraphs(
        cls,
        subgraphs: Sequence["EdgeSubgraph"],
        weights: np.ndarray | None = None,
    ) -> "SubgraphBatch":
        """Pack a list of :class:`EdgeSubgraph` records into arrays."""
        if len(subgraphs) == 0:
            raise TrainingError("cannot build a SubgraphBatch from zero subgraphs")
        num_negatives = {int(np.asarray(sub.negatives).shape[0]) for sub in subgraphs}
        if len(num_negatives) != 1:
            raise TrainingError(
                f"all subgraphs must share one negative count, got {sorted(num_negatives)}"
            )
        k = num_negatives.pop()
        if k < 1:
            raise TrainingError(f"subgraphs must have >= 1 negative, got {k}")
        centers = np.fromiter((int(sub.center) for sub in subgraphs), dtype=np.int64)
        contexts = np.empty((len(subgraphs), 1 + k), dtype=np.int64)
        for row, sub in enumerate(subgraphs):
            contexts[row, 0] = int(sub.positive)
            contexts[row, 1:] = sub.negatives
        return cls(centers=centers, contexts=contexts, weights=weights)

    def to_subgraphs(self) -> list["EdgeSubgraph"]:
        """Materialise the compatibility view: one :class:`EdgeSubgraph` per row."""
        from ..graph.sampling import EdgeSubgraph

        return [
            EdgeSubgraph(
                center=int(self.centers[row]),
                positive=int(self.contexts[row, 0]),
                negatives=self.contexts[row, 1:].copy(),
            )
            for row in range(len(self))
        ]


@dataclass(frozen=True)
class BatchGradients:
    """Sparse structure-preference gradients of a whole batch (Eq. 7 / Eq. 8).

    Mirrors ``B`` :class:`~repro.embedding.objectives.PairGradients` records
    in array form.  The per-example ``losses`` ride along for free — they are
    computed from the same sigmoid scores as the gradients, so trainers never
    need a second loss pass over the batch.
    """

    centers: np.ndarray  # [B] int64
    center_gradients: np.ndarray  # [B, r]
    context_nodes: np.ndarray  # [B, 1+k] int64
    context_gradients: np.ndarray  # [B, 1+k, r]
    losses: np.ndarray  # [B]

    def __len__(self) -> int:
        return int(self.centers.shape[0])

    @property
    def batch_size(self) -> int:
        """Number of examples ``B`` in the batch."""
        return len(self)

    @property
    def mean_loss(self) -> float:
        """Mean per-example loss of the batch — no extra forward pass needed."""
        return float(np.mean(self.losses))

    def to_pair_gradients(self) -> list["PairGradients"]:
        """Compatibility view: unpack into per-example ``PairGradients``."""
        from ..embedding.objectives import PairGradients

        return [
            PairGradients(
                center=int(self.centers[row]),
                center_gradient=self.center_gradients[row].copy(),
                context_nodes=self.context_nodes[row].copy(),
                context_gradients=self.context_gradients[row].copy(),
                loss=float(self.losses[row]),
            )
            for row in range(len(self))
        ]
