"""The unified vectorized training loop shared by SE-GEmb and SE-PrivGEmb.

One epoch of either trainer is the same four moves:

1. sample a batch of edge subgraphs (arrays, not dataclasses),
2. compute the structure-preference gradients of the whole batch in one
   vectorized pass (Eq. 7 / Eq. 8),
3. hand the gradients to the :class:`~repro.engine.updates.UpdateRule`
   (exact scatter descent for SE-GEmb; clip → perturb → average → descend
   for SE-PrivGEmb),
4. run the hooks (privacy accounting, iterate averaging, logging).

The engine is deliberately duck-typed: it needs a model with ``w_in`` /
``w_out`` / ``embeddings()``, an optimizer with ``descend*`` /
``step_epoch``, an objective with ``batch_gradients`` and a sampler with
``sample_batch_arrays`` — it imports nothing from the embedding package, so
the embedding layer can depend on the engine without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import TrainingError
from .hooks import EngineHook
from .updates import UpdateRule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .profiler import StepProfile, StepProfiler
    from .workspace import StepWorkspace

__all__ = ["EngineResult", "TrainingEngine"]


@dataclass
class EngineResult:
    """Raw output of one :meth:`TrainingEngine.run` call.

    ``embeddings`` / ``context_embeddings`` default to the final iterates;
    hooks (e.g. iterate averaging) may replace them in ``on_train_end``.
    ``profile`` is filled by a :class:`~repro.engine.profiler.StepProfiler`
    hook when one is installed, ``None`` otherwise.
    """

    embeddings: np.ndarray
    context_embeddings: np.ndarray
    losses: list[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False
    profile: "StepProfile | None" = None


class TrainingEngine:
    """Run the shared epoch loop over vectorized subgraph batches.

    Parameters
    ----------
    model:
        The skip-gram model holding ``w_in`` and ``w_out``.
    optimizer:
        SGD optimizer applying the updates (and learning-rate decay).
    objective:
        Objective exposing ``batch_gradients(w_in, w_out, batch)``.
    sampler:
        Batch source exposing ``sample_batch_arrays() -> SubgraphBatch``.
    update_rule:
        How gradients hit the parameters (exact vs private).
    hooks:
        Ordered :class:`EngineHook` instances; ``before_step`` hooks can
        stop training (privacy budget), ``on_train_end`` hooks can replace
        the published matrices (iterate averaging).
    workspace:
        Optional :class:`~repro.engine.workspace.StepWorkspace`.  When
        present every step runs through the preallocated buffers (the
        zero-allocation fast path); the sampler and objective must be
        workspace-aware (``SubgraphSampler`` / the structure-preference
        objective are).  ``None`` (default) keeps the existing path
        bit-for-bit.
    """

    def __init__(
        self,
        *,
        model,
        optimizer,
        objective,
        sampler,
        update_rule: UpdateRule,
        hooks: Sequence[EngineHook] = (),
        workspace: "StepWorkspace | None" = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.objective = objective
        self.sampler = sampler
        self.update_rule = update_rule
        self.hooks = tuple(hooks)
        self.workspace = workspace
        #: installed by a StepProfiler hook for the duration of a run
        self.profiler: "StepProfiler | None" = None
        #: total epochs requested by the current ``run`` (for logging hooks).
        self.total_epochs = 0

    # ------------------------------------------------------------------ #
    def step(self, epoch: int = 0) -> float:
        """Run one training step and return its mean batch loss."""
        profiler = self.profiler
        workspace = self.workspace
        if profiler is not None:
            start = perf_counter()
        if workspace is None:
            batch = self.sampler.sample_batch_arrays()
            if profiler is not None:
                now = perf_counter()
                profiler.record("sample", now - start)
                start = now
            gradients = self.objective.batch_gradients(
                self.model.w_in, self.model.w_out, batch
            )
        else:
            batch = self.sampler.sample_batch_arrays(workspace=workspace)
            if profiler is not None:
                now = perf_counter()
                profiler.record("sample", now - start)
                start = now
            gradients = self.objective.batch_gradients(
                self.model.w_in, self.model.w_out, batch, workspace=workspace
            )
        if profiler is not None:
            profiler.record("gradients", perf_counter() - start)
        self.update_rule.apply(self.model, self.optimizer, batch, gradients)
        return gradients.mean_loss

    def run(self, epochs: int) -> EngineResult:
        """Run up to ``epochs`` steps (hooks may stop earlier) and return the result."""
        epochs = int(epochs)
        if epochs <= 0:
            raise TrainingError(f"epochs must be positive, got {epochs}")
        self.total_epochs = epochs
        if self.workspace is not None:
            self.workspace.validate_model(self.model)
        self.update_rule.workspace = self.workspace

        self.profiler = None
        for hook in self.hooks:
            hook.on_train_start(self)
        # a StepProfiler hook installs itself on engine.profiler above
        self.update_rule.profiler = self.profiler

        losses: list[float] = []
        stopped_early = False
        for epoch in range(epochs):
            if not all(hook.before_step(self, epoch) for hook in self.hooks):
                stopped_early = True
                break
            loss = self.step(epoch)
            losses.append(loss)
            for hook in self.hooks:
                hook.after_step(self, epoch, loss)
            self.optimizer.step_epoch()

        result = EngineResult(
            embeddings=self.model.embeddings(),
            context_embeddings=self.model.w_out.copy(),
            losses=losses,
            epochs_run=len(losses),
            stopped_early=stopped_early,
        )
        for hook in self.hooks:
            result = hook.on_train_end(self, result)
        self.update_rule.profiler = None
        return result

    def __repr__(self) -> str:
        return (
            f"TrainingEngine(update_rule={type(self.update_rule).__name__}, "
            f"hooks={[type(h).__name__ for h in self.hooks]})"
        )
