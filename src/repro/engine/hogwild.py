"""Hogwild execution: shard one engine run across forked worker processes.

The paper's Algorithm-1 training step touches only the few rows of one
disjoint edge subgraph (``1 + B(k+2)`` rows out of ``|V|``), which makes
the training loop a textbook hogwild workload: workers apply their sparse
scatter updates to *shared* parameter matrices without locks, and the rare
write collisions on popular rows act like slightly stale gradients rather
than corruption (Niu et al., 2011).  This module provides the pool:

* the model's matrices must live in shared memory (e.g.
  :class:`~repro.embedding.shared_model.SharedSkipGramModel`) — workers
  are forked and update the very same pages the parent reads;
* the requested step count is split into balanced shards
  (:func:`plan_shards`), one forked worker per shard;
* each worker derives its own namespaced RNG stream from a
  ``SeedSequence.spawn`` child and builds a private engine around the
  shared model via the caller's ``engine_factory`` — its own sampler,
  optimizer, perturbation and preallocated
  :class:`~repro.engine.workspace.StepWorkspace`, so the PR-5
  zero-allocation invariant holds per worker and nothing but the model
  pages is shared on the hot path;
* per-worker losses, :class:`~repro.engine.profiler.StepProfile` results
  and (opt-in) tracemalloc evidence come back over a pipe and are merged
  into one :class:`~repro.engine.core.EngineResult`.

Like the rest of the engine, this module is duck-typed and imports nothing
from the embedding package: it needs a model with ``w_in`` / ``w_out`` /
``embeddings()`` whose arrays are fork-shared, and a factory returning a
:class:`~repro.engine.core.TrainingEngine` over it.

What is and is not deterministic: the *set* of batches each shard samples
and the noise each shard draws are fixed by the spawned seeds, but the
interleaving of the racy parameter writes is scheduler-dependent, so
multi-worker results are reproducible only in distribution.  ``workers=1``
never enters this module — trainers keep the exact serial path for it.
"""

from __future__ import annotations

import os
import tracemalloc
import weakref
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing import shared_memory as _shm

import numpy as np

from ..exceptions import TrainingError
from ..utils import mp as _mp
from ..utils.logging import get_logger
from .core import EngineResult, TrainingEngine
from .hooks import EngineHook
from .profiler import StepProfile, StepProfiler

__all__ = ["HogwildRun", "WorkerReport", "plan_shards", "run_hogwild"]

_LOGGER = get_logger("engine.hogwild")

#: steps a traced worker runs before the measured tracemalloc window opens
#: (lets caches, list over-allocation and tracemalloc's own tables settle)
_TRACE_WARMUP_STEPS = 8


def plan_shards(total_steps: int, workers: int) -> list[int]:
    """Split ``total_steps`` into at most ``workers`` balanced shard sizes.

    Earlier shards absorb the remainder; no shard is ever empty (a worker
    must run at least one step), so fewer than ``workers`` shards come back
    when there are fewer steps than workers.
    """
    total_steps = int(total_steps)
    workers = int(workers)
    if total_steps < 1:
        raise TrainingError(f"total_steps must be positive, got {total_steps}")
    if workers < 1:
        raise TrainingError(f"workers must be >= 1, got {workers}")
    workers = min(workers, total_steps)
    base, extra = divmod(total_steps, workers)
    return [base + (1 if i < extra else 0) for i in range(workers)]


@dataclass
class WorkerReport:
    """What one shard reports back to the parent."""

    shard: int
    steps: int
    losses: list[float]
    profile: StepProfile
    #: tracemalloc growth in bytes over ``traced_steps`` steady-state steps
    #: (-1 when memory tracing was off)
    traced_bytes: int = -1
    traced_steps: int = 0
    pid: int = 0


@dataclass
class HogwildRun:
    """Outcome of :func:`run_hogwild`: the merged result plus per-worker detail."""

    result: EngineResult
    reports: list[WorkerReport] = field(default_factory=list)

    @property
    def shard_steps(self) -> list[int]:
        """Steps actually run per shard (what the accountant composes over)."""
        return [report.steps for report in self.reports]


class _IterateSumHook(EngineHook):
    """Accumulate post-step iterates in float64, across *multiple* runs.

    Unlike :class:`~repro.engine.hooks.IterateAveragingHook` it neither
    resets on ``on_train_start`` (a traced worker runs the engine twice)
    nor replaces the result — the parent pools the raw sums from all
    workers and divides by the global step count once.
    """

    def __init__(self) -> None:
        self.sum_w_in: np.ndarray | None = None
        self.sum_w_out: np.ndarray | None = None
        self.steps = 0

    def after_step(self, engine: "TrainingEngine", epoch: int, loss: float) -> None:
        self.steps += 1
        if self.sum_w_in is None:
            self.sum_w_in = engine.model.w_in.astype(np.float64, copy=True)
            self.sum_w_out = engine.model.w_out.astype(np.float64, copy=True)
        else:
            self.sum_w_in += engine.model.w_in
            self.sum_w_out += engine.model.w_out


def _release_blocks(
    blocks: tuple[_shm.SharedMemory, ...], owner_pid: int
) -> None:
    """Close (and, in the owning process, unlink) shared blocks.

    Unlink runs first and unconditionally: even if a lingering ndarray
    view keeps a mapping pinned (``close`` then raises ``BufferError``)
    the *name* is gone, so nothing leaks in ``/dev/shm`` — the memory is
    freed when the last view dies.  Shared between :meth:`destroy` and the
    ``weakref.finalize`` backstop so both exit paths behave identically.
    """
    unlink = os.getpid() == owner_pid
    for block in blocks:
        if unlink:
            try:
                block.unlink()
            except FileNotFoundError:
                pass
        try:
            block.close()
        except BufferError:  # pragma: no cover - views still exported
            pass


class _SharedAccumulator:
    """Two shared float64 blocks pooling the workers' iterate sums.

    Workers add their local sums under ``lock`` once at shard end (two
    adds per worker per run, not per step), the parent divides by the
    total step count.  The parent creates, owns and unlinks the blocks;
    a pid-guarded ``weakref.finalize`` backstop releases them at garbage
    collection if :meth:`destroy` was never reached.
    """

    def __init__(self, shape: tuple[int, int]) -> None:
        nbytes = int(np.prod(shape)) * np.dtype(np.float64).itemsize
        self._blocks = (
            _shm.SharedMemory(create=True, size=nbytes),
            _shm.SharedMemory(create=True, size=nbytes),
        )
        self.sum_w_in = np.ndarray(shape, dtype=np.float64, buffer=self._blocks[0].buf)
        self.sum_w_out = np.ndarray(shape, dtype=np.float64, buffer=self._blocks[1].buf)
        self.sum_w_in[:] = 0.0
        self.sum_w_out[:] = 0.0
        self._owner_pid = os.getpid()
        # backstop if run_hogwild never reaches its finally (or a caller
        # abandons the accumulator): unlink at GC so no segment can outlive
        # the parent.  Guarded by pid — forked children inherit the
        # finalizer registry but must never unlink the parent's blocks.
        self._finalizer = weakref.finalize(
            self, _release_blocks, self._blocks, self._owner_pid
        )

    def add(self, sum_w_in: np.ndarray, sum_w_out: np.ndarray) -> None:
        self.sum_w_in += sum_w_in
        self.sum_w_out += sum_w_out

    def destroy(self) -> None:
        """Drop the views, close the mappings and (in the owner) unlink."""
        self._finalizer.detach()
        self.sum_w_in = None  # type: ignore[assignment]
        self.sum_w_out = None  # type: ignore[assignment]
        _release_blocks(self._blocks, self._owner_pid)


def _seed_sequence(
    seed: int | np.random.SeedSequence | np.random.Generator | None,
) -> np.random.SeedSequence:
    """Normalise any accepted seed form into a spawnable ``SeedSequence``."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        # consume one draw so a trainer can thread its master generator in
        # without two fits sharing shard streams
        return np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    return np.random.SeedSequence(seed)


class _TraceMemoryHook(EngineHook):
    """Sample tracemalloc's current size at every step boundary.

    The reported growth is last-sample minus first-sample: it covers the
    steady-state step loop only, excluding both run-entry allocations and
    the engine's end-of-run result snapshot (two ``|V| x d`` copies — a
    constant handover cost, not per-step leak surface).
    """

    def __init__(self) -> None:
        self.first: int | None = None
        self.last: int | None = None
        self.samples = 0

    def after_step(self, engine: TrainingEngine, epoch: int, loss: float) -> None:
        current = tracemalloc.get_traced_memory()[0]
        if self.first is None:
            self.first = current
        self.last = current
        self.samples += 1


def _run_shard(
    engine_factory: Callable[[np.random.Generator], TrainingEngine],
    seed: np.random.SeedSequence,
    steps: int,
    iterate_averaging: bool,
    trace_memory: bool,
    shard: int,
) -> tuple[WorkerReport, _IterateSumHook | None]:
    """Run one shard's steps in the current process; shared by pool and inline."""
    rng = np.random.default_rng(seed)
    engine = engine_factory(rng)
    profiler = StepProfiler()
    averager = _IterateSumHook() if iterate_averaging else None
    extra_hooks: list[EngineHook] = [profiler]
    if averager is not None:
        extra_hooks.append(averager)
    engine.hooks = tuple(engine.hooks) + tuple(extra_hooks)

    losses: list[float] = []
    profiles: list[StepProfile] = []
    traced_bytes = -1
    traced_steps = 0
    measured = steps
    tracer: _TraceMemoryHook | None = None
    if trace_memory and steps > _TRACE_WARMUP_STEPS:
        result = engine.run(_TRACE_WARMUP_STEPS)
        losses.extend(result.losses)
        profiles.append(profiler.last_profile)
        measured = steps - _TRACE_WARMUP_STEPS
        tracer = _TraceMemoryHook()
        engine.hooks = tuple(engine.hooks) + (tracer,)
        tracemalloc.start()
    result = engine.run(measured)
    if tracer is not None:
        tracemalloc.stop()
        if tracer.samples > 1:
            traced_bytes = tracer.last - tracer.first
            traced_steps = tracer.samples - 1
    losses.extend(result.losses)
    profiles.append(profiler.last_profile)
    profile = StepProfile.merge([p for p in profiles if p is not None])
    profile.workers = 1  # a traced shard merges its own warmup+measured runs
    report = WorkerReport(
        shard=shard,
        steps=len(losses),
        losses=losses,
        profile=profile,
        traced_bytes=traced_bytes,
        traced_steps=traced_steps,
        pid=os.getpid(),
    )
    return report, averager


def _worker_entry(
    engine_factory,
    seed,
    steps,
    iterate_averaging,
    trace_memory,
    shard,
    accumulator,
    lock,
    conn,
) -> None:
    """Forked worker body: run the shard, pool iterate sums, report back."""
    try:
        report, averager = _run_shard(
            engine_factory, seed, steps, iterate_averaging, trace_memory, shard
        )
        if averager is not None and averager.steps > 0:
            with lock:
                accumulator.add(averager.sum_w_in, averager.sum_w_out)
        conn.send(("ok", report))
    except BaseException as exc:  # forwarded to the parent, then re-raised
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - parent already gone
            pass
        raise
    finally:
        conn.close()


def _interleave_losses(per_shard: Sequence[Sequence[float]]) -> list[float]:
    """Round-robin merge of the shard loss traces.

    Shards progress concurrently, so interleaving step ``j`` of every
    shard approximates the chronological loss curve of the combined run
    far better than concatenation would.
    """
    merged: list[float] = []
    for j in range(max((len(tr) for tr in per_shard), default=0)):
        for trace in per_shard:
            if j < len(trace):
                merged.append(trace[j])
    return merged


def run_hogwild(
    *,
    model,
    engine_factory: Callable[[np.random.Generator], TrainingEngine],
    total_steps: int,
    workers: int,
    seed: int | np.random.SeedSequence | np.random.Generator | None = None,
    iterate_averaging: bool = False,
    trace_memory: bool = False,
) -> HogwildRun:
    """Run ``total_steps`` engine steps sharded over forked hogwild workers.

    Parameters
    ----------
    model:
        The shared-memory backed model every worker's engine updates in
        place.  Its ``w_in`` must be fork-shared (not merely copy-on-write)
        or the workers' updates would never reach the parent.
    engine_factory:
        Callable building a fresh :class:`TrainingEngine` over ``model``
        from a worker-private generator.  It runs *inside* the forked
        worker, so it may close over arbitrarily large parent state
        (subgraph pools, objectives) at zero copy cost.
    total_steps:
        Combined number of steps across all shards (the privacy-relevant
        count — compose it with
        :meth:`~repro.privacy.accountant.RdpAccountant.step_shards`).
    workers:
        Requested pool size; degraded to serial-in-process with a warning
        when ``fork`` is unavailable.
    seed:
        Root of the per-shard streams (``SeedSequence.spawn`` children).
    iterate_averaging:
        Pool Polyak–Ruppert iterate sums across the workers and publish
        the global average instead of the final iterates.
    trace_memory:
        Have every worker measure its steady-state allocation growth with
        ``tracemalloc`` (reported per worker, not enabled in the parent).
    """
    if total_steps < 1:
        raise TrainingError(f"total_steps must be positive, got {total_steps}")
    released = getattr(model, "released", False)
    if released:
        raise TrainingError(
            "the shared model was already released; fit again to train more"
        )
    workers = _mp.resolve_fork_workers(int(workers), "hogwild training")
    shards = plan_shards(total_steps, max(1, workers))
    seeds = _seed_sequence(seed).spawn(len(shards))

    if len(shards) == 1:
        # fork unavailable or a single-step run: same machinery, no pool
        report, averager = _run_shard(
            engine_factory, seeds[0], shards[0], iterate_averaging, trace_memory, 0
        )
        reports = [report]
        if averager is not None and averager.steps > 0:
            embeddings = (averager.sum_w_in / averager.steps).astype(
                model.w_in.dtype, copy=False
            )
            context = (averager.sum_w_out / averager.steps).astype(
                model.w_out.dtype, copy=False
            )
        else:
            embeddings, context = model.embeddings(), model.w_out.copy()
        return HogwildRun(
            result=EngineResult(
                embeddings=embeddings,
                context_embeddings=context,
                losses=list(report.losses),
                epochs_run=report.steps,
                profile=report.profile,
            ),
            reports=reports,
        )

    ctx = get_context("fork")
    lock = ctx.Lock()
    accumulator = (
        _SharedAccumulator(model.w_in.shape) if iterate_averaging else None
    )
    processes = []
    try:
        for shard, (steps, shard_seed) in enumerate(zip(shards, seeds, strict=True)):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_worker_entry,
                args=(
                    engine_factory,
                    shard_seed,
                    steps,
                    iterate_averaging,
                    trace_memory,
                    shard,
                    accumulator,
                    lock,
                    child_conn,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            processes.append((process, parent_conn))

        reports = []
        failures: list[str] = []
        for shard, (process, conn) in enumerate(processes):
            # receive before join: a large report must not deadlock the pipe
            try:
                status, payload = conn.recv()
            except EOFError:
                status, payload = "crashed", None
            finally:
                conn.close()
            process.join()
            if status == "ok":
                reports.append(payload)
            elif status == "error":
                failures.append(f"shard {shard}: {payload}")
            else:
                failures.append(
                    f"shard {shard}: worker pid={process.pid} died with "
                    f"exit code {process.exitcode}"
                )
        if failures:
            raise TrainingError(
                "hogwild worker failure — " + "; ".join(failures)
            )

        total_run = sum(report.steps for report in reports)
        if iterate_averaging and total_run > 0:
            embeddings = (accumulator.sum_w_in / total_run).astype(
                model.w_in.dtype, copy=False
            )
            context = (accumulator.sum_w_out / total_run).astype(
                model.w_out.dtype, copy=False
            )
        else:
            embeddings, context = model.embeddings(), model.w_out.copy()
        result = EngineResult(
            embeddings=embeddings,
            context_embeddings=context,
            losses=_interleave_losses([report.losses for report in reports]),
            epochs_run=total_run,
            profile=StepProfile.merge([report.profile for report in reports]),
        )
        _LOGGER.debug(
            "hogwild run: %d steps over %d workers (%s)",
            total_run,
            len(reports),
            result.profile,
        )
        return HogwildRun(result=result, reports=reports)
    finally:
        for process, _ in processes:
            if process.is_alive():  # pragma: no cover - only on failure paths
                process.terminate()
                process.join()
        if accumulator is not None:
            accumulator.destroy()
