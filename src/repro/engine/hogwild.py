"""Hogwild execution: shard one engine run across forked worker processes.

The paper's Algorithm-1 training step touches only the few rows of one
disjoint edge subgraph (``1 + B(k+2)`` rows out of ``|V|``), which makes
the training loop a textbook hogwild workload: workers apply their sparse
scatter updates to *shared* parameter matrices without locks, and the rare
write collisions on popular rows act like slightly stale gradients rather
than corruption (Niu et al., 2011).  This module provides the pool:

* the model's matrices must live in shared memory (e.g.
  :class:`~repro.embedding.shared_model.SharedSkipGramModel`) — workers
  are forked and update the very same pages the parent reads;
* the requested step count is split into balanced shards
  (:func:`plan_shards`), one forked worker per shard;
* each worker derives its own namespaced RNG stream from a
  ``SeedSequence.spawn`` child and builds a private engine around the
  shared model via the caller's ``engine_factory`` — its own sampler,
  optimizer, perturbation and preallocated
  :class:`~repro.engine.workspace.StepWorkspace`, so the PR-5
  zero-allocation invariant holds per worker and nothing but the model
  pages is shared on the hot path;
* per-worker losses, :class:`~repro.engine.profiler.StepProfile` results
  and (opt-in) tracemalloc evidence come back over a pipe and are merged
  into one :class:`~repro.engine.core.EngineResult`.

Supervision (PR 10): with a
:class:`~repro.robustness.checkpoint.SupervisorPolicy` the parent runs a
supervisor loop instead of a fire-and-collect pass.  Workers periodically
checkpoint ``(steps, rng state, losses)`` per shard; a dead or stalled
worker is restarted from its last checkpoint — the trained weights live in
the parent's shared pages and survive the worker — up to ``max_restarts``
times with exponential backoff, after which the run degrades to a
partial-result :class:`~repro.exceptions.HogwildDegradedError` naming the
recovered and lost shards.  Privacy accounting stays conservative
throughout: every incarnation that dies is charged its *full remaining
step allotment* (``target − resume offset``), so the composed charge can
over-count mechanism invocations but can never under-count them — noise a
crashed worker already released stays paid for.  Without supervision the
behaviour is the historical one (any worker failure fails the run), just
expressed as ``max_restarts=0`` through the same loop.

Like the rest of the engine, this module is duck-typed and imports nothing
from the embedding package: it needs a model with ``w_in`` / ``w_out`` /
``embeddings()`` whose arrays are fork-shared, and a factory returning a
:class:`~repro.engine.core.TrainingEngine` over it.

What is and is not deterministic: the *set* of batches each shard samples
and the noise each shard draws are fixed by the spawned seeds, but the
interleaving of the racy parameter writes is scheduler-dependent, so
multi-worker results are reproducible only in distribution.  A restarted
incarnation continues a *deterministic* stream (the checkpointed
``bit_generator.state``), but not a bit-replay of the lost steps — the
same in-distribution guarantee.  ``workers=1`` never enters the pool —
trainers keep the exact serial path for it.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
import tracemalloc
import weakref
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing import shared_memory as _shm
from multiprocessing.connection import wait as _conn_wait
from typing import Any

import numpy as np

from ..exceptions import HogwildDegradedError, TrainingError
from ..robustness.checkpoint import CheckpointStore, ShardCheckpoint, SupervisorPolicy
from ..robustness.faults import FaultPlan, get_active_plan
from ..utils import mp as _mp
from ..utils.logging import get_logger
from .core import EngineResult, TrainingEngine
from .hooks import EngineHook
from .profiler import StepProfile, StepProfiler

__all__ = ["HogwildRun", "WorkerReport", "plan_shards", "run_hogwild"]

_LOGGER = get_logger("engine.hogwild")

#: steps a traced worker runs before the measured tracemalloc window opens
#: (lets caches, list over-allocation and tracemalloc's own tables settle)
_TRACE_WARMUP_STEPS = 8


def plan_shards(total_steps: int, workers: int) -> list[int]:
    """Split ``total_steps`` into at most ``workers`` balanced shard sizes.

    Earlier shards absorb the remainder; no shard is ever empty (a worker
    must run at least one step), so fewer than ``workers`` shards come back
    when there are fewer steps than workers.
    """
    total_steps = int(total_steps)
    workers = int(workers)
    if total_steps < 1:
        raise TrainingError(f"total_steps must be positive, got {total_steps}")
    if workers < 1:
        raise TrainingError(f"workers must be >= 1, got {workers}")
    workers = min(workers, total_steps)
    base, extra = divmod(total_steps, workers)
    return [base + (1 if i < extra else 0) for i in range(workers)]


@dataclass
class WorkerReport:
    """What one shard reports back to the parent."""

    shard: int
    steps: int
    losses: list[float]
    profile: StepProfile
    #: tracemalloc growth in bytes over ``traced_steps`` steady-state steps
    #: (-1 when memory tracing was off)
    traced_bytes: int = -1
    traced_steps: int = 0
    pid: int = 0
    #: which incarnation of the shard produced this report (0 = never restarted)
    incarnation: int = 0
    #: steps this incarnation actually accumulated into the iterate average
    #: (< ``steps`` after a restart: checkpointed steps are counted in
    #: ``steps`` but their iterates died with the crashed incarnation)
    averaged_steps: int = 0


@dataclass
class HogwildRun:
    """Outcome of :func:`run_hogwild`: the merged result plus per-worker detail."""

    result: EngineResult
    reports: list[WorkerReport] = field(default_factory=list)
    #: conservative per-shard privacy charges, aligned with ``reports`` —
    #: equals ``shard_steps`` for a crash-free run, strictly larger when a
    #: shard crashed (every dead incarnation is charged its full remaining
    #: allotment; over-counting is privacy-safe, under-counting never is)
    charged_steps: list[int] = field(default_factory=list)
    #: worker restarts performed by the supervisor during this run
    restarts: int = 0

    @property
    def shard_steps(self) -> list[int]:
        """Steps actually recorded per shard (losses / epochs bookkeeping)."""
        return [report.steps for report in self.reports]

    @property
    def accountant_steps(self) -> list[int]:
        """What the privacy accountant must compose over: the charged counts."""
        if self.charged_steps:
            return list(self.charged_steps)
        return self.shard_steps


class _IterateSumHook(EngineHook):
    """Accumulate post-step iterates in float64, across *multiple* runs.

    Unlike :class:`~repro.engine.hooks.IterateAveragingHook` it neither
    resets on ``on_train_start`` (a traced worker runs the engine twice)
    nor replaces the result — the parent pools the raw sums from all
    workers and divides by the pooled step count once.
    """

    def __init__(self) -> None:
        self.sum_w_in: np.ndarray | None = None
        self.sum_w_out: np.ndarray | None = None
        self.steps = 0

    def after_step(self, engine: "TrainingEngine", epoch: int, loss: float) -> None:
        self.steps += 1
        if self.sum_w_in is None:
            self.sum_w_in = engine.model.w_in.astype(np.float64, copy=True)
            self.sum_w_out = engine.model.w_out.astype(np.float64, copy=True)
        else:
            self.sum_w_in += engine.model.w_in
            self.sum_w_out += engine.model.w_out


class _FaultHook(EngineHook):
    """Cross the ``hogwild.worker.step`` fault point before every step.

    Installed only when a :class:`~repro.robustness.faults.FaultPlan` is
    active (the profiler idiom: the default path carries no hook at all,
    so it stays bit-identical).  ``step`` is the shard-local global step
    index about to run — resume offsets included, so ``step=k`` means the
    same training position whether or not the shard was restarted.
    """

    def __init__(self, plan: FaultPlan, shard: int, incarnation: int, offset: int) -> None:
        self._plan = plan
        self._shard = shard
        self._incarnation = incarnation
        self._next_step = offset

    def before_step(self, engine: "TrainingEngine", epoch: int) -> bool:
        self._plan.hit(
            "hogwild.worker.step",
            shard=self._shard,
            step=self._next_step,
            incarnation=self._incarnation,
        )
        self._next_step += 1
        return True


class _CheckpointHook(EngineHook):
    """Atomically checkpoint the shard every ``every`` completed steps."""

    def __init__(
        self,
        store: CheckpointStore,
        task: "_ShardTask",
        rng: np.random.Generator,
        every: int,
    ) -> None:
        self._store = store
        self._shard = task.shard
        self._incarnation = task.incarnation
        self._base_steps = task.resume_at
        self._losses = list(task.base_losses)
        self._rng = rng
        self._every = every
        self._count = 0

    def after_step(self, engine: "TrainingEngine", epoch: int, loss: float) -> None:
        self._count += 1
        self._losses.append(float(loss))
        total = self._base_steps + self._count
        if total % self._every == 0:
            self._store.save(
                ShardCheckpoint(
                    shard=self._shard,
                    steps=total,
                    incarnation=self._incarnation,
                    rng_state=self._rng.bit_generator.state,
                    losses=self._losses,
                )
            )


def _release_blocks(
    blocks: tuple[_shm.SharedMemory, ...], owner_pid: int
) -> None:
    """Close (and, in the owning process, unlink) shared blocks.

    Unlink runs first and unconditionally: even if a lingering ndarray
    view keeps a mapping pinned (``close`` then raises ``BufferError``)
    the *name* is gone, so nothing leaks in ``/dev/shm`` — the memory is
    freed when the last view dies.  Shared between :meth:`destroy` and the
    ``weakref.finalize`` backstop so both exit paths behave identically.
    """
    unlink = os.getpid() == owner_pid
    for block in blocks:
        if unlink:
            try:
                block.unlink()
            except FileNotFoundError:
                pass
        try:
            block.close()
        except BufferError:  # pragma: no cover - views still exported
            pass


class _SharedAccumulator:
    """Two shared float64 blocks pooling the workers' iterate sums.

    Workers add their local sums under ``lock`` once at shard end (two
    adds per worker per run, not per step), the parent divides by the
    total accumulated step count.  The parent creates, owns and unlinks
    the blocks; a pid-guarded ``weakref.finalize`` backstop releases them
    at garbage collection if :meth:`destroy` was never reached.
    """

    def __init__(self, shape: tuple[int, int]) -> None:
        nbytes = int(np.prod(shape)) * np.dtype(np.float64).itemsize
        self._blocks = (
            _shm.SharedMemory(create=True, size=nbytes),
            _shm.SharedMemory(create=True, size=nbytes),
        )
        self.sum_w_in = np.ndarray(shape, dtype=np.float64, buffer=self._blocks[0].buf)
        self.sum_w_out = np.ndarray(shape, dtype=np.float64, buffer=self._blocks[1].buf)
        self.sum_w_in[:] = 0.0
        self.sum_w_out[:] = 0.0
        self._owner_pid = os.getpid()
        # backstop if run_hogwild never reaches its finally (or a caller
        # abandons the accumulator): unlink at GC so no segment can outlive
        # the parent.  Guarded by pid — forked children inherit the
        # finalizer registry but must never unlink the parent's blocks.
        self._finalizer = weakref.finalize(
            self, _release_blocks, self._blocks, self._owner_pid
        )

    def add(self, sum_w_in: np.ndarray, sum_w_out: np.ndarray) -> None:
        self.sum_w_in += sum_w_in
        self.sum_w_out += sum_w_out

    def destroy(self) -> None:
        """Drop the views, close the mappings and (in the owner) unlink."""
        self._finalizer.detach()
        self.sum_w_in = None  # type: ignore[assignment]
        self.sum_w_out = None  # type: ignore[assignment]
        _release_blocks(self._blocks, self._owner_pid)


def _seed_sequence(
    seed: int | np.random.SeedSequence | np.random.Generator | None,
) -> np.random.SeedSequence:
    """Normalise any accepted seed form into a spawnable ``SeedSequence``."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        # consume one draw so a trainer can thread its master generator in
        # without two fits sharing shard streams
        return np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    return np.random.SeedSequence(seed)


class _TraceMemoryHook(EngineHook):
    """Sample tracemalloc's current size at every step boundary.

    The reported growth is last-sample minus first-sample: it covers the
    steady-state step loop only, excluding both run-entry allocations and
    the engine's end-of-run result snapshot (two ``|V| x d`` copies — a
    constant handover cost, not per-step leak surface).
    """

    def __init__(self) -> None:
        self.first: int | None = None
        self.last: int | None = None
        self.samples = 0

    def after_step(self, engine: TrainingEngine, epoch: int, loss: float) -> None:
        current = tracemalloc.get_traced_memory()[0]
        if self.first is None:
            self.first = current
        self.last = current
        self.samples += 1


@dataclass
class _ShardTask:
    """Everything one worker incarnation needs to run (picklable)."""

    shard: int
    #: the shard's *total* step target across all incarnations
    target: int
    #: steps a previous incarnation already completed (checkpoint floor)
    resume_at: int = 0
    incarnation: int = 0
    #: checkpointed ``bit_generator.state`` to continue from (None = seed)
    rng_state: dict[str, Any] | None = None
    #: cumulative loss trace up to ``resume_at``
    base_losses: list[float] = field(default_factory=list)
    checkpoint_dir: str | None = None
    checkpoint_every: int = 0


def _run_shard(
    engine_factory: Callable[[np.random.Generator], TrainingEngine],
    seed: np.random.SeedSequence,
    task: _ShardTask,
    iterate_averaging: bool,
    trace_memory: bool,
) -> tuple[WorkerReport, _IterateSumHook | None]:
    """Run one shard incarnation in the current process; pool and inline share it."""
    if task.rng_state is not None:
        rng = np.random.default_rng()  # repro-lint: disable=RNG001 -- placeholder generator; the very next line overwrites its state with the checkpointed bit_generator state, which carries the original seeding
        rng.bit_generator.state = task.rng_state
    else:
        rng = np.random.default_rng(seed)
    engine = engine_factory(rng)
    profiler = StepProfiler()
    averager = _IterateSumHook() if iterate_averaging else None
    extra_hooks: list[EngineHook] = [profiler]
    if averager is not None:
        extra_hooks.append(averager)
    plan = get_active_plan()
    if plan is not None:  # the single opt-in branch; no hook on the default path
        extra_hooks.append(_FaultHook(plan, task.shard, task.incarnation, task.resume_at))
    if task.checkpoint_dir is not None and task.checkpoint_every > 0:
        extra_hooks.append(
            _CheckpointHook(
                CheckpointStore(task.checkpoint_dir), task, rng, task.checkpoint_every
            )
        )
    engine.hooks = tuple(engine.hooks) + tuple(extra_hooks)

    steps = task.target - task.resume_at
    losses: list[float] = []
    profiles: list[StepProfile] = []
    traced_bytes = -1
    traced_steps = 0
    measured = steps
    tracer: _TraceMemoryHook | None = None
    if trace_memory and steps > _TRACE_WARMUP_STEPS:
        result = engine.run(_TRACE_WARMUP_STEPS)
        losses.extend(result.losses)
        profiles.append(profiler.last_profile)
        measured = steps - _TRACE_WARMUP_STEPS
        tracer = _TraceMemoryHook()
        engine.hooks = tuple(engine.hooks) + (tracer,)
        tracemalloc.start()
    result = engine.run(measured)
    if tracer is not None:
        tracemalloc.stop()
        if tracer.samples > 1:
            traced_bytes = tracer.last - tracer.first
            traced_steps = tracer.samples - 1
    losses.extend(result.losses)
    profiles.append(profiler.last_profile)
    profile = StepProfile.merge([p for p in profiles if p is not None])
    profile.workers = 1  # a traced shard merges its own warmup+measured runs
    report = WorkerReport(
        shard=task.shard,
        steps=task.resume_at + len(losses),
        losses=list(task.base_losses) + losses,
        profile=profile,
        traced_bytes=traced_bytes,
        traced_steps=traced_steps,
        pid=os.getpid(),
        incarnation=task.incarnation,
        averaged_steps=averager.steps if averager is not None else 0,
    )
    return report, averager


def _worker_entry(
    engine_factory,
    seed,
    task,
    iterate_averaging,
    trace_memory,
    accumulator,
    lock,
    conn,
) -> None:
    """Forked worker body: run the shard, pool iterate sums, report back."""
    try:
        report, averager = _run_shard(
            engine_factory, seed, task, iterate_averaging, trace_memory
        )
        if averager is not None and averager.steps > 0:
            with lock:
                accumulator.add(averager.sum_w_in, averager.sum_w_out)
        conn.send(("ok", report))
    except BaseException as exc:  # forwarded to the parent, then re-raised
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - parent already gone
            pass
        raise
    finally:
        conn.close()


def _interleave_losses(per_shard: Sequence[Sequence[float]]) -> list[float]:
    """Round-robin merge of the shard loss traces.

    Shards progress concurrently, so interleaving step ``j`` of every
    shard approximates the chronological loss curve of the combined run
    far better than concatenation would.
    """
    merged: list[float] = []
    for j in range(max((len(tr) for tr in per_shard), default=0)):
        for trace in per_shard:
            if j < len(trace):
                merged.append(trace[j])
    return merged


class _ShardState:
    """Supervisor-side lifecycle of one shard across incarnations."""

    def __init__(
        self,
        shard: int,
        target: int,
        seed: np.random.SeedSequence,
        max_restarts: int,
        backoff: float,
    ) -> None:
        self.shard = shard
        self.target = target
        self.seed = seed
        self.resume_at = 0
        self.incarnation = 0
        self.rng_state: dict[str, Any] | None = None
        self.base_losses: list[float] = []
        self.charged = 0
        self.restarts_left = max_restarts
        self.backoff = backoff
        self.process = None
        self.conn = None
        self.launch_resume = 0
        self.started_at = 0.0
        self.restart_at = 0.0
        self.report: WorkerReport | None = None
        self.failure: str | None = None


def _merge_run(
    model,
    reports: list[WorkerReport],
    accumulator: "_SharedAccumulator | None",
    iterate_averaging: bool,
    charged: list[int],
    restarts: int,
) -> HogwildRun:
    """Fold worker reports + the shared pages into one :class:`HogwildRun`."""
    total_run = sum(report.steps for report in reports)
    averaged = sum(report.averaged_steps for report in reports)
    if iterate_averaging and accumulator is not None and averaged > 0:
        embeddings = (accumulator.sum_w_in / averaged).astype(
            model.w_in.dtype, copy=False
        )
        context = (accumulator.sum_w_out / averaged).astype(
            model.w_out.dtype, copy=False
        )
    else:
        embeddings, context = model.embeddings(), model.w_out.copy()
    result = EngineResult(
        embeddings=embeddings,
        context_embeddings=context,
        losses=_interleave_losses([report.losses for report in reports]),
        epochs_run=total_run,
        profile=StepProfile.merge([report.profile for report in reports]),
    )
    return HogwildRun(
        result=result, reports=reports, charged_steps=charged, restarts=restarts
    )


def run_hogwild(
    *,
    model,
    engine_factory: Callable[[np.random.Generator], TrainingEngine],
    total_steps: int,
    workers: int,
    seed: int | np.random.SeedSequence | np.random.Generator | None = None,
    iterate_averaging: bool = False,
    trace_memory: bool = False,
    supervision: SupervisorPolicy | None = None,
) -> HogwildRun:
    """Run ``total_steps`` engine steps sharded over forked hogwild workers.

    Parameters
    ----------
    model:
        The shared-memory backed model every worker's engine updates in
        place.  Its ``w_in`` must be fork-shared (not merely copy-on-write)
        or the workers' updates would never reach the parent.
    engine_factory:
        Callable building a fresh :class:`TrainingEngine` over ``model``
        from a worker-private generator.  It runs *inside* the forked
        worker, so it may close over arbitrarily large parent state
        (subgraph pools, objectives) at zero copy cost.
    total_steps:
        Combined number of steps across all shards.  The privacy-relevant
        count is the run's :attr:`HogwildRun.accountant_steps` — equal to
        the per-shard step counts for a crash-free run, conservatively
        larger when the supervisor had to restart shards.
    workers:
        Requested pool size; degraded to serial-in-process with a warning
        when ``fork`` is unavailable.
    seed:
        Root of the per-shard streams (``SeedSequence.spawn`` children).
    iterate_averaging:
        Pool Polyak–Ruppert iterate sums across the workers and publish
        the global average instead of the final iterates.
    trace_memory:
        Have every worker measure its steady-state allocation growth with
        ``tracemalloc`` (reported per worker, not enabled in the parent).
    supervision:
        ``None`` (default) keeps the historical all-or-nothing semantics:
        any worker failure raises a :class:`TrainingError` once every
        shard has been collected.  A
        :class:`~repro.robustness.checkpoint.SupervisorPolicy` turns on
        crash supervision: periodic per-shard checkpoints, restart with
        exponential backoff up to ``max_restarts`` per shard, stall
        detection via ``worker_timeout``, and a degradation to
        :class:`~repro.exceptions.HogwildDegradedError` (carrying the
        conservative per-shard charges and the partial result) when a
        shard exhausts its restart budget.  Supervision applies to the
        forked pool only — the inline single-shard path cannot outlive
        its own crash.
    """
    if total_steps < 1:
        raise TrainingError(f"total_steps must be positive, got {total_steps}")
    released = getattr(model, "released", False)
    if released:
        raise TrainingError(
            "the shared model was already released; fit again to train more"
        )
    workers = _mp.resolve_fork_workers(int(workers), "hogwild training")
    shards = plan_shards(total_steps, max(1, workers))
    seeds = _seed_sequence(seed).spawn(len(shards))

    if len(shards) == 1:
        # fork unavailable or a single-step run: same machinery, no pool
        report, averager = _run_shard(
            engine_factory,
            seeds[0],
            _ShardTask(shard=0, target=shards[0]),
            iterate_averaging,
            trace_memory,
        )
        reports = [report]
        if averager is not None and averager.steps > 0:
            embeddings = (averager.sum_w_in / averager.steps).astype(
                model.w_in.dtype, copy=False
            )
            context = (averager.sum_w_out / averager.steps).astype(
                model.w_out.dtype, copy=False
            )
        else:
            embeddings, context = model.embeddings(), model.w_out.copy()
        return HogwildRun(
            result=EngineResult(
                embeddings=embeddings,
                context_embeddings=context,
                losses=list(report.losses),
                epochs_run=report.steps,
                profile=report.profile,
            ),
            reports=reports,
            charged_steps=[report.steps],
        )

    policy = supervision if supervision is not None else SupervisorPolicy(
        max_restarts=0, checkpoint_every=0, worker_timeout=None
    )
    ctx = get_context("fork")
    lock = ctx.Lock()
    accumulator = (
        _SharedAccumulator(model.w_in.shape) if iterate_averaging else None
    )
    states = [
        _ShardState(shard, steps, shard_seed, policy.max_restarts, policy.backoff_base)
        for shard, (steps, shard_seed) in enumerate(zip(shards, seeds, strict=True))
    ]
    store: CheckpointStore | None = None
    temp_ckpt_dir: str | None = None
    if supervision is not None and policy.checkpoint_every > 0:
        if policy.checkpoint_dir is None:
            temp_ckpt_dir = tempfile.mkdtemp(prefix="repro_ckpt_")
            store = CheckpointStore(temp_ckpt_dir)
        else:
            store = CheckpointStore(policy.checkpoint_dir)
        # checkpoints are intra-run recovery only: stale files from an
        # earlier run must never be mistaken for this run's progress
        store.clear()
    restarts_total = 0

    def _launch(state: _ShardState) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        task = _ShardTask(
            shard=state.shard,
            target=state.target,
            resume_at=state.resume_at,
            incarnation=state.incarnation,
            rng_state=state.rng_state,
            base_losses=state.base_losses,
            checkpoint_dir=str(store.directory) if store is not None else None,
            checkpoint_every=policy.checkpoint_every if store is not None else 0,
        )
        # restarts draw a fresh spawned stream unless a checkpointed
        # bit_generator state pins the continuation exactly
        launch_seed = state.seed if state.incarnation == 0 else state.seed.spawn(1)[0]
        process = ctx.Process(
            target=_worker_entry,
            args=(
                engine_factory,
                launch_seed,
                task,
                iterate_averaging,
                trace_memory,
                accumulator,
                lock,
                child_conn,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        state.process = process
        state.conn = parent_conn
        state.launch_resume = state.resume_at
        state.started_at = time.monotonic()

    def _on_failure(state: _ShardState, message: str, now: float) -> None:
        nonlocal restarts_total
        # conservative charge: the dead incarnation may have run any number
        # of steps up to its full remaining allotment — charge all of it
        state.charged += state.target - state.launch_resume
        if store is not None:
            checkpoint = store.load(state.shard)
            if (
                checkpoint is not None
                and checkpoint.shard == state.shard
                and state.resume_at < checkpoint.steps <= state.target
            ):
                state.resume_at = checkpoint.steps
                state.rng_state = checkpoint.rng_state
                state.base_losses = list(checkpoint.losses)
        if state.restarts_left <= 0:
            state.failure = message
            _LOGGER.warning(
                "hogwild shard %d lost (%s); restart budget exhausted",
                state.shard,
                message,
            )
            return
        state.restarts_left -= 1
        restarts_total += 1
        state.incarnation += 1
        if state.resume_at >= state.target:
            # the last checkpoint already covers the full target: nothing
            # left to run, synthesize the completed report from it
            state.report = WorkerReport(
                shard=state.shard,
                steps=state.target,
                losses=list(state.base_losses),
                profile=StepProfile(),
                incarnation=state.incarnation,
            )
            return
        state.restart_at = now + state.backoff
        state.backoff = min(max(state.backoff, policy.backoff_base) * 2, policy.backoff_max)
        _LOGGER.warning(
            "hogwild shard %d failed (%s); restarting incarnation %d from step %d",
            state.shard,
            message,
            state.incarnation,
            state.resume_at,
        )
        scheduled.append(state)

    live: dict[Any, _ShardState] = {}
    scheduled: list[_ShardState] = []
    try:
        for state in states:
            _launch(state)
            live[state.conn] = state

        while live or scheduled:
            now = time.monotonic()
            for state in [s for s in scheduled if s.restart_at <= now]:
                scheduled.remove(state)
                _launch(state)
                live[state.conn] = state
            if not live:
                next_start = min(state.restart_at for state in scheduled)
                time.sleep(max(0.0, next_start - time.monotonic()))
                continue
            timeout: float | None = None
            if scheduled:
                timeout = max(0.0, min(s.restart_at for s in scheduled) - now)
            if policy.worker_timeout is not None:
                stall_deadline = min(
                    state.started_at + policy.worker_timeout
                    for state in live.values()
                )
                stall_wait = max(0.0, stall_deadline - now)
                timeout = stall_wait if timeout is None else min(timeout, stall_wait)
            ready = _conn_wait(list(live), timeout=timeout)
            now = time.monotonic()
            for conn in ready:
                state = live.pop(conn)
                try:
                    status, payload = conn.recv()
                except (EOFError, OSError):
                    status, payload = "died", None
                conn.close()
                state.process.join()
                if status == "ok":
                    state.report = payload
                    state.charged += int(payload.steps) - state.launch_resume
                elif status == "error":
                    _on_failure(state, str(payload), now)
                else:
                    _on_failure(
                        state,
                        f"worker pid={state.process.pid} died with exit code "
                        f"{state.process.exitcode}",
                        now,
                    )
            if policy.worker_timeout is not None:
                for conn, state in list(live.items()):
                    if now - state.started_at > policy.worker_timeout:
                        live.pop(conn)
                        state.process.terminate()
                        state.process.join()
                        conn.close()
                        _on_failure(
                            state,
                            f"worker pid={state.process.pid} stalled past "
                            f"worker_timeout={policy.worker_timeout}s and was killed",
                            now,
                        )

        lost = sorted(
            (state for state in states if state.failure is not None),
            key=lambda state: state.shard,
        )
        done = sorted(
            (state for state in states if state.report is not None),
            key=lambda state: state.shard,
        )
        charged = [state.charged for state in sorted(states, key=lambda s: s.shard)]
        reports = [state.report for state in done]
        if lost:
            recovered_ids = [state.shard for state in done]
            lost_ids = [state.shard for state in lost]
            partial = (
                _merge_run(
                    model, reports, accumulator, iterate_averaging,
                    charged, restarts_total,
                )
                if reports
                else None
            )
            detail = "; ".join(
                f"shard {state.shard}: {state.failure}" for state in lost
            )
            raise HogwildDegradedError(
                f"hogwild worker failure — {detail} "
                f"(recovered shards: {recovered_ids or 'none'}, "
                f"lost shards: {lost_ids}, restarts: {restarts_total})",
                charged_steps=charged,
                recovered_shards=recovered_ids,
                lost_shards=lost_ids,
                partial=partial,
            )

        run = _merge_run(
            model, reports, accumulator, iterate_averaging, charged, restarts_total
        )
        _LOGGER.debug(
            "hogwild run: %d steps over %d workers, %d restarts (%s)",
            run.result.epochs_run,
            len(reports),
            restarts_total,
            run.result.profile,
        )
        return run
    finally:
        for state in states:
            process = state.process
            if process is not None and process.is_alive():  # pragma: no cover
                process.terminate()
                process.join()
        if accumulator is not None:
            accumulator.destroy()
        if temp_ckpt_dir is not None:
            shutil.rmtree(temp_ckpt_dir, ignore_errors=True)
