"""Hook protocol for the training engine.

The seed trainers interleaved their extra behaviours (loss logging, RDP
accounting with early stop, Polyak–Ruppert iterate averaging) directly into
two divergent copies of the epoch loop.  The engine runs ONE loop and gives
every behaviour a hook:

* :meth:`EngineHook.before_step` — runs before the batch is sampled; return
  ``False`` to stop training (this is how the privacy budget gates Algorithm
  2, lines 8–10, *before* any more randomness is consumed).
* :meth:`EngineHook.after_step` — runs after the parameter update of each
  step (accountant bookkeeping, iterate accumulation, logging).
* :meth:`EngineHook.on_train_end` — may replace the published result
  (iterate averaging swaps in the averaged matrices; averaging is
  post-processing of the noised updates, so it is privacy-free).
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING

import numpy as np

from ..utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import EngineResult, TrainingEngine

__all__ = [
    "EngineHook",
    "LossLoggingHook",
    "RdpAccountingHook",
    "IterateAveragingHook",
]

_LOGGER = get_logger("engine.hooks")


class EngineHook:
    """Base class: every method is a no-op, subclasses override what they need."""

    def on_train_start(self, engine: "TrainingEngine") -> None:
        """Called once before the first step of a :meth:`TrainingEngine.run`."""

    def before_step(self, engine: "TrainingEngine", epoch: int) -> bool:
        """Called before each step; return ``False`` to stop training early."""
        return True

    def after_step(self, engine: "TrainingEngine", epoch: int, loss: float) -> None:
        """Called after the parameter update of each step."""

    def on_train_end(
        self, engine: "TrainingEngine", result: "EngineResult"
    ) -> "EngineResult":
        """Called once after the loop; may return a modified result."""
        return result


class LossLoggingHook(EngineHook):
    """Debug-log the loss roughly ten times over the course of a run."""

    def __init__(self, logger: logging.Logger | None = None, label: str = "train") -> None:
        self._logger = logger if logger is not None else _LOGGER
        self.label = label

    def after_step(self, engine: "TrainingEngine", epoch: int, loss: float) -> None:
        total = engine.total_epochs
        if (epoch + 1) % max(1, total // 10) == 0:
            self._logger.debug("%s epoch %d/%d loss=%.5f", self.label, epoch + 1, total, loss)


class RdpAccountingHook(EngineHook):
    """Algorithm 2's privacy gate: stop before the (ε, δ) budget is exceeded.

    ``before_step`` runs *before* the engine samples a batch, so a stopped
    run consumes exactly the same RNG stream as the seed trainer, which also
    checked the budget first.
    """

    def __init__(self, accountant, epsilon: float, delta: float) -> None:
        self.accountant = accountant
        self.epsilon = float(epsilon)
        self.delta = float(delta)

    def before_step(self, engine: "TrainingEngine", epoch: int) -> bool:
        if self.accountant.would_exceed(self.epsilon, self.delta):
            _LOGGER.debug(
                "stopping at epoch %d: privacy budget ε=%.3f would be exceeded",
                epoch,
                self.epsilon,
            )
            return False
        return True

    def after_step(self, engine: "TrainingEngine", epoch: int, loss: float) -> None:
        self.accountant.step()


class IterateAveragingHook(EngineHook):
    """Polyak–Ruppert output averaging over all completed steps.

    Post-processing of the noised iterates (Theorem 2): publishing the mean
    of the ``W`` iterates costs no additional privacy and damps the noise
    accumulated by later private steps.
    """

    def __init__(self) -> None:
        self._sum_w_in: np.ndarray | None = None
        self._sum_w_out: np.ndarray | None = None
        self._steps = 0

    def on_train_start(self, engine: "TrainingEngine") -> None:
        self._sum_w_in = None
        self._sum_w_out = None
        self._steps = 0

    def after_step(self, engine: "TrainingEngine", epoch: int, loss: float) -> None:
        self._steps += 1
        if self._sum_w_in is None:
            self._sum_w_in = engine.model.w_in.copy()
            self._sum_w_out = engine.model.w_out.copy()
        else:
            self._sum_w_in += engine.model.w_in
            self._sum_w_out += engine.model.w_out

    def on_train_end(
        self, engine: "TrainingEngine", result: "EngineResult"
    ) -> "EngineResult":
        if self._steps == 0 or self._sum_w_in is None or self._sum_w_out is None:
            return result
        from dataclasses import replace

        return replace(
            result,
            embeddings=self._sum_w_in / self._steps,
            context_embeddings=self._sum_w_out / self._steps,
        )
