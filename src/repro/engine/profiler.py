"""Step-phase wall-time profiling for the training engine.

A training step has four phases — ``sample`` (draw the batch), ``gradients``
(Eq. 7/8 batch gradients), ``perturb`` (clip → aggregate → noise; private
update rule only) and ``descend`` (parameter scatter updates).  The
:class:`StepProfiler` hook times each phase with ``time.perf_counter`` and
publishes the totals as a :class:`StepProfile` on
:attr:`~repro.engine.core.EngineResult.profile`, so benchmarks (and curious
users) can see *where* a step spends its time instead of just how long it
takes::

    profiler = StepProfiler()
    engine = TrainingEngine(..., hooks=(profiler,))
    result = engine.run(200)
    result.profile.mean_seconds("gradients")

Profiling is strictly opt-in: without the hook the engine takes a single
``is None`` branch per step and never calls the clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import TYPE_CHECKING

from .hooks import EngineHook

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import EngineResult, TrainingEngine

__all__ = ["StepProfile", "StepProfiler"]

#: canonical phase order used by reports
PHASES = ("sample", "gradients", "perturb", "descend")


@dataclass
class StepProfile:
    """Accumulated per-phase wall time of one engine run.

    ``phase_seconds`` maps phase name to total seconds across all steps;
    phases that never ran (e.g. ``perturb`` for the non-private rule) are
    absent.  ``steps`` is the number of completed steps.
    """

    phase_seconds: dict[str, float] = field(default_factory=dict)
    steps: int = 0
    #: number of concurrent profiles merged into this one (1 = a single run)
    workers: int = 1

    @classmethod
    def merge(cls, profiles: "Sequence[StepProfile]") -> "StepProfile":
        """Aggregate per-worker profiles into one run-level profile.

        Phase seconds and step counts sum (total CPU-time spent per phase
        across the pool); ``workers`` sums the contributing worker counts,
        so ``total_seconds / workers`` approximates the wall time of the
        parallel run and per-step means stay comparable to a serial
        profile.  Merging nothing yields an empty profile.
        """
        merged_seconds: dict[str, float] = {}
        merged_steps = 0
        merged_workers = 0
        for profile in profiles:
            for phase, seconds in profile.phase_seconds.items():
                merged_seconds[phase] = merged_seconds.get(phase, 0.0) + seconds
            merged_steps += profile.steps
            merged_workers += profile.workers
        return cls(
            phase_seconds=merged_seconds,
            steps=merged_steps,
            workers=max(1, merged_workers),
        )

    @property
    def total_seconds(self) -> float:
        """Sum of all recorded phase times."""
        return float(sum(self.phase_seconds.values()))

    def mean_seconds(self, phase: str) -> float:
        """Mean seconds per step spent in ``phase`` (0.0 if it never ran)."""
        if self.steps == 0:
            return 0.0
        return self.phase_seconds.get(phase, 0.0) / self.steps

    def to_dict(self) -> dict:
        """JSON-able summary (used by the benchmark artifacts)."""
        ordered = {
            phase: self.phase_seconds[phase]
            for phase in PHASES
            if phase in self.phase_seconds
        }
        ordered.update(
            {
                phase: seconds
                for phase, seconds in self.phase_seconds.items()
                if phase not in PHASES
            }
        )
        return {
            "steps": self.steps,
            "workers": self.workers,
            "total_seconds": self.total_seconds,
            "phase_seconds": ordered,
            "phase_mean_seconds": {
                phase: (seconds / self.steps if self.steps else 0.0)
                for phase, seconds in ordered.items()
            },
        }

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{phase}={self.mean_seconds(phase) * 1e3:.3f}ms"
            for phase in PHASES
            if phase in self.phase_seconds
        )
        return f"StepProfile(steps={self.steps}, {parts})"


class StepProfiler(EngineHook):
    """Engine hook recording per-phase wall time of every step.

    ``on_train_start`` attaches the profiler to the engine (the engine and
    the update rule call :meth:`record` around their phases);
    ``on_train_end`` detaches it and publishes the accumulated
    :class:`StepProfile` on the result.  The profiler resets at the start
    of each run, so one hook instance can profile several runs in sequence
    — read :attr:`last_profile` (or the result) between runs.
    """

    def __init__(self) -> None:
        self._phase_seconds: dict[str, float] = {}
        self._steps = 0
        #: profile of the most recently completed run
        self.last_profile: StepProfile | None = None

    # ------------------------------------------------------------------ #
    def record(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall time into ``phase``."""
        self._phase_seconds[phase] = self._phase_seconds.get(phase, 0.0) + seconds

    def profile(self) -> StepProfile:
        """Snapshot the accumulated totals as a :class:`StepProfile`."""
        return StepProfile(phase_seconds=dict(self._phase_seconds), steps=self._steps)

    # ------------------------------------------------------------------ #
    def on_train_start(self, engine: "TrainingEngine") -> None:
        self._phase_seconds = {}
        self._steps = 0
        engine.profiler = self

    def after_step(self, engine: "TrainingEngine", epoch: int, loss: float) -> None:
        self._steps += 1

    def on_train_end(
        self, engine: "TrainingEngine", result: "EngineResult"
    ) -> "EngineResult":
        from dataclasses import replace

        engine.profiler = None
        self.last_profile = self.profile()
        return replace(result, profile=self.last_profile)
