"""Parameter-update rules: how a batch of gradients hits the model.

The two trainers differ in exactly one place of the loop — what happens
between "gradients computed" and "parameters changed":

* SE-GEmb applies the exact gradients as sparse scatter updates
  (:class:`DirectSparseUpdate`);
* SE-PrivGEmb clips per example, aggregates, perturbs (Eq. 6 or Eq. 9) and
  descends on the noised average (:class:`PerturbedUpdate`), sparsely when
  the strategy reports only touched rows (non-zero Eq. 9) and densely
  otherwise (naive Eq. 6).

Factoring this into a strategy lets :class:`~repro.engine.core.
TrainingEngine` run one loop for both.

The engine threads two optional collaborators onto every rule before a run:
``workspace`` (a :class:`~repro.engine.workspace.StepWorkspace`; rules then
descend through preallocated scratch instead of fresh arrays) and
``profiler`` (a :class:`~repro.engine.profiler.StepProfiler`; rules record
their ``perturb`` / ``descend`` phase times).  Both default to ``None`` and
cost a single attribute read per step when unused.
"""

from __future__ import annotations

import abc
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from ..analysis.markers import zero_alloc
from ..exceptions import TrainingError
from .workspace import WorkspacePerturbedGradients

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..embedding.optimizer import SGDOptimizer
    from ..embedding.perturbation import PerturbationStrategy
    from ..embedding.skipgram import SkipGramModel
    from .batch import BatchGradients, SubgraphBatch
    from .profiler import StepProfiler
    from .workspace import StepWorkspace

__all__ = ["UpdateRule", "DirectSparseUpdate", "PerturbedUpdate"]


class UpdateRule(abc.ABC):
    """Strategy interface: apply one batch of gradients to the model."""

    #: set by the engine before each run; ``None`` means the default path
    workspace: "StepWorkspace | None" = None
    #: set by the engine when a StepProfiler hook is active
    profiler: "StepProfiler | None" = None

    @abc.abstractmethod
    def apply(
        self,
        model: "SkipGramModel",
        optimizer: "SGDOptimizer",
        batch: "SubgraphBatch",
        gradients: "BatchGradients",
    ) -> None:
        """Update ``model`` in place from the batch gradients."""


class DirectSparseUpdate(UpdateRule):
    """Exact (un-clipped, un-noised) scatter update — the SE-GEmb rule.

    Each example contributes a full-strength update to the rows it touches;
    duplicate rows accumulate via ``np.subtract.at``, exactly matching the
    seed trainer's list-of-examples loop.
    """

    def apply(self, model, optimizer, batch, gradients) -> None:
        profiler = self.profiler
        start = perf_counter() if profiler is not None else 0.0
        ws = self.workspace
        if ws is not None and gradients is ws.gradients:
            # Aggregate duplicate rows through the segment scratch, then hit
            # each touched row once with fancy indexing: same accumulated
            # update as np.subtract.at (up to float summation order) at a
            # fraction of its per-element scatter cost, and allocation-free.
            updates = (
                (model.w_in, ws.center_scratch, ws.centers, ws.center_gradients),
                (model.w_out, ws.context_scratch, ws.contexts_flat,
                 ws.context_gradients_flat),
            )
            for parameters, scratch, rows, values in updates:
                unique = scratch.reduce(rows, values)
                sums = scratch.sums[:unique]
                optimizer.descend_unique_rows(
                    parameters, scratch.unique_rows[:unique], sums,
                    scratch=sums, gather=scratch.gather[:unique],
                )
        else:
            dim = model.embedding_dim
            optimizer.descend_rows(
                model.w_in, gradients.centers, gradients.center_gradients
            )
            optimizer.descend_rows(
                model.w_out,
                gradients.context_nodes.reshape(-1),
                gradients.context_gradients.reshape(-1, dim),
            )
        if profiler is not None:
            profiler.record("descend", perf_counter() - start)


class PerturbedUpdate(UpdateRule):
    """Clip → aggregate → perturb → average → descend — the SE-PrivGEmb rule.

    Parameters
    ----------
    perturbation:
        A :class:`~repro.embedding.perturbation.PerturbationStrategy`
        (non-zero Eq. 9 or naive Eq. 6).
    gradient_normalization:
        ``"per_row"`` divides each noisy row by the number of examples that
        touched it; ``"batch"`` divides by ``B`` (the literal Eq. 9).  Both
        are post-processing of the noised sum, hence privacy-free.
    """

    def __init__(
        self,
        perturbation: "PerturbationStrategy",
        gradient_normalization: str = "per_row",
    ) -> None:
        if gradient_normalization not in {"per_row", "batch"}:
            raise TrainingError(
                "gradient_normalization must be 'per_row' or 'batch', got "
                f"{gradient_normalization!r}"
            )
        self.perturbation = perturbation
        self.gradient_normalization = gradient_normalization

    def apply(self, model, optimizer, batch, gradients) -> None:
        profiler = self.profiler
        start = perf_counter() if profiler is not None else 0.0
        perturbed = self.perturbation.perturb_batch(
            gradients,
            num_nodes=model.num_nodes,
            embedding_dim=model.embedding_dim,
            workspace=self.workspace,
        )
        if profiler is not None:
            now = perf_counter()
            profiler.record("perturb", now - start)
            start = now
        if isinstance(perturbed, WorkspacePerturbedGradients):
            self._descend_workspace(model, optimizer, perturbed)
        elif hasattr(perturbed, "averaged_rows"):
            # Sparse result (non-zero Eq. 9): untouched rows are exactly
            # zero, so descending only on the touched rows matches the
            # dense update bit for bit without the |V| x r materialisation.
            # The touched rows are sorted-unique, so the fast unique-row
            # descent applies.
            rows_in, grads_in, rows_out, grads_out = perturbed.averaged_rows(
                self.gradient_normalization
            )
            optimizer.descend_unique_rows(model.w_in, rows_in, grads_in)
            optimizer.descend_unique_rows(model.w_out, rows_out, grads_out)
        else:
            if self.gradient_normalization == "batch":
                w_in_grad, w_out_grad = perturbed.averaged_by_batch()
            else:
                w_in_grad, w_out_grad = perturbed.averaged_by_row_counts()
            optimizer.descend(model.w_in, w_in_grad)
            optimizer.descend(model.w_out, w_out_grad)
        if profiler is not None:
            profiler.record("descend", perf_counter() - start)

    @zero_alloc
    def _descend_workspace(self, model, optimizer, perturbed) -> None:
        """Normalise and descend entirely inside the workspace buffers.

        The sums are scaled in place (they are scratch views, rewritten
        next step), then each parameter matrix is updated through the
        gather → subtract → scatter-assign path of
        :meth:`SGDOptimizer.descend_unique_rows`.
        """
        ws = self.workspace
        batch_size = perturbed.batch_size
        updates = (
            (model.w_in, perturbed.w_in_rows, perturbed.w_in_sums,
             perturbed.w_in_counts, ws.center_scratch),
            (model.w_out, perturbed.w_out_rows, perturbed.w_out_sums,
             perturbed.w_out_counts, ws.context_scratch),
        )
        for parameters, rows, sums, counts, scratch in updates:
            if self.gradient_normalization == "batch":
                np.divide(sums, batch_size, out=sums)
            else:
                # every reported row was touched by >= 1 example, so the
                # max(counts, 1) guard of the dense path is vacuous here
                np.divide(sums, counts[:, None], out=sums)
            optimizer.descend_unique_rows(
                parameters, rows, sums,
                scratch=sums, gather=scratch.gather[: rows.shape[0]],
            )
