"""Parameter-update rules: how a batch of gradients hits the model.

The two trainers differ in exactly one place of the loop — what happens
between "gradients computed" and "parameters changed":

* SE-GEmb applies the exact gradients as sparse scatter updates
  (:class:`DirectSparseUpdate`);
* SE-PrivGEmb clips per example, aggregates, perturbs (Eq. 6 or Eq. 9) and
  descends on the noised average (:class:`PerturbedUpdate`), sparsely when
  the strategy reports only touched rows (non-zero Eq. 9) and densely
  otherwise (naive Eq. 6).

Factoring this into a strategy lets :class:`~repro.engine.core.
TrainingEngine` run one loop for both.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from ..exceptions import TrainingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..embedding.optimizer import SGDOptimizer
    from ..embedding.perturbation import PerturbationStrategy
    from ..embedding.skipgram import SkipGramModel
    from .batch import BatchGradients, SubgraphBatch

__all__ = ["UpdateRule", "DirectSparseUpdate", "PerturbedUpdate"]


class UpdateRule(abc.ABC):
    """Strategy interface: apply one batch of gradients to the model."""

    @abc.abstractmethod
    def apply(
        self,
        model: "SkipGramModel",
        optimizer: "SGDOptimizer",
        batch: "SubgraphBatch",
        gradients: "BatchGradients",
    ) -> None:
        """Update ``model`` in place from the batch gradients."""


class DirectSparseUpdate(UpdateRule):
    """Exact (un-clipped, un-noised) scatter update — the SE-GEmb rule.

    Each example contributes a full-strength update to the rows it touches;
    duplicate rows accumulate via ``np.subtract.at``, exactly matching the
    seed trainer's list-of-examples loop.
    """

    def apply(self, model, optimizer, batch, gradients) -> None:
        dim = model.embedding_dim
        optimizer.descend_rows(model.w_in, gradients.centers, gradients.center_gradients)
        optimizer.descend_rows(
            model.w_out,
            gradients.context_nodes.reshape(-1),
            gradients.context_gradients.reshape(-1, dim),
        )


class PerturbedUpdate(UpdateRule):
    """Clip → aggregate → perturb → average → descend — the SE-PrivGEmb rule.

    Parameters
    ----------
    perturbation:
        A :class:`~repro.embedding.perturbation.PerturbationStrategy`
        (non-zero Eq. 9 or naive Eq. 6).
    gradient_normalization:
        ``"per_row"`` divides each noisy row by the number of examples that
        touched it; ``"batch"`` divides by ``B`` (the literal Eq. 9).  Both
        are post-processing of the noised sum, hence privacy-free.
    """

    def __init__(
        self,
        perturbation: "PerturbationStrategy",
        gradient_normalization: str = "per_row",
    ) -> None:
        if gradient_normalization not in {"per_row", "batch"}:
            raise TrainingError(
                "gradient_normalization must be 'per_row' or 'batch', got "
                f"{gradient_normalization!r}"
            )
        self.perturbation = perturbation
        self.gradient_normalization = gradient_normalization

    def apply(self, model, optimizer, batch, gradients) -> None:
        perturbed = self.perturbation.perturb_batch(
            gradients,
            num_nodes=model.num_nodes,
            embedding_dim=model.embedding_dim,
        )
        if hasattr(perturbed, "averaged_rows"):
            # Sparse result (non-zero Eq. 9): untouched rows are exactly
            # zero, so descending only on the touched rows matches the
            # dense update bit for bit without the |V| x r materialisation.
            # The touched rows are sorted-unique, so the fast unique-row
            # descent applies.
            rows_in, grads_in, rows_out, grads_out = perturbed.averaged_rows(
                self.gradient_normalization
            )
            optimizer.descend_unique_rows(model.w_in, rows_in, grads_in)
            optimizer.descend_unique_rows(model.w_out, rows_out, grads_out)
            return
        if self.gradient_normalization == "batch":
            w_in_grad, w_out_grad = perturbed.averaged_by_batch()
        else:
            w_in_grad, w_out_grad = perturbed.averaged_by_row_counts()
        optimizer.descend(model.w_in, w_in_grad)
        optimizer.descend(model.w_out, w_out_grad)
