"""Preallocated per-step workspaces: the zero-allocation training fast path.

Every engine step of the default path allocates roughly ten fresh arrays —
the batch gather, the ``[B, 1+k, r]`` context-vector block, einsum
temporaries, the outer-product gradient block, clipping quotients, Gaussian
noise matrices — so on large graphs step time is dominated by the allocator,
not FLOPs.  :class:`StepWorkspace` allocates each of those arrays exactly
once, and the fast path threads it through the whole step:

* ``SubgraphSampler.sample_batch_arrays(workspace=...)`` fills the batch
  buffers in place via ``np.take(..., out=..., mode="clip")``,
* ``StructurePreferenceObjective.batch_gradients(..., workspace=...)``
  computes scores, losses, errors and both gradient blocks with ``out=``
  ufuncs and einsums into the preallocated blocks,
* the update rules descend through scratch buffers
  (``SGDOptimizer.descend_rows(..., scratch=...)``), and
* :class:`~repro.embedding.perturbation.NonZeroPerturbation` runs its
  clip → aggregate → noise pipeline entirely inside the two
  :class:`_SegmentScratch` blocks, drawing Gaussians with
  ``standard_normal(out=...)`` into a reused buffer.

Steady-state steps therefore perform no array-sized heap allocations in the
gradient / perturb / descend phases (a tracemalloc test pins this); the only
remaining per-step allocations are O(bytes) Python object overhead (view
structs, the loss float).

The workspace is opt-in: engines built without one run the existing
float64 default path bit-for-bit unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import DTypeLike

from ..analysis.markers import zero_alloc
from ..exceptions import ConfigurationError
from .batch import BatchGradients, SubgraphBatch

__all__ = [
    "StepWorkspace",
    "WorkspacePerturbedGradients",
    "resolve_compute_dtype",
]

#: dtypes the compute fast path supports; accountant / sensitivity / noise
#: calibration always stay float64 regardless of this knob.
_COMPUTE_DTYPES = {"float32": np.float32, "float64": np.float64}


def resolve_compute_dtype(value: DTypeLike | None) -> np.dtype:
    """Normalise a ``compute_dtype`` knob value to a numpy dtype.

    Accepts the strings ``"float32"`` / ``"float64"``, the numpy scalar
    types, or ``np.dtype`` instances; anything else raises
    :class:`~repro.exceptions.ConfigurationError` listing the valid values.
    ``None`` is rejected too — ``np.dtype(None)`` would silently mean
    float64, hiding an unset value.
    """
    dtype = None
    if value is not None:
        try:
            dtype = np.dtype(value)
        except TypeError:
            dtype = None
    if dtype is None or dtype.name not in _COMPUTE_DTYPES:
        raise ConfigurationError(
            f"compute_dtype must be one of {sorted(_COMPUTE_DTYPES)}, got {value!r}"
        )
    return dtype


class _SegmentScratch:
    """Buffers to segment-reduce a fixed number of scatter slots in place.

    The scatter updates need, per step, the *unique* touched parameter rows
    together with their summed gradients and touch counts.  ``np.unique`` +
    ``np.bincount`` produce fresh arrays every call (and ``np.add.reduceat``
    / axis-0 ``cumsum`` turn out to be several ms for these shapes); this
    scratch gets the same result through in-place primitives only, and
    exploits that a training batch touches *mostly distinct* rows — the
    typical segment has length 1:

    1. pack ``row * slots + slot`` into one int64 key array and sort it in
       place (rows ascending, original slot as tiebreak),
    2. mark segment boundaries with an in-place ``np.not_equal`` and
       compress them into the bounds buffer (``np.compress(..., out=...)``),
    3. initialise each segment sum with its *first* slot's value block
       (one ``np.take(..., out=...)`` gather), then scatter-add only the
       duplicate slots — usually a small fraction — via ``np.add.at``.

    All outputs are views into buffers owned by this object; they are valid
    until the next :meth:`reduce` call.
    """

    def __init__(self, slots: int, dim: int, dtype: np.dtype) -> None:
        self.slots = int(slots)
        self.keys = np.empty(slots, dtype=np.int64)
        self.sorted_rows = np.empty(slots, dtype=np.int64)
        self.slot_of = np.empty(slots, dtype=np.int64)
        self.flags = np.empty(slots, dtype=bool)
        self.dup_flags = np.empty(slots, dtype=bool)
        self.bounds = np.empty(slots, dtype=np.int64)
        self.segment_ids = np.empty(slots, dtype=np.int64)
        self.index_scratch = np.empty(slots, dtype=np.int64)
        self.dup_positions = np.empty(slots, dtype=np.int64)
        self.dup_segments = np.empty(slots, dtype=np.int64)
        self.count_ints = np.empty(slots, dtype=np.int64)
        self.dup_values = np.empty((slots, dim), dtype=dtype)
        self.sums = np.empty((slots, dim), dtype=dtype)
        self.counts = np.empty(slots, dtype=dtype)
        self.unique_rows = np.empty(slots, dtype=np.int64)
        #: float64 regardless of the compute dtype — DP noise is calibrated
        #: and drawn in full precision, then added into the compute buffers.
        self.noise = np.empty((slots, dim), dtype=np.float64)
        #: compute-dtype staging for the noise: a cross-dtype ufunc would
        #: allocate casting buffers, np.copyto into this one does not
        self.noise_cast = (
            self.noise if dtype == np.dtype(np.float64)
            else np.empty((slots, dim), dtype=dtype)
        )
        self.gather = np.empty((slots, dim), dtype=dtype)
        self.arange = np.arange(slots, dtype=np.int64)

    @zero_alloc
    def reduce(self, rows: np.ndarray, values: np.ndarray) -> int:
        """Segment-sum ``values`` by ``rows``; return the unique-row count ``U``.

        After the call ``unique_rows[:U]`` holds the sorted unique rows,
        ``sums[:U]`` their summed value blocks and ``counts[:U]`` how many
        slots hit each row.  ``rows`` must hold exactly ``self.slots``
        non-negative entries.  Within a segment, slots accumulate in their
        original order — the same order as ``np.add.at`` over sorted rows.
        """
        slots = self.slots
        keys = self.keys
        np.multiply(rows, slots, out=keys)
        np.add(keys, self.arange, out=keys)
        keys.sort()
        np.floor_divide(keys, slots, out=self.sorted_rows)
        np.remainder(keys, slots, out=self.slot_of)
        flags = self.flags
        flags[0] = True
        np.not_equal(self.sorted_rows[1:], self.sorted_rows[:-1], out=flags[1:])
        unique = int(np.count_nonzero(flags))
        bounds = self.bounds
        np.compress(flags, self.arange, out=bounds[:unique])
        np.take(self.sorted_rows, bounds[:unique], out=self.unique_rows[:unique], mode="clip")

        # seed every segment with its first slot's value block ...
        first_slots = self.index_scratch
        np.take(self.slot_of, bounds[:unique], out=first_slots[:unique], mode="clip")
        np.take(values, first_slots[:unique], axis=0, out=self.sums[:unique], mode="clip")
        # ... then fold in only the duplicate slots (few, for real batches)
        duplicates = slots - unique
        if duplicates:
            np.cumsum(flags, out=self.segment_ids)
            np.subtract(self.segment_ids, 1, out=self.segment_ids)
            np.logical_not(flags, out=self.dup_flags)
            np.compress(self.dup_flags, self.arange, out=self.dup_positions[:duplicates])
            np.take(
                self.segment_ids, self.dup_positions[:duplicates],
                out=self.dup_segments[:duplicates], mode="clip",
            )
            np.take(
                self.slot_of, self.dup_positions[:duplicates],
                out=self.index_scratch[:duplicates], mode="clip",
            )
            np.take(
                values, self.index_scratch[:duplicates], axis=0,
                out=self.dup_values[:duplicates], mode="clip",
            )
            np.add.at(
                self.sums[:unique], self.dup_segments[:duplicates],
                self.dup_values[:duplicates],
            )

        ints = self.count_ints
        if unique > 1:
            np.subtract(bounds[1:unique], bounds[: unique - 1], out=ints[: unique - 1])
        ints[unique - 1] = slots - bounds[unique - 1]
        np.copyto(self.counts[:unique], ints[:unique], casting="unsafe")
        return unique


@dataclass
class WorkspacePerturbedGradients:
    """Per-step view of the noised compact gradients, reused every step.

    The fields are views into the owning workspace's scratch buffers —
    consumers (the :class:`~repro.engine.updates.PerturbedUpdate` fast
    branch) must finish with them before the next step overwrites them.
    """

    w_in_rows: np.ndarray | None = None
    w_in_sums: np.ndarray | None = None
    w_in_counts: np.ndarray | None = None
    w_out_rows: np.ndarray | None = None
    w_out_sums: np.ndarray | None = None
    w_out_counts: np.ndarray | None = None
    batch_size: int = 0
    mean_loss: float = 0.0


class StepWorkspace:
    """Every per-step array of the training fast path, allocated once.

    Parameters
    ----------
    batch_size:
        Examples per step ``B`` (the *effective* batch size — capped at the
        pool size by :class:`~repro.graph.sampling.SubgraphSampler`).
    num_negatives:
        Negative samples per example ``k``.
    embedding_dim:
        Embedding dimension ``r``.
    num_nodes:
        ``|V|`` of the training graph (bounds the scatter row indices).
    dtype:
        Compute dtype of every floating buffer (``"float32"`` or
        ``"float64"``).  Index buffers are always int64 and the DP noise
        buffers always float64.
    """

    def __init__(
        self,
        *,
        batch_size: int,
        num_negatives: int,
        embedding_dim: int,
        num_nodes: int,
        dtype: DTypeLike = np.float64,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if num_negatives < 1:
            raise ConfigurationError(f"num_negatives must be >= 1, got {num_negatives}")
        if embedding_dim < 1:
            raise ConfigurationError(f"embedding_dim must be >= 1, got {embedding_dim}")
        if num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
        self.batch_size = int(batch_size)
        self.num_negatives = int(num_negatives)
        self.embedding_dim = int(embedding_dim)
        self.num_nodes = int(num_nodes)
        self.dtype = resolve_compute_dtype(dtype)

        B = self.batch_size
        K = self.num_negatives + 1
        r = self.embedding_dim
        slots = B * K
        if self.num_nodes > (2**62) // max(slots, 1):
            raise ConfigurationError(
                "num_nodes * batch slots overflows the int64 segment keys"
            )

        # ---- the batch, as reusable buffers wrapped in one SubgraphBatch ----
        self.centers = np.zeros(B, dtype=np.int64)
        self.contexts = np.zeros((B, K), dtype=np.int64)
        self.weights = np.zeros(B, dtype=self.dtype)
        self.contexts_flat = self.contexts.reshape(-1)
        self.batch = SubgraphBatch(
            centers=self.centers, contexts=self.contexts, weights=self.weights
        )
        if self.batch.centers is not self.centers or self.batch.weights is not self.weights:
            raise ConfigurationError(
                "SubgraphBatch copied the workspace buffers; the in-place fast "
                "path requires buffer identity"
            )

        # ---- forward / gradient blocks ----
        self.center_vecs = np.empty((B, r), dtype=self.dtype)
        self.context_vecs = np.empty((B, K, r), dtype=self.dtype)
        self.context_vecs_flat = self.context_vecs.reshape(slots, r)
        self.scores = np.empty((B, K), dtype=self.dtype)
        self.errors = np.empty((B, K), dtype=self.dtype)
        self.losses = np.zeros(B, dtype=self.dtype)
        self.loss_scratch_a = np.empty((B, K), dtype=self.dtype)
        self.loss_scratch_b = np.empty((B, K), dtype=self.dtype)
        self.center_gradients = np.empty((B, r), dtype=self.dtype)
        self.context_gradients = np.empty((B, K, r), dtype=self.dtype)
        self.context_gradients_flat = self.context_gradients.reshape(slots, r)
        # broadcastable views built once so the hot loop never re-slices
        self.weights_col = self.weights[:, None]
        self.errors_col = self.errors[:, :, None]
        self.center_vecs_mid = self.center_vecs[:, None, :]
        self.gradients = BatchGradients(
            centers=self.centers,
            center_gradients=self.center_gradients,
            context_nodes=self.contexts,
            context_gradients=self.context_gradients,
            losses=self.losses,
        )

        # ---- clipping scratch ----
        self.example_norms = np.empty(B, dtype=self.dtype)
        self.example_norms_col = self.example_norms[:, None]
        self.example_norms_col3 = self.example_norms[:, None, None]

        # ---- compact scatter scratch (direct descents and non-zero Eq. 9) ----
        self.center_scratch = _SegmentScratch(B, r, self.dtype)
        self.context_scratch = _SegmentScratch(slots, r, self.dtype)
        self.perturb_result = WorkspacePerturbedGradients()

    # ------------------------------------------------------------------ #
    def matches(
        self,
        *,
        batch_size: int,
        num_negatives: int,
        embedding_dim: int,
        num_nodes: int,
        dtype: DTypeLike | None,
    ) -> bool:
        """Whether this workspace can serve a run with the given geometry."""
        return (
            self.batch_size == int(batch_size)
            and self.num_negatives == int(num_negatives)
            and self.embedding_dim == int(embedding_dim)
            and self.num_nodes == int(num_nodes)
            and self.dtype == resolve_compute_dtype(dtype)
        )

    def validate_model(self, model: object) -> None:
        """Check the model's matrices against the workspace geometry."""
        w_in = getattr(model, "w_in", None)
        if w_in is None:
            raise ConfigurationError("workspace requires a model with a w_in matrix")
        if w_in.dtype != self.dtype:
            raise ConfigurationError(
                f"model dtype {w_in.dtype} does not match workspace compute "
                f"dtype {self.dtype}; build the model with the same compute_dtype"
            )
        if w_in.shape != (self.num_nodes, self.embedding_dim):
            raise ConfigurationError(
                f"model shape {w_in.shape} does not match workspace geometry "
                f"({self.num_nodes}, {self.embedding_dim})"
            )

    def validate_batch(self, batch: SubgraphBatch) -> None:
        """Check an incoming batch against the preallocated buffer shapes."""
        if batch.contexts.shape != self.contexts.shape:
            raise ConfigurationError(
                f"batch shape {batch.contexts.shape} does not match workspace "
                f"buffers {self.contexts.shape}"
            )

    def __repr__(self) -> str:
        return (
            f"StepWorkspace(batch_size={self.batch_size}, "
            f"num_negatives={self.num_negatives}, "
            f"embedding_dim={self.embedding_dim}, num_nodes={self.num_nodes}, "
            f"dtype={self.dtype.name})"
        )
