"""Downstream evaluation tasks: structural equivalence and link prediction."""

from .metrics import pearson_correlation, roc_auc_score
from .splits import LinkPredictionSplit, make_link_prediction_split
from .structural_equivalence import structural_equivalence_score
from .link_prediction import link_prediction_auc, score_edges

__all__ = [
    "pearson_correlation",
    "roc_auc_score",
    "LinkPredictionSplit",
    "make_link_prediction_split",
    "structural_equivalence_score",
    "link_prediction_auc",
    "score_edges",
]
