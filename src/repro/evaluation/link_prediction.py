"""Link-prediction evaluation (AUC over held-out edges, Section VI-A).

The downstream scorer follows the standard unsupervised protocol for
embedding methods: a candidate pair ``(u, v)`` is scored by a similarity of
its two embedding vectors, and AUC is computed over the balanced test set of
held-out edges and sampled non-edges.  Three similarity functions are
provided; the default (dot product) matches what skip-gram optimises.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EvaluationError
from .metrics import roc_auc_score
from .splits import LinkPredictionSplit

__all__ = ["score_edges", "link_prediction_auc"]

_SCORERS = ("dot", "cosine", "negative_euclidean")


def score_edges(
    embeddings: np.ndarray,
    pairs: np.ndarray,
    scorer: str = "dot",
) -> np.ndarray:
    """Score candidate node pairs from their embedding vectors.

    Parameters
    ----------
    embeddings:
        ``|V| × r`` embedding matrix.
    pairs:
        ``(m, 2)`` array of node index pairs.
    scorer:
        ``"dot"`` (inner product), ``"cosine"`` or ``"negative_euclidean"``.
    """
    embeddings = np.asarray(embeddings, dtype=float)
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise EvaluationError(f"pairs must have shape (m, 2), got {pairs.shape}")
    if scorer not in _SCORERS:
        raise EvaluationError(f"unknown scorer {scorer!r}; available: {_SCORERS}")
    left = embeddings[pairs[:, 0]]
    right = embeddings[pairs[:, 1]]
    if scorer == "dot":
        return np.einsum("ij,ij->i", left, right)
    if scorer == "cosine":
        norms = np.linalg.norm(left, axis=1) * np.linalg.norm(right, axis=1)
        norms = np.maximum(norms, 1e-12)
        return np.einsum("ij,ij->i", left, right) / norms
    return -np.linalg.norm(left - right, axis=1)


def link_prediction_auc(
    embeddings: np.ndarray,
    split: LinkPredictionSplit,
    scorer: str = "dot",
) -> float:
    """AUC of the embedding on the held-out test pairs of a split."""
    labels, pairs = split.test_labels_and_pairs()
    scores = score_edges(embeddings, pairs, scorer=scorer)
    return roc_auc_score(labels, scores)
