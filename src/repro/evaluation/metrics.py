"""Evaluation metrics: Pearson correlation and ROC AUC.

Both are implemented directly (no sklearn dependency): Pearson as the
normalised covariance, AUC via the rank-sum (Mann–Whitney U) formulation
with proper tie handling.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..exceptions import EvaluationError

__all__ = ["pearson_correlation", "roc_auc_score"]


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient between two equal-length vectors.

    Returns 0.0 when either vector is constant (the correlation is undefined
    there; 0 is the conventional fallback for structural-equivalence scoring
    of degenerate embeddings).
    """
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.shape != y.shape:
        raise EvaluationError(f"length mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise EvaluationError("need at least two observations for a correlation")
    if np.std(x) == 0.0 or np.std(y) == 0.0:
        return 0.0
    xc = x - x.mean()
    yc = y - y.mean()
    denom = float(np.sqrt(np.sum(xc**2) * np.sum(yc**2)))
    if denom == 0.0:
        return 0.0
    return float(np.sum(xc * yc) / denom)


def roc_auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the Mann–Whitney U statistic.

    ``labels`` must contain both classes (0 and 1); ties in ``scores`` are
    handled through average ranks.
    """
    labels = np.asarray(labels, dtype=int).ravel()
    scores = np.asarray(scores, dtype=float).ravel()
    if labels.shape != scores.shape:
        raise EvaluationError(f"length mismatch: {labels.shape} vs {scores.shape}")
    positives = int(np.sum(labels == 1))
    negatives = int(np.sum(labels == 0))
    if positives == 0 or negatives == 0:
        raise EvaluationError("roc_auc_score needs both positive and negative labels")
    ranks = stats.rankdata(scores)
    rank_sum_positive = float(np.sum(ranks[labels == 1]))
    u_statistic = rank_sum_positive - positives * (positives + 1) / 2.0
    return float(u_statistic / (positives * negatives))
