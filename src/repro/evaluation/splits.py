"""Train/test splits for link prediction.

Following the paper (and Zhang & Chen 2018, which it cites): the observed
edges are split 90% / 10% into training and test positives; an equal number
of non-edges is sampled as negatives for each side.  The training graph is
the original graph with the test edges removed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..exceptions import EvaluationError
from ..graph import Graph
from ..utils.rng import ensure_rng

__all__ = ["LinkPredictionSplit", "make_link_prediction_split"]


@dataclass(frozen=True)
class LinkPredictionSplit:
    """All the pieces of one link-prediction experiment.

    Attributes
    ----------
    training_graph:
        The original graph with the test positives removed — the graph the
        embedding method is allowed to see.
    train_positive / train_negative:
        Edge / non-edge pairs available for fitting a downstream scorer.
    test_positive / test_negative:
        Held-out pairs on which AUC is measured.
    untrained_test_endpoints:
        Number of test-positive endpoints left with *zero* training edges
        by the split.  Such nodes never receive a gradient, so the scorer
        ranks their untrained initialisation noise — the paper's protocol
        implicitly assumes the training graph keeps every test endpoint
        connected.  A non-zero count is reported with a warning by
        :func:`make_link_prediction_split`.
    """

    training_graph: Graph
    train_positive: np.ndarray
    train_negative: np.ndarray
    test_positive: np.ndarray
    test_negative: np.ndarray
    untrained_test_endpoints: int = 0

    def test_labels_and_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(labels, pairs)`` for the test set (positives first)."""
        pairs = np.vstack([self.test_positive, self.test_negative])
        labels = np.concatenate(
            [
                np.ones(len(self.test_positive), dtype=int),
                np.zeros(len(self.test_negative), dtype=int),
            ]
        )
        return labels, pairs


def make_link_prediction_split(
    graph: Graph,
    test_fraction: float = 0.1,
    seed: int | np.random.Generator | None = None,
) -> LinkPredictionSplit:
    """Build the 90/10 link-prediction split with balanced negatives.

    Parameters
    ----------
    graph:
        The full observed graph.
    test_fraction:
        Fraction of edges held out as test positives (paper: 0.1).
    seed:
        Seed or generator for the edge shuffling and negative sampling.
    """
    if not 0 < test_fraction < 1:
        raise EvaluationError(f"test_fraction must be in (0, 1), got {test_fraction}")
    if graph.num_edges < 10:
        raise EvaluationError(
            f"graph {graph.name!r} has too few edges ({graph.num_edges}) to split"
        )
    rng = ensure_rng(seed)

    edges = graph.edges.copy()
    order = rng.permutation(len(edges))
    num_test = max(1, int(round(test_fraction * len(edges))))
    test_idx = order[:num_test]
    train_idx = order[num_test:]
    test_positive = edges[test_idx]
    train_positive = edges[train_idx]

    training_graph = graph.subgraph_without_edges(
        [(int(u), int(v)) for u, v in test_positive], name=f"{graph.name}-train"
    )

    test_negative = graph.non_edges_sample(len(test_positive), rng)
    train_negative = graph.non_edges_sample(
        len(train_positive), rng, exclude=[(int(u), int(v)) for u, v in test_negative]
    )

    training_degrees = training_graph.degrees()
    test_endpoints = np.unique(test_positive)
    untrained = int(np.count_nonzero(training_degrees[test_endpoints] == 0))
    if untrained:
        warnings.warn(
            f"link-prediction split of {graph.name!r} left {untrained} test-positive "
            "endpoint(s) with no training edges; their embeddings are untrained "
            "initialisation noise and will distort AUC (the paper's protocol "
            "assumes the training graph stays connected)",
            RuntimeWarning,
            stacklevel=2,
        )

    return LinkPredictionSplit(
        training_graph=training_graph,
        train_positive=train_positive,
        train_negative=train_negative,
        test_positive=test_positive,
        test_negative=test_negative,
        untrained_test_endpoints=untrained,
    )
