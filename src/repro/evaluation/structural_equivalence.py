"""Structural-equivalence evaluation (the StrucEqu metric of Section VI-A).

Two nodes are structurally equivalent when they share the same neighbours.
The paper quantifies how well an embedding recovers this notion by the
Pearson correlation, over node pairs, of

* ``dist(A_i, A_j)`` — Euclidean distance between the adjacency-matrix rows
  of the two nodes, and
* ``dist(Y_i, Y_j)`` — Euclidean distance between their embedding vectors:

``StrucEqu = pearson(dist(A_i, A_j), dist(Y_i, Y_j))``.

For large graphs evaluating every pair is quadratic; ``max_pairs`` caps the
number of (uniformly sampled) pairs, which leaves the estimate unbiased.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EvaluationError
from ..graph import Graph
from ..utils.math import pairwise_euclidean
from ..utils.rng import ensure_rng
from .metrics import pearson_correlation

__all__ = ["structural_equivalence_score"]


def structural_equivalence_score(
    graph: Graph,
    embeddings: np.ndarray,
    max_pairs: int | None = 200_000,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """Compute StrucEqu = Pearson(dist(A_i, A_j), dist(Y_i, Y_j)).

    Parameters
    ----------
    graph:
        The graph whose adjacency rows define ground-truth structural
        distance.
    embeddings:
        ``|V| × r`` embedding matrix.
    max_pairs:
        If the number of node pairs exceeds this cap, a uniform sample of
        pairs is used instead of all of them.  ``None`` disables sampling.
    seed:
        Seed for the pair sampling (only used when sampling kicks in).
    """
    embeddings = np.asarray(embeddings, dtype=float)
    if embeddings.ndim != 2 or embeddings.shape[0] != graph.num_nodes:
        raise EvaluationError(
            f"embeddings must have shape ({graph.num_nodes}, r), got {embeddings.shape}"
        )
    n = graph.num_nodes
    if n < 3:
        raise EvaluationError("structural equivalence needs at least 3 nodes")

    total_pairs = n * (n - 1) // 2
    adjacency = np.asarray(graph.adjacency_matrix(dense=True), dtype=float)

    if max_pairs is not None and total_pairs > max_pairs:
        rng = ensure_rng(seed)
        i = rng.integers(0, n, size=max_pairs)
        j = rng.integers(0, n, size=max_pairs)
        keep = i != j
        i, j = i[keep], j[keep]
        adjacency_dist = np.linalg.norm(adjacency[i] - adjacency[j], axis=1)
        embedding_dist = np.linalg.norm(embeddings[i] - embeddings[j], axis=1)
    else:
        iu, ju = np.triu_indices(n, k=1)
        adjacency_dist = pairwise_euclidean(adjacency)[iu, ju]
        embedding_dist = pairwise_euclidean(embeddings)[iu, ju]

    # Structural equivalence is recovered when *small* adjacency distance
    # corresponds to *small* embedding distance, i.e. a positive correlation
    # between the two distance vectors.
    return pearson_correlation(adjacency_dist, embedding_dist)
