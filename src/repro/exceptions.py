"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses exist for
the three broad areas where user input is validated: graph construction,
privacy accounting, and model training/configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation on it is invalid."""


class DatasetError(ReproError):
    """Raised when a named dataset cannot be built or loaded."""


class ProximityError(ReproError):
    """Raised when a proximity matrix cannot be computed or is invalid."""


class PrivacyError(ReproError):
    """Raised for invalid privacy parameters or exhausted budgets."""


class PrivacyBudgetExhausted(PrivacyError):
    """Raised when an operation would exceed the configured privacy budget."""


class ConfigurationError(ReproError):
    """Raised when a training or experiment configuration is invalid."""


class TrainingError(ReproError):
    """Raised when model training fails or is used incorrectly."""


class EvaluationError(ReproError):
    """Raised when an evaluation task receives inconsistent inputs."""


class OrchestrationError(ReproError):
    """Raised when an experiment sweep cannot be expanded or executed."""


class ArtifactError(ReproError):
    """Raised when a persisted model artifact is missing, foreign or corrupt."""
