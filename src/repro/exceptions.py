"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses exist for
the three broad areas where user input is validated: graph construction,
privacy accounting, and model training/configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised when a graph is malformed or an operation on it is invalid."""


class DatasetError(ReproError):
    """Raised when a named dataset cannot be built or loaded."""


class ProximityError(ReproError):
    """Raised when a proximity matrix cannot be computed or is invalid."""


class PrivacyError(ReproError):
    """Raised for invalid privacy parameters or exhausted budgets."""


class PrivacyBudgetExhausted(PrivacyError):
    """Raised when an operation would exceed the configured privacy budget."""


class ConfigurationError(ReproError):
    """Raised when a training or experiment configuration is invalid."""


class TrainingError(ReproError):
    """Raised when model training fails or is used incorrectly."""


class EvaluationError(ReproError):
    """Raised when an evaluation task receives inconsistent inputs."""


class OrchestrationError(ReproError):
    """Raised when an experiment sweep cannot be expanded or executed."""


class ArtifactError(ReproError):
    """Raised when a persisted model artifact is missing, foreign or corrupt."""


class ServingError(ReproError):
    """Base class for errors raised by the online serving layer."""


class ServerOverloadedError(ServingError):
    """Raised when the server's pending queue is full (fast-fail backpressure)."""


class CircuitOpenError(ServingError):
    """Raised when the serving circuit breaker is open and rejecting requests."""


class ServerClosedError(ServingError):
    """Raised to waiters abandoned because the server stopped before answering."""


class ServerTimeoutError(ServingError, TimeoutError):
    """Raised when a request misses its per-request deadline."""


class HogwildDegradedError(TrainingError):
    """Raised when supervised hogwild training loses a shard past its restart budget.

    Carries the partial outcome: ``charged_steps`` (conservative per-shard
    privacy charges — already including every crashed incarnation),
    ``recovered_shards`` / ``lost_shards``, and ``partial`` (a
    :class:`~repro.engine.hogwild.HogwildRun` over the surviving reports).
    """

    def __init__(
        self,
        message: str,
        *,
        charged_steps: "list[int] | None" = None,
        recovered_shards: "list[int] | None" = None,
        lost_shards: "list[int] | None" = None,
        partial: "object | None" = None,
    ) -> None:
        super().__init__(message)
        self.charged_steps = list(charged_steps or [])
        self.recovered_shards = list(recovered_shards or [])
        self.lost_shards = list(lost_shards or [])
        self.partial = partial


class LedgerTornError(PrivacyError):
    """Raised when a privacy ledger ends in a torn (partially written) record.

    The verified prefix of the chain is intact; reopen the ledger with
    ``repair=True`` to truncate the torn tail and continue from the prefix.
    """
