"""Experiment harness reproducing every table and figure of the paper.

Run sweeps from the command line with ``python -m repro.experiments`` —
e.g. ``python -m repro.experiments run --table 2 --workers 8 --store runs/``
executes the Table-II grid on eight worker processes and memoizes every
finished cell in ``runs/`` so a killed sweep resumes without recomputation.
"""

from .configs import ExperimentSettings, PAPER_EPSILONS, PAPER_METHODS
from .orchestrator import RunSpec, SweepReport, execute
from .results import ExperimentResult, ResultTable
from .runner import embed_with_method, evaluate_structural_equivalence, evaluate_link_prediction
from .store import RunStore
from .tables import (
    table_batch_size,
    table_learning_rate,
    table_clipping,
    table_negative_samples,
    table_perturbation,
)
from .figures import figure_structural_equivalence, figure_link_prediction
from .ablations import (
    ablation_iterate_averaging,
    ablation_gradient_normalization,
    ablation_negative_sampling,
)

__all__ = [
    "ablation_iterate_averaging",
    "ablation_gradient_normalization",
    "ablation_negative_sampling",
    "ExperimentSettings",
    "PAPER_EPSILONS",
    "PAPER_METHODS",
    "ExperimentResult",
    "ResultTable",
    "RunSpec",
    "RunStore",
    "SweepReport",
    "execute",
    "embed_with_method",
    "evaluate_structural_equivalence",
    "evaluate_link_prediction",
    "table_batch_size",
    "table_learning_rate",
    "table_clipping",
    "table_negative_samples",
    "table_perturbation",
    "figure_structural_equivalence",
    "figure_link_prediction",
]
