"""Command-line entry point for the experiment orchestrator.

Examples
--------
Run the Table-II sweep on 8 worker processes, memoizing cells in ``runs/``::

    python -m repro.experiments run --table 2 --workers 8 --store runs/

Re-running the same command after a kill resumes from the store (completed
cells are reported as ``reused`` and never recomputed).  Figures and
ablations work the same way::

    python -m repro.experiments run --figure 3 --smoke --workers 2
    python -m repro.experiments run --ablation negative_sampling --store runs/

``list`` prints the available sweeps and datasets.  Saved models are
inspected and queried without retraining (or loading their payload)::

    python -m repro.experiments inspect model.npz
    python -m repro.experiments query model.servable --nodes 3,17 --k 5
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

from ..exceptions import ConfigurationError
from ..graph import available_datasets
from ..models import available_methods, get_method
from .ablations import (
    ablation_gradient_normalization,
    ablation_iterate_averaging,
    ablation_negative_sampling,
)
from .configs import ExperimentSettings
from .figures import figure_link_prediction, figure_structural_equivalence
from .tables import (
    table_batch_size,
    table_clipping,
    table_learning_rate,
    table_negative_samples,
    table_perturbation,
)

#: table number -> (sweep function, name of its sweep-values kwarg, smoke values)
_TABLES: dict[int, tuple[Callable, str, tuple]] = {
    2: (table_batch_size, "batch_sizes", (32, 64)),
    3: (table_learning_rate, "learning_rates", (0.05, 0.1)),
    4: (table_clipping, "thresholds", (1.0, 2.0)),
    5: (table_negative_samples, "negative_samples", (3, 5)),
    6: (table_perturbation, "epsilons", (3.5,)),
}

_FIGURES: dict[int, Callable] = {
    3: figure_structural_equivalence,
    4: figure_link_prediction,
}

_ABLATIONS: dict[str, Callable] = {
    "iterate_averaging": ablation_iterate_averaging,
    "gradient_normalization": ablation_gradient_normalization,
    "negative_sampling": ablation_negative_sampling,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Parallel, resumable reproduction of the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute one table/figure/ablation sweep")
    what = run.add_mutually_exclusive_group(required=True)
    what.add_argument("--table", type=int, choices=sorted(_TABLES), help="paper table number")
    what.add_argument("--figure", type=int, choices=sorted(_FIGURES), help="paper figure number")
    what.add_argument("--ablation", choices=sorted(_ABLATIONS), help="ablation name")
    run.add_argument("--workers", type=int, default=1, help="worker processes (1 = serial)")
    run.add_argument(
        "--train-workers",
        type=int,
        default=1,
        help="hogwild workers per SE training run (1 = serial training)",
    )
    run.add_argument("--store", default=None, metavar="DIR", help="run store directory (resumable)")
    scale = run.add_mutually_exclusive_group()
    scale.add_argument(
        "--smoke", action="store_true", help="tiny smoke-test grid (seconds, not minutes)"
    )
    scale.add_argument(
        "--paper", action="store_true", help="full paper-scale grid (hours of compute)"
    )
    run.add_argument("--datasets", default=None, help="comma-separated dataset names")
    run.add_argument(
        "--methods",
        default=None,
        help="comma-separated method names for --figure sweeps "
        "(see `list` for the registry)",
    )
    run.add_argument("--repeats", type=int, default=None, help="repetitions per cell")
    run.add_argument("--seed", type=int, default=None, help="master seed")
    run.add_argument("--epochs", type=int, default=None, help="training epochs per run")
    run.add_argument(
        "--values",
        default=None,
        help="comma-separated sweep values for the chosen table (numbers)",
    )
    sub.add_parser("list", help="print available sweeps and datasets")

    inspect = sub.add_parser(
        "inspect",
        help="describe a saved model artifact or servable without loading its payload",
    )
    inspect.add_argument("path", help="a saved .npz artifact or a servable directory")

    query = sub.add_parser(
        "query", help="top-k nearest neighbours from a saved model, zero-copy"
    )
    query.add_argument("path", help="a saved .npz artifact or a servable directory")
    query.add_argument("--nodes", required=True, help="comma-separated query node ids")
    query.add_argument("--k", type=int, default=10, help="neighbours per node")
    query.add_argument(
        "--metric", choices=("cosine", "dot"), default="cosine", help="similarity"
    )

    delta = sub.add_parser(
        "delta",
        help="apply an edge delta to an edge-list graph (and plan invalidation)",
    )
    delta.add_argument("graph", help="edge-list file of the base graph")
    delta.add_argument("--num-nodes", type=int, default=None, help="base graph node count")
    delta.add_argument(
        "--insert", default=None, help="comma-separated edge pairs to insert, e.g. 3-17,4-9"
    )
    delta.add_argument(
        "--delete", default=None, help="comma-separated edge pairs to delete, e.g. 0-5"
    )
    delta.add_argument(
        "--grow-to", type=int, default=None, help="node count of the resulting graph"
    )
    delta.add_argument("--out", default=None, metavar="FILE", help="write the updated edge list")
    delta.add_argument(
        "--plan",
        default=None,
        metavar="MEASURE",
        help="print the invalidation plan for a registered proximity measure",
    )
    delta.add_argument(
        "--ledger", default=None, metavar="FILE", help="record the lineage step in a privacy ledger"
    )

    ledger = sub.add_parser(
        "ledger", help="verify a privacy ledger and print its cumulative (ε, δ)"
    )
    ledger.add_argument("path", help="the ledger JSON file")
    ledger.add_argument(
        "--delta", type=float, default=None, help="target δ for the cumulative ε"
    )
    ledger.add_argument(
        "--entries", action="store_true", help="also list every chained entry"
    )
    return parser


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    if args.smoke:
        settings = ExperimentSettings.smoke_test()
    elif args.paper:
        settings = ExperimentSettings.paper_scale()
    else:
        settings = ExperimentSettings()
    if args.datasets:
        settings = settings.with_updates(
            datasets=tuple(name.strip() for name in args.datasets.split(",") if name.strip())
        )
    if args.repeats is not None:
        settings = settings.with_updates(repeats=args.repeats)
    if args.seed is not None:
        settings = settings.with_updates(seed=args.seed)
    if args.epochs is not None:
        settings = settings.with_updates(
            training=settings.training.with_updates(epochs=args.epochs)
        )
    if getattr(args, "train_workers", 1) != 1:
        settings = settings.with_updates(train_workers=args.train_workers)
    return settings


def _parse_methods(raw: str, parser: argparse.ArgumentParser) -> tuple[str, ...]:
    """Resolve comma-separated method names through the registry.

    Unknown names exit with the registry's full listing and a
    did-you-mean hint instead of a bare traceback.
    """
    methods = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            methods.append(get_method(token).name)
        except ConfigurationError as exc:
            parser.error(str(exc))
    if not methods:
        parser.error(f"--methods needs at least one of: {', '.join(available_methods())}")
    return tuple(methods)


def _parse_values(raw: str) -> tuple:
    values = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        number = float(token)
        values.append(int(number) if number.is_integer() else number)
    return tuple(values)


def _run(args: argparse.Namespace) -> int:
    settings = _settings_from_args(args)
    kwargs: dict = {"settings": settings, "workers": args.workers, "store": args.store}
    if args.table is not None:
        sweep, values_kwarg, smoke_values = _TABLES[args.table]
        if args.values:
            kwargs[values_kwarg] = _parse_values(args.values)
        elif args.smoke:
            kwargs[values_kwarg] = smoke_values
        label = f"table {args.table}"
    elif args.figure is not None:
        sweep = _FIGURES[args.figure]
        if getattr(args, "methods_resolved", None):
            kwargs["methods"] = args.methods_resolved
        label = f"figure {args.figure}"
    else:
        sweep = _ABLATIONS[args.ablation]
        label = f"ablation {args.ablation}"

    print(f"running {label}: datasets={','.join(settings.datasets)} "
          f"repeats={settings.repeats} workers={args.workers} "
          f"store={args.store or '(none)'}", flush=True)
    table = sweep(**kwargs)
    print(table.to_text())
    if table.run_report is not None:
        print(table.run_report.summary())
    return 0


def _is_servable(path: str) -> bool:
    from pathlib import Path

    return (Path(path) / "servable.json").is_file()


def _inspect(args: argparse.Namespace) -> int:
    """Describe a saved model in O(metadata) — payloads are never loaded."""
    if _is_servable(args.path):
        from ..serving import ServableModel

        with ServableModel.open(args.path, check_registry=False) as servable:
            metadata = dict(servable.metadata)
            arrays = servable.document.get("arrays", {})
            kind = "servable"
            payload = servable.payload_nbytes
    else:
        from ..models import peek_artifact

        metadata = peek_artifact(args.path)
        arrays = metadata.pop("arrays", {})
        kind = "artifact"
        payload = None
    print(f"{kind}: {args.path}")
    print(f"method:   {metadata.get('method')}")
    result = metadata.get("result") or {}
    if result.get("losses"):
        print(f"final loss: {result['losses'][-1]:.6f}")
    if result.get("privacy_spent"):
        print(f"privacy spent: {result['privacy_spent']}")
    for field in ("dataset_fingerprint", "proximity_fingerprint", "repro_version"):
        if metadata.get(field):
            print(f"{field}: {metadata[field]}")
    for name, info in arrays.items():
        shape = "x".join(str(dim) for dim in info.get("shape", []))
        print(f"array {name}: {shape} {info.get('dtype')}")
    if payload is not None:
        print(f"payload: {payload} bytes (memory-mapped on open)")
    return 0


def _query(args: argparse.Namespace) -> int:
    """Answer batched top-k from a servable (zero-copy) or an artifact."""
    nodes = [int(token) for token in args.nodes.split(",") if token.strip()]
    if not nodes:
        raise ConfigurationError("--nodes needs at least one node id")
    if _is_servable(args.path):
        from ..serving import ServableModel

        with ServableModel.open(args.path) as servable:
            engine = servable.query_engine()
            result = engine.top_k(nodes, args.k, metric=args.metric)
    else:
        from ..models import Embedder

        engine = Embedder.load(args.path).as_servable()
        result = engine.top_k(nodes, args.k, metric=args.metric)
    for row, node in enumerate(nodes):
        pairs = ", ".join(
            f"{int(node_id)}:{float(score):.4f}"
            for node_id, score in zip(result.ids[row], result.scores[row], strict=True)
        )
        print(f"node {node}: {pairs}")
    return 0


def _parse_edge_pairs(raw: str | None, label: str) -> list[tuple[int, int]]:
    """Parse ``u-v,u-v`` (or ``u:v``) pair syntax into edge tuples."""
    if not raw:
        return []
    pairs: list[tuple[int, int]] = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        separator = "-" if "-" in token else ":"
        parts = token.split(separator)
        if len(parts) != 2:
            raise ConfigurationError(
                f"--{label} expects comma-separated u-v pairs, got {token!r}"
            )
        pairs.append((int(parts[0]), int(parts[1])))
    return pairs


def _delta(args: argparse.Namespace) -> int:
    """Apply an edge delta to an edge-list graph; optionally plan/record it."""
    from ..graph.io import read_edge_list, write_edge_list
    from ..streaming import DeltaPlanner, EdgeDelta, apply_delta

    graph = read_edge_list(args.graph, num_nodes=args.num_nodes)
    delta = EdgeDelta(
        inserts=_parse_edge_pairs(args.insert, "insert"),
        deletes=_parse_edge_pairs(args.delete, "delete"),
        num_nodes=args.grow_to,
    )
    new_graph = apply_delta(graph, delta)
    print(f"base:  {graph.name} nodes={graph.num_nodes} edges={graph.num_edges} "
          f"fingerprint={graph.content_fingerprint()}")
    print(f"delta: +{delta.num_inserts} -{delta.num_deletes} "
          f"fingerprint={delta.fingerprint()}")
    print(f"new:   nodes={new_graph.num_nodes} edges={new_graph.num_edges} "
          f"fingerprint={new_graph.content_fingerprint()}")
    if args.plan:
        from ..proximity import get_proximity

        measure = get_proximity(args.plan)
        plan = DeltaPlanner().plan(graph, delta, measure, new_graph=new_graph)
        print(f"plan[{measure.name}]: scope={plan.scope} "
              f"recompute={plan.num_affected}/{plan.num_rows} rows "
              f"(reuse {plan.reuse_fraction:.1%}) — {plan.reason}")
    if args.ledger:
        from ..privacy import PrivacyLedger

        ledger = PrivacyLedger(args.ledger)
        entry = ledger.record_delta(graph, new_graph, delta)
        print(f"ledger: recorded lineage step {entry['entry_hash']} in {args.ledger}")
    if args.out:
        write_edge_list(new_graph, args.out)
        print(f"wrote {args.out}")
    return 0


def _ledger(args: argparse.Namespace) -> int:
    """Verify a ledger's hash chain and print its cumulative budget."""
    from ..privacy import PrivacyLedger

    ledger = PrivacyLedger(args.path)  # load verifies the chain
    summary = ledger.summary(args.delta)
    print(f"ledger: {summary['path']}")
    print(f"entries: {summary['entries']} ({summary['fits']} fits, "
          f"{summary['deltas']} deltas), chain verified")
    print(f"lineage head: {summary['dataset_fingerprint']}")
    print(f"total steps: {summary['total_steps']}")
    if summary["total_steps"]:
        print(f"cumulative: ε={summary['epsilon']:.4f} δ={summary['delta']:.1e} "
              f"(best α={summary['best_alpha']:g})")
    else:
        print("cumulative: no private fits recorded")
    if args.entries:
        for position, entry in enumerate(ledger.entries):
            if entry["kind"] == "fit":
                print(f"  [{position}] fit {entry['method']} steps={entry['steps']} "
                      f"ε={entry['epsilon']:.4f} σ={entry['noise_multiplier']} "
                      f"γ={entry['sampling_rate']:.4g}")
            else:
                print(f"  [{position}] delta {entry['parent_dataset_fingerprint'][:12]} "
                      f"-> {entry['dataset_fingerprint'][:12]} "
                      f"(+{entry.get('num_inserts', '?')} -{entry.get('num_deletes', '?')})")
    return 0


def _list() -> int:
    print("tables:    " + ", ".join(str(n) for n in sorted(_TABLES)))
    print("figures:   " + ", ".join(str(n) for n in sorted(_FIGURES)))
    print("ablations: " + ", ".join(sorted(_ABLATIONS)))
    print("datasets:  " + ", ".join(available_datasets()))
    print("methods:   " + ", ".join(available_methods()))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _list()
    if args.command == "inspect":
        return _inspect(args)
    if args.command == "query":
        return _query(args)
    if args.command == "delta":
        return _delta(args)
    if args.command == "ledger":
        return _ledger(args)
    if args.values and args.table is None:
        parser.error("--values only applies to --table sweeps")
    if args.methods and args.figure is None:
        parser.error("--methods only applies to --figure sweeps")
    args.methods_resolved = _parse_methods(args.methods, parser) if args.methods else None
    return _run(args)


if __name__ == "__main__":
    sys.exit(main())
