"""Ablations of this reproduction's own design choices.

Beyond the paper's tables, three implementation decisions materially affect
the scaled-down experiments (they are discussed in EXPERIMENTS.md):

* **iterate averaging** — publishing the average of the private W_in
  iterates instead of the last iterate,
* **gradient normalisation** — per-row averaging of the noisy summed
  gradient versus the literal Eq. (9) division by the batch size,
* **negative-sampling design** — the Theorem-3 proximity sampler of
  SE-GEmb versus the degree^0.75 unigram sampler of prior skip-gram work.

Each ablation trains the affected variants side by side on the same graphs
and reports StrucEqu, so the impact of the choice is measurable rather than
asserted.  Like the table/figure sweeps, the grids expand into
:class:`RunSpec` cells (kinds ``ablation_private`` and
``ablation_negative_sampling``) and delegate to the orchestrator, so they
parallelise and resume the same way.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from ..evaluation import structural_equivalence_score
from ..embedding import SEGEmbTrainer, SEPrivGEmbTrainer
from ..proximity import DeepWalkProximity, compute_proximity
from ..utils.rng import repeat_streams
from ..utils.stats import summarize_runs
from .configs import ExperimentSettings
from .orchestrator import (
    RunSpec,
    cell_seed_sequence,
    dataset_graph,
    evaluation_seed_sequence,
    execute,
    specs_for_settings,
)
from .results import ResultTable
from .store import RunStore

__all__ = [
    "ablation_iterate_averaging",
    "ablation_gradient_normalization",
    "ablation_negative_sampling",
]


# --------------------------------------------------------------------- #
# cell runners (dispatched by the orchestrator's kind registry)
# --------------------------------------------------------------------- #
def _run_ablation_cell(spec: RunSpec, make_model) -> dict[str, Any]:
    """Shared cell loop: repeated estimator fits scored on one fixed pair sample.

    ``make_model(proximity)`` builds the (unfitted) estimator variant under
    study; everything else — graph/proximity resolution, per-repeat spawned
    training streams, the evaluation stream shared across the cells of one
    graph (common random numbers) — is identical for every ablation kind.
    """
    graph = dataset_graph(spec)
    proximity = compute_proximity(DeepWalkProximity(window_size=spec.deepwalk_window), graph)
    train_streams, _ = repeat_streams(cell_seed_sequence(spec), spec.repeats)
    eval_stream = evaluation_seed_sequence(spec)
    scores = []
    for train_stream in train_streams:
        model = make_model(proximity).fit(graph, rng=np.random.default_rng(train_stream))
        scores.append(
            structural_equivalence_score(
                graph, model.embeddings_, seed=np.random.default_rng(eval_stream)
            )
        )
    summary = summarize_runs(scores)
    return {
        "metric": spec.metric,
        "mean": float(summary.mean),
        "std": float(summary.std),
        "repeats": spec.repeats,
    }


def run_private_cell(spec: RunSpec) -> dict[str, Any]:
    """One ``ablation_private`` cell: repeated SE-PrivGEmb runs, StrucEqu summary.

    ``spec.options`` carries the trainer keyword overrides under study
    (``iterate_averaging`` / ``gradient_normalization``).
    """
    trainer_kwargs = dict(spec.options)

    def make_model(proximity):
        return SEPrivGEmbTrainer(
            proximity=proximity,
            training_config=spec.training,
            privacy_config=spec.privacy,
            **trainer_kwargs,
        )

    return _run_ablation_cell(spec, make_model)


def run_negative_sampling_cell(spec: RunSpec) -> dict[str, Any]:
    """One ``ablation_negative_sampling`` cell: non-private SE-GEmb runs."""
    sampling = str(spec.option("negative_sampling", "proximity"))

    def make_model(proximity):
        return SEGEmbTrainer(
            proximity=proximity, config=spec.training, negative_sampling=sampling
        )

    return _run_ablation_cell(spec, make_model)


# --------------------------------------------------------------------- #
# sweeps
# --------------------------------------------------------------------- #
def _ablation_sweep(
    settings: ExperimentSettings,
    title: str,
    kind: str,
    method: str,
    axis_name: str,
    axis_values: tuple,
    workers: int,
    store: RunStore | str | Path | None,
) -> ResultTable:
    specs, rows = [], []
    for dataset_name in settings.datasets:
        for value in axis_values:
            specs.append(
                specs_for_settings(
                    kind,
                    method,
                    dataset_name,
                    settings,
                    options={axis_name: value},
                )
            )
            rows.append({"dataset": dataset_name, axis_name: value})
    report = execute(specs, workers=workers, store=store)
    table = ResultTable(title)
    for row, result in zip(rows, report.results, strict=True):
        table.add_row(
            {**row, "strucequ_mean": result["mean"], "strucequ_std": result["std"]}
        )
    table.run_report = report
    return table


def ablation_iterate_averaging(
    settings: ExperimentSettings | None = None,
    workers: int = 1,
    store: RunStore | str | Path | None = None,
) -> ResultTable:
    """Compare averaged-iterate output against the last iterate (Algorithm 2 literal)."""
    settings = settings or ExperimentSettings()
    return _ablation_sweep(
        settings,
        "Ablation: iterate averaging of the private embeddings",
        "ablation_private",
        "se_privgemb_dw",
        "iterate_averaging",
        (True, False),
        workers,
        store,
    )


def ablation_gradient_normalization(
    settings: ExperimentSettings | None = None,
    workers: int = 1,
    store: RunStore | str | Path | None = None,
) -> ResultTable:
    """Compare per-row normalisation against the literal Eq. (9) batch averaging."""
    settings = settings or ExperimentSettings()
    return _ablation_sweep(
        settings,
        "Ablation: gradient normalisation (per_row vs batch)",
        "ablation_private",
        "se_privgemb_dw",
        "gradient_normalization",
        ("per_row", "batch"),
        workers,
        store,
    )


def ablation_negative_sampling(
    settings: ExperimentSettings | None = None,
    workers: int = 1,
    store: RunStore | str | Path | None = None,
) -> ResultTable:
    """Compare the Theorem-3 sampler against the unigram sampler (non-private SE-GEmb)."""
    settings = settings or ExperimentSettings()
    return _ablation_sweep(
        settings,
        "Ablation: Theorem-3 vs unigram negative sampling (SE-GEmb)",
        "ablation_negative_sampling",
        "se_gemb_dw",
        "negative_sampling",
        ("proximity", "unigram"),
        workers,
        store,
    )
