"""Ablations of this reproduction's own design choices.

Beyond the paper's tables, three implementation decisions materially affect
the scaled-down experiments (they are discussed in EXPERIMENTS.md):

* **iterate averaging** — publishing the average of the private W_in
  iterates instead of the last iterate,
* **gradient normalisation** — per-row averaging of the noisy summed
  gradient versus the literal Eq. (9) division by the batch size,
* **negative-sampling design** — the Theorem-3 proximity sampler of
  SE-GEmb versus the degree^0.75 unigram sampler of prior skip-gram work.

Each ablation trains the affected variants side by side on the same graphs
and reports StrucEqu, so the impact of the choice is measurable rather than
asserted.
"""

from __future__ import annotations

from ..evaluation import structural_equivalence_score
from ..embedding import SEGEmbTrainer, SEPrivGEmbTrainer
from ..graph import load_dataset
from ..proximity import DeepWalkProximity
from ..utils.stats import summarize_runs
from .configs import ExperimentSettings
from .results import ResultTable

__all__ = [
    "ablation_iterate_averaging",
    "ablation_gradient_normalization",
    "ablation_negative_sampling",
]


def _repeat_private(graph, settings, repeats, **trainer_kwargs):
    """Train SE-PrivGEmb ``repeats`` times and summarise its StrucEqu."""
    scores = []
    for repeat in range(repeats):
        trainer = SEPrivGEmbTrainer(
            graph,
            DeepWalkProximity(window_size=5),
            training_config=settings.training,
            privacy_config=settings.privacy,
            seed=settings.seed + repeat,
            **trainer_kwargs,
        )
        result = trainer.train()
        scores.append(structural_equivalence_score(graph, result.embeddings, seed=repeat))
    return summarize_runs(scores)


def ablation_iterate_averaging(settings: ExperimentSettings | None = None) -> ResultTable:
    """Compare averaged-iterate output against the last iterate (Algorithm 2 literal)."""
    settings = settings or ExperimentSettings()
    table = ResultTable("Ablation: iterate averaging of the private embeddings")
    for dataset_name in settings.datasets:
        graph = load_dataset(dataset_name, scale=settings.dataset_scale, seed=settings.seed)
        for averaging in (True, False):
            summary = _repeat_private(
                graph, settings, settings.repeats, iterate_averaging=averaging
            )
            table.add_row(
                {
                    "dataset": dataset_name,
                    "iterate_averaging": averaging,
                    "strucequ_mean": summary.mean,
                    "strucequ_std": summary.std,
                }
            )
    return table


def ablation_gradient_normalization(settings: ExperimentSettings | None = None) -> ResultTable:
    """Compare per-row normalisation against the literal Eq. (9) batch averaging."""
    settings = settings or ExperimentSettings()
    table = ResultTable("Ablation: gradient normalisation (per_row vs batch)")
    for dataset_name in settings.datasets:
        graph = load_dataset(dataset_name, scale=settings.dataset_scale, seed=settings.seed)
        for normalization in ("per_row", "batch"):
            summary = _repeat_private(
                graph, settings, settings.repeats, gradient_normalization=normalization
            )
            table.add_row(
                {
                    "dataset": dataset_name,
                    "gradient_normalization": normalization,
                    "strucequ_mean": summary.mean,
                    "strucequ_std": summary.std,
                }
            )
    return table


def ablation_negative_sampling(settings: ExperimentSettings | None = None) -> ResultTable:
    """Compare the Theorem-3 sampler against the unigram sampler (non-private SE-GEmb)."""
    settings = settings or ExperimentSettings()
    table = ResultTable("Ablation: Theorem-3 vs unigram negative sampling (SE-GEmb)")
    for dataset_name in settings.datasets:
        graph = load_dataset(dataset_name, scale=settings.dataset_scale, seed=settings.seed)
        for sampling in ("proximity", "unigram"):
            scores = []
            for repeat in range(settings.repeats):
                trainer = SEGEmbTrainer(
                    graph,
                    DeepWalkProximity(window_size=5),
                    config=settings.training,
                    negative_sampling=sampling,
                    seed=settings.seed + repeat,
                )
                result = trainer.train()
                scores.append(
                    structural_equivalence_score(graph, result.embeddings, seed=repeat)
                )
            summary = summarize_runs(scores)
            table.add_row(
                {
                    "dataset": dataset_name,
                    "negative_sampling": sampling,
                    "strucequ_mean": summary.mean,
                    "strucequ_std": summary.std,
                }
            )
    return table
