"""Experiment settings shared by the table/figure reproductions.

The paper's full grid (200-2000 epochs, dimension 128, six datasets, ten
repetitions) takes hours even on the original hardware.  The defaults here
are scaled down so the entire suite runs in minutes on a laptop while
keeping every qualitative comparison intact; the ``paper_scale`` factory
restores the paper's settings for users who want the full run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Sequence

from ..config import PrivacyConfig, TrainingConfig
from ..exceptions import ConfigurationError

__all__ = ["ExperimentSettings", "PAPER_EPSILONS", "PAPER_METHODS"]

#: The privacy budgets swept in Figures 3 and 4.
PAPER_EPSILONS: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5)

#: The eight methods compared in Figures 3 and 4, in the paper's legend order.
PAPER_METHODS: tuple[str, ...] = (
    "dpggan",
    "dpgvae",
    "gap",
    "progap",
    "se_gemb_dw",
    "se_privgemb_dw",
    "se_gemb_deg",
    "se_privgemb_deg",
)


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs of one experiment sweep.

    Attributes
    ----------
    datasets:
        Dataset names (resolved through :func:`repro.graph.load_dataset`).
    dataset_scale:
        Scale factor passed to the dataset loader (1.0 = default laptop size).
    repeats:
        Number of repetitions per configuration (paper: 10).
    training / privacy:
        Base configurations; sweeps override individual fields.
    epsilons:
        Privacy budgets for the figure sweeps.
    seed:
        Master seed.  Every sweep cell derives its own namespaced random
        streams from it via ``numpy.random.SeedSequence`` (see
        :func:`repro.utils.rng.repeat_streams` and
        :func:`repro.experiments.orchestrator.cell_seed_sequence`);
        repetitions are spawned children, never ``seed + i``.
    train_workers:
        Hogwild worker count handed to the SE trainers inside each cell
        (``1`` = the unchanged serial path).  Recorded in the cell options
        only when non-default, so default fingerprints are unchanged.
    """

    datasets: tuple[str, ...] = ("chameleon", "power", "arxiv")
    dataset_scale: float = 0.5
    repeats: int = 3
    training: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(
            embedding_dim=32, batch_size=128, learning_rate=0.1, negative_samples=5, epochs=300
        )
    )
    privacy: PrivacyConfig = field(default_factory=PrivacyConfig)
    epsilons: tuple[float, ...] = PAPER_EPSILONS
    seed: int = 7
    train_workers: int = 1

    def __post_init__(self) -> None:
        if not self.datasets:
            raise ConfigurationError("datasets must not be empty")
        if self.repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {self.repeats}")
        if self.train_workers < 1:
            raise ConfigurationError(
                f"train_workers must be >= 1, got {self.train_workers}"
            )
        if self.dataset_scale <= 0:
            raise ConfigurationError(f"dataset_scale must be positive, got {self.dataset_scale}")
        if not self.epsilons or any(eps <= 0 for eps in self.epsilons):
            raise ConfigurationError(f"epsilons must be positive, got {self.epsilons}")

    # ------------------------------------------------------------------ #
    def with_updates(self, **kwargs) -> "ExperimentSettings":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def smoke_test(cls) -> "ExperimentSettings":
        """Tiny settings used by the test suite and CI (seconds, not minutes)."""
        return cls(
            datasets=("smallworld",),
            dataset_scale=0.5,
            repeats=1,
            training=TrainingConfig(
                embedding_dim=16, batch_size=32, learning_rate=0.1, negative_samples=3, epochs=8
            ),
            epsilons=(0.5, 3.5),
            seed=3,
        )

    @classmethod
    def paper_scale(cls, datasets: Sequence[str] | None = None) -> "ExperimentSettings":
        """Settings matching the paper's reported hyper-parameters.

        Warning: this is hours of compute with the pure-numpy trainers.
        """
        return cls(
            datasets=tuple(datasets) if datasets else (
                "chameleon", "ppi", "power", "arxiv", "blogcatalog", "dblp"
            ),
            dataset_scale=1.0,
            repeats=10,
            training=TrainingConfig(
                embedding_dim=128,
                batch_size=128,
                learning_rate=0.1,
                negative_samples=5,
                epochs=200,
            ),
            epsilons=PAPER_EPSILONS,
            seed=7,
        )
