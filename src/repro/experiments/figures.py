"""Reproductions of Figures 3 and 4: utility versus privacy budget.

Figure 3 sweeps ε over all eight methods and reports StrucEqu per dataset;
Figure 4 does the same with link-prediction AUC.  The functions return
:class:`ResultTable` objects with one row per (dataset, method, ε) — the
series the paper plots.

Both sweeps expand into :class:`RunSpec` cells and delegate to the
orchestrator: non-private methods do not depend on ε, so they are a single
cell whose result is replicated across the budget grid (the flat lines in
the figures), while each private (method, dataset, ε) triple is its own
cell.  ``workers`` and ``store`` behave as in :mod:`repro.experiments.tables`.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Sequence

from .configs import ExperimentSettings, PAPER_METHODS
from .orchestrator import execute, specs_for_settings
from .results import ResultTable
from .runner import is_private_method
from .store import RunStore

__all__ = ["figure_structural_equivalence", "figure_link_prediction"]


def _figure_sweep(
    settings: ExperimentSettings,
    methods: Sequence[str],
    title: str,
    metric_name: str,
    kind: str,
    workers: int = 1,
    store: RunStore | str | Path | None = None,
) -> ResultTable:
    specs = []
    # per spec: (dataset, method, epsilons the result is replicated over)
    placements: list[tuple[str, str, tuple[float, ...]]] = []
    for dataset_name in settings.datasets:
        for method in methods:
            if not is_private_method(method):
                # one cell, replicated across the sweep (flat figure line)
                specs.append(
                    specs_for_settings(
                        kind, method, dataset_name, settings, metric=metric_name
                    )
                )
                placements.append((dataset_name, method, tuple(settings.epsilons)))
                continue
            for epsilon in settings.epsilons:
                specs.append(
                    specs_for_settings(
                        kind,
                        method,
                        dataset_name,
                        settings,
                        privacy=settings.privacy.with_epsilon(float(epsilon)),
                        metric=metric_name,
                    )
                )
                placements.append((dataset_name, method, (float(epsilon),)))
    report = execute(specs, workers=workers, store=store)
    table = ResultTable(title)
    for (dataset_name, method, epsilons), result in zip(placements, report.results, strict=True):
        for epsilon in epsilons:
            table.add_row(
                {
                    "dataset": dataset_name,
                    "method": method,
                    "epsilon": float(epsilon),
                    f"{metric_name}_mean": result["mean"],
                    f"{metric_name}_std": result["std"],
                }
            )
    table.run_report = report
    return table


def figure_structural_equivalence(
    settings: ExperimentSettings | None = None,
    methods: Sequence[str] = PAPER_METHODS,
    workers: int = 1,
    store: RunStore | str | Path | None = None,
) -> ResultTable:
    """Figure 3: StrucEqu versus privacy budget ε for every method and dataset."""
    settings = settings or ExperimentSettings()
    return _figure_sweep(
        settings,
        methods,
        "Figure 3: StrucEqu vs privacy budget",
        "strucequ",
        "strucequ",
        workers=workers,
        store=store,
    )


def figure_link_prediction(
    settings: ExperimentSettings | None = None,
    methods: Sequence[str] = PAPER_METHODS,
    workers: int = 1,
    store: RunStore | str | Path | None = None,
) -> ResultTable:
    """Figure 4: link-prediction AUC versus privacy budget ε."""
    settings = settings or ExperimentSettings()
    return _figure_sweep(
        settings,
        methods,
        "Figure 4: link-prediction AUC vs privacy budget",
        "auc",
        "linkpred",
        workers=workers,
        store=store,
    )
