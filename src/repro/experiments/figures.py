"""Reproductions of Figures 3 and 4: utility versus privacy budget.

Figure 3 sweeps ε over all eight methods and reports StrucEqu per dataset;
Figure 4 does the same with link-prediction AUC.  The functions return
:class:`ResultTable` objects with one row per (dataset, method, ε) — the
series the paper plots.
"""

from __future__ import annotations

from typing import Sequence

from ..graph import load_dataset
from .configs import ExperimentSettings, PAPER_METHODS
from .results import ResultTable
from .runner import (
    evaluate_link_prediction,
    evaluate_structural_equivalence,
    is_private_method,
)

__all__ = ["figure_structural_equivalence", "figure_link_prediction"]


def _figure_sweep(
    settings: ExperimentSettings,
    methods: Sequence[str],
    title: str,
    metric_name: str,
    evaluate,
) -> ResultTable:
    table = ResultTable(title)
    for dataset_name in settings.datasets:
        graph = load_dataset(dataset_name, scale=settings.dataset_scale, seed=settings.seed)
        for method in methods:
            # Non-private methods do not depend on ε; evaluate them once and
            # replicate the value across the sweep (flat lines in the figure).
            if not is_private_method(method):
                mean, std = evaluate(
                    method, graph, settings.training, settings.privacy, settings
                )
                for epsilon in settings.epsilons:
                    table.add_row(
                        {
                            "dataset": dataset_name,
                            "method": method,
                            "epsilon": float(epsilon),
                            f"{metric_name}_mean": mean,
                            f"{metric_name}_std": std,
                        }
                    )
                continue
            for epsilon in settings.epsilons:
                privacy = settings.privacy.with_epsilon(float(epsilon))
                mean, std = evaluate(method, graph, settings.training, privacy, settings)
                table.add_row(
                    {
                        "dataset": dataset_name,
                        "method": method,
                        "epsilon": float(epsilon),
                        f"{metric_name}_mean": mean,
                        f"{metric_name}_std": std,
                    }
                )
    return table


def figure_structural_equivalence(
    settings: ExperimentSettings | None = None,
    methods: Sequence[str] = PAPER_METHODS,
) -> ResultTable:
    """Figure 3: StrucEqu versus privacy budget ε for every method and dataset."""
    settings = settings or ExperimentSettings()

    def evaluate(method, graph, training, privacy, s):
        return evaluate_structural_equivalence(
            method, graph, training, privacy, repeats=s.repeats, seed=s.seed
        )

    return _figure_sweep(
        settings,
        methods,
        "Figure 3: StrucEqu vs privacy budget",
        "strucequ",
        evaluate,
    )


def figure_link_prediction(
    settings: ExperimentSettings | None = None,
    methods: Sequence[str] = PAPER_METHODS,
) -> ResultTable:
    """Figure 4: link-prediction AUC versus privacy budget ε."""
    settings = settings or ExperimentSettings()

    def evaluate(method, graph, training, privacy, s):
        return evaluate_link_prediction(
            method, graph, training, privacy, repeats=s.repeats, seed=s.seed
        )

    return _figure_sweep(
        settings,
        methods,
        "Figure 4: link-prediction AUC vs privacy budget",
        "auc",
        evaluate,
    )
