"""Parallel, resumable execution of experiment sweeps.

Every table/figure/ablation reproduction is a grid of *independent* cells:
one (method, dataset, configuration, seed) tuple evaluated to a
``mean ± SD`` pair.  The serial triple loops of the original harness are
replaced by three pieces:

* :class:`RunSpec` — one cell, fully described by plain picklable data
  (method, dataset descriptor + content fingerprint, training/privacy
  configuration, repeat count, seed).  Its :meth:`~RunSpec.fingerprint` is
  a SHA-256 over the canonical JSON of everything that determines the
  result, which makes cells content-addressable.
* :class:`RunStore` (:mod:`repro.experiments.store`) — memoizes finished
  cells behind that fingerprint, so a killed sweep resumes instantly and
  tables re-render from stored results.
* :func:`execute` — runs the pending cells either inline (``workers=1``,
  the preserved serial path) or on a :class:`concurrent.futures.ProcessPoolExecutor`.
  Cells are grouped by :meth:`RunSpec.group_key` — ``(dataset fingerprint,
  proximity measure)`` — and dispatched group-chunk at a time, so each
  worker process loads a dataset once and warms the process-wide proximity
  cache once per group instead of once per cell.

Seeding: each cell derives its own :class:`numpy.random.SeedSequence` from
``(base seed, cell fingerprint)``, so no two distinct cells ever share a
random stream (the additive ``seed + repeat`` convention they replace made
adjacent cells collide), and the result of a cell does not depend on how
the sweep is chunked or which worker runs it.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from pathlib import Path
from collections.abc import Callable, Mapping, Sequence
from typing import Any

import numpy as np

from ..config import PrivacyConfig, TrainingConfig
from ..exceptions import ConfigurationError, OrchestrationError
from ..graph import Graph, load_dataset
from ..models import get_method
from ..robustness.faults import maybe_hit
from ..robustness.retry import RetryPolicy
from ..utils import mp as _mp
from ..utils.logging import get_logger
from .store import RunStore

__all__ = [
    "RunSpec",
    "SweepReport",
    "cell_seed_sequence",
    "dataset_fingerprint",
    "dataset_graph",
    "execute",
    "register_kind",
    "run_spec",
]

_LOGGER = get_logger("experiments.orchestrator")

# --------------------------------------------------------------------- #
# cell kinds
# --------------------------------------------------------------------- #
#: built-in cell kinds, resolved lazily so ablation kinds can live next to
#: their training loops without an import cycle (and so a worker started
#: with any multiprocessing method can resolve them from the spec alone)
_LAZY_KINDS: dict[str, tuple[str, str]] = {
    "strucequ": ("repro.experiments.orchestrator", "_run_strucequ"),
    "linkpred": ("repro.experiments.orchestrator", "_run_linkpred"),
    "sleep": ("repro.experiments.orchestrator", "_run_sleep"),
    "ablation_private": ("repro.experiments.ablations", "run_private_cell"),
    "ablation_negative_sampling": (
        "repro.experiments.ablations",
        "run_negative_sampling_cell",
    ),
}

_KIND_RUNNERS: dict[str, Callable[["RunSpec"], dict[str, Any]]] = {}


def register_kind(kind: str, runner: Callable[["RunSpec"], dict[str, Any]]) -> None:
    """Register a custom cell kind (mainly for tests and extensions)."""
    _KIND_RUNNERS[kind] = runner


def _resolve_kind(kind: str) -> Callable[["RunSpec"], dict[str, Any]]:
    runner = _KIND_RUNNERS.get(kind)
    if runner is not None:
        return runner
    target = _LAZY_KINDS.get(kind)
    if target is None:
        raise OrchestrationError(
            f"unknown run kind {kind!r}; known: {sorted(set(_LAZY_KINDS) | set(_KIND_RUNNERS))}"
        )
    module_name, attr = target
    runner = getattr(importlib.import_module(module_name), attr)
    _KIND_RUNNERS[kind] = runner
    return runner


# --------------------------------------------------------------------- #
# the cell description
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RunSpec:
    """One independent experiment cell.

    Attributes
    ----------
    kind:
        Which evaluation to run ("strucequ", "linkpred", an ablation kind,
        or the synthetic "sleep" payload used by scheduling benchmarks).
    method:
        Method name (or ablation variant label) the cell evaluates.
    dataset / dataset_scale / dataset_num_nodes / dataset_seed:
        Descriptor handed to :func:`repro.graph.load_dataset` — datasets
        are deterministic stand-ins, so the descriptor fully determines the
        graph.
    dataset_fingerprint:
        Content hash of the loaded graph.  Part of the cell fingerprint
        (content addressing), and verified by the worker against the graph
        it loads, so a drifted generator can never silently reuse stale
        stored results.
    training / privacy:
        Full hyper-parameter configurations.
    repeats / seed / perturbation / deepwalk_window:
        Evaluation protocol knobs (see :mod:`repro.experiments.runner`).
    options:
        Kind-specific extras as a sorted tuple of ``(name, value)`` pairs
        (e.g. ablation trainer kwargs, sleep duration).
    metric:
        Name of the reported metric ("strucequ", "auc", ...), used for
        result labelling only.
    """

    kind: str
    method: str
    dataset: str
    dataset_fingerprint: str
    training: TrainingConfig
    privacy: PrivacyConfig
    repeats: int
    seed: int
    dataset_scale: float = 1.0
    dataset_num_nodes: int | None = None
    dataset_seed: int = 0
    perturbation: str = "nonzero"
    deepwalk_window: int = 5
    options: tuple[tuple[str, Any], ...] = ()
    metric: str = "strucequ"

    # ------------------------------------------------------------------ #
    def _method_payload(self) -> Any:
        """Structured method description for the content fingerprint.

        Registered methods contribute their full
        :meth:`~repro.models.MethodSpec.fingerprint_payload` — trainer
        class, proximity factory, perturbation, privacy flag — so a method
        whose *definition* changes invalidates stored cells even when its
        label stays the same.  Unregistered labels (ablation variants, the
        synthetic "sleep" payload) fall back to the plain string.
        """
        try:
            return get_method(self.method).fingerprint_payload()
        except ConfigurationError:
            return self.method

    def describe(self) -> dict[str, Any]:
        """Canonical JSON-able description of everything result-relevant."""
        return {
            "kind": self.kind,
            "method": self._method_payload(),
            "dataset": self.dataset,
            "dataset_scale": self.dataset_scale,
            "dataset_num_nodes": self.dataset_num_nodes,
            "dataset_seed": self.dataset_seed,
            "dataset_fingerprint": self.dataset_fingerprint,
            "training": self.training.to_dict(),
            "privacy": self.privacy.to_dict(),
            "repeats": self.repeats,
            "seed": self.seed,
            "perturbation": self.perturbation,
            "deepwalk_window": self.deepwalk_window,
            "options": [[name, value] for name, value in self.options],
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical description — the content address."""
        canonical = json.dumps(self.describe(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def group_key(self) -> tuple[str, str]:
        """Affinity key ``(dataset fingerprint, proximity measure)``.

        Cells sharing a group key are dispatched to the same worker chunk,
        so each process loads the dataset and warms the proximity cache
        once per group rather than once per cell.  The proximity label
        comes from the method registry (structured field, not name
        parsing); unregistered labels group as ``"none"``.
        """
        try:
            spec = get_method(self.method)
        except ConfigurationError:
            spec = None
        if spec is None or spec.proximity is None:
            proximity = "none"
        elif spec.proximity == "deepwalk":
            proximity = f"deepwalk:{self.deepwalk_window}"
        else:
            proximity = spec.proximity
        return (self.dataset_fingerprint or self.dataset, proximity)

    def with_updates(self, **kwargs: Any) -> "RunSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def option(self, name: str, default: Any = None) -> Any:
        """Look up one kind-specific option."""
        return dict(self.options).get(name, default)


def cell_seed_sequence(spec: RunSpec) -> np.random.SeedSequence:
    """The cell's namespaced random stream root.

    Derived from ``(base seed, cell fingerprint)``, so distinct cells of a
    sweep never share streams even when they use the same base seed, and a
    cell's randomness does not depend on its position in the grid — the
    property that makes resumed and re-chunked sweeps bitwise reproducible.
    """
    entropy = int(spec.fingerprint()[:16], 16)
    return np.random.SeedSequence([spec.seed, entropy])


# --------------------------------------------------------------------- #
# dataset resolution (per-process cache)
# --------------------------------------------------------------------- #
_GRAPH_CACHE: dict[tuple[str, float, int | None, int], Graph] = {}
_GRAPH_CACHE_LIMIT = 8


def _load_graph(
    name: str, scale: float, num_nodes: int | None, seed: int
) -> Graph:
    key = (name, float(scale), num_nodes, int(seed))
    graph = _GRAPH_CACHE.get(key)
    if graph is None:
        graph = load_dataset(name, scale=scale, num_nodes=num_nodes, seed=seed)
        if len(_GRAPH_CACHE) >= _GRAPH_CACHE_LIMIT:
            _GRAPH_CACHE.pop(next(iter(_GRAPH_CACHE)))
        _GRAPH_CACHE[key] = graph
    return graph


def dataset_fingerprint(
    name: str, scale: float = 1.0, num_nodes: int | None = None, seed: int = 0
) -> str:
    """Content fingerprint of a (deterministic) dataset stand-in."""
    return _load_graph(name, scale, num_nodes, seed).content_fingerprint()


def dataset_graph(spec: RunSpec) -> Graph:
    """Load (or reuse) the spec's graph and verify its content fingerprint."""
    graph = _load_graph(
        spec.dataset, spec.dataset_scale, spec.dataset_num_nodes, spec.dataset_seed
    )
    if spec.dataset_fingerprint and graph.content_fingerprint() != spec.dataset_fingerprint:
        raise OrchestrationError(
            f"dataset {spec.dataset!r} no longer matches the spec fingerprint "
            f"({graph.content_fingerprint()} != {spec.dataset_fingerprint}); "
            "the generator changed — stored results for it are stale"
        )
    return graph


# --------------------------------------------------------------------- #
# built-in cell runners
# --------------------------------------------------------------------- #
def evaluation_seed_sequence(spec: RunSpec) -> np.random.SeedSequence:
    """The *shared* evaluation stream of every cell on one graph.

    Derived from ``(base seed, dataset fingerprint)`` only — unlike the
    per-cell training streams — so all cells of a sweep score on the
    identical StrucEqu pair sample (common random numbers): cross-cell
    comparisons are differences of runs, not of scoring subsamples.
    """
    entropy = int(spec.dataset_fingerprint[:16], 16) if spec.dataset_fingerprint else 0
    return np.random.SeedSequence([spec.seed, entropy])


def _run_strucequ(spec: RunSpec) -> dict[str, Any]:
    from .runner import evaluate_structural_equivalence

    mean, std = evaluate_structural_equivalence(
        spec.method,
        dataset_graph(spec),
        spec.training,
        spec.privacy,
        repeats=spec.repeats,
        seed=cell_seed_sequence(spec),
        perturbation=spec.perturbation,
        deepwalk_window=spec.deepwalk_window,
        evaluation_seed=evaluation_seed_sequence(spec),
        workers=int(spec.option("train_workers", 1)),
    )
    return {"metric": spec.metric, "mean": float(mean), "std": float(std), "repeats": spec.repeats}


def _run_linkpred(spec: RunSpec) -> dict[str, Any]:
    from .runner import evaluate_link_prediction

    mean, std = evaluate_link_prediction(
        spec.method,
        dataset_graph(spec),
        spec.training,
        spec.privacy,
        repeats=spec.repeats,
        seed=cell_seed_sequence(spec),
        perturbation=spec.perturbation,
        deepwalk_window=spec.deepwalk_window,
        workers=int(spec.option("train_workers", 1)),
    )
    return {"metric": spec.metric, "mean": float(mean), "std": float(std), "repeats": spec.repeats}


def _run_sleep(spec: RunSpec) -> dict[str, Any]:
    # synthetic scheduling payload: blocks without burning CPU, so the
    # orchestration benchmark can measure dispatch concurrency on any box
    duration = float(spec.option("duration", 0.1))
    time.sleep(duration)
    return {"metric": spec.metric, "mean": duration, "std": 0.0, "repeats": spec.repeats}


def run_spec(spec: RunSpec) -> dict[str, Any]:
    """Execute one cell in the current process and return its result dict."""
    maybe_hit(
        "orchestrator.cell", kind=spec.kind, method=spec.method, dataset=spec.dataset
    )
    return _resolve_kind(spec.kind)(spec)


# --------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------- #
@dataclass
class SweepReport:
    """Outcome of one :func:`execute` call.

    ``results`` is aligned with the input spec list.  ``reused`` counts
    cells served from the store without recomputation; ``computed`` counts
    cells actually run.  A cell whose runner kept raising a retryable
    error through the whole :class:`~repro.robustness.retry.RetryPolicy`
    is *quarantined*: its slot holds an error dict
    (``{"error": ..., "quarantined": True, ...}``), the failure is
    recorded in ``failures``, and the sweep continues — one poison cell
    no longer takes down a thousand-cell grid.
    """

    results: list[dict[str, Any]] = field(default_factory=list)
    reused: int = 0
    computed: int = 0
    workers: int = 1
    elapsed_seconds: float = 0.0
    #: cells that exhausted their retry budget (count of ``failures``)
    quarantined: int = 0
    #: one record per quarantined cell: spec description, error, attempts
    failures: list[dict[str, Any]] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.results)

    def summary(self) -> str:
        """One-line progress summary (the CLI prints this)."""
        line = (
            f"cells total={self.total} reused={self.reused} "
            f"computed={self.computed} workers={self.workers} "
            f"elapsed={self.elapsed_seconds:.2f}s"
        )
        if self.quarantined:
            line += f" quarantined={self.quarantined}"
        return line


def _resolve_store(store: RunStore | str | Path | None) -> RunStore | None:
    if store is None or isinstance(store, RunStore):
        return store
    return RunStore(store)


def _chunk_pending(
    pending: list[tuple[int, RunSpec]], workers: int
) -> list[list[tuple[int, RunSpec]]]:
    """Split pending cells into worker chunks with group affinity.

    Cells are first grouped by :meth:`RunSpec.group_key`, then each group
    is cut into consecutive pieces of at most ``ceil(total / (workers * 4))``
    cells, which keeps enough chunks in flight for load balancing while
    never mixing groups inside one chunk (one dataset load / proximity
    warm-up per chunk).
    """
    groups: dict[tuple[str, str], list[tuple[int, RunSpec]]] = {}
    for item in pending:
        groups.setdefault(item[1].group_key(), []).append(item)
    chunk_size = max(1, -(-len(pending) // max(1, workers * 4)))
    chunks: list[list[tuple[int, RunSpec]]] = []
    for group in groups.values():
        for start in range(0, len(group), chunk_size):
            chunks.append(group[start : start + chunk_size])
    # longest first: big chunks should not arrive last and straggle
    chunks.sort(key=len, reverse=True)
    return chunks


def _run_cell(
    spec: RunSpec, retry: RetryPolicy | None
) -> tuple[dict[str, Any], dict[str, Any] | None]:
    """Run one cell, optionally under a retry policy.

    Returns ``(result, failure)``.  ``failure`` is ``None`` for a clean
    run; for a cell that exhausted its retries on a *retryable* error it
    is the quarantine record and ``result`` is the matching error dict.
    Non-retryable errors (and any error when ``retry`` is ``None``)
    propagate unchanged — quarantine is for transient-looking failures
    that refused to go away, never a blanket ``except``.
    """
    if retry is None:
        return run_spec(spec), None
    try:
        return retry.call(lambda: run_spec(spec)), None
    except Exception as exc:
        if not retry.is_retryable(exc):
            raise
        message = f"{type(exc).__name__}: {exc}"
        failure = {
            "spec": spec.describe(),
            "error": message,
            "attempts": retry.max_attempts,
        }
        result = {"metric": spec.metric, "error": message, "quarantined": True}
        return result, failure


def _execute_chunk(
    chunk: list[tuple[int, RunSpec]],
    store_directory: str | None,
    retry: RetryPolicy | None = None,
) -> list[tuple[int, dict[str, Any], dict[str, Any] | None]]:
    """Worker entry point: run one group chunk, publishing into the store.

    Each finished cell is written to the store *immediately* (atomic JSON),
    so a sweep killed mid-chunk still keeps every completed cell.
    Quarantined cells are *not* stored — a later resume retries them.
    """
    store = RunStore(store_directory) if store_directory is not None else None
    out: list[tuple[int, dict[str, Any], dict[str, Any] | None]] = []
    for index, spec in chunk:
        result, failure = _run_cell(spec, retry)
        if store is not None and failure is None:
            store.put(spec.fingerprint(), result, spec=spec.describe())
        out.append((index, result, failure))
    return out


def execute(
    specs: Sequence[RunSpec],
    workers: int = 1,
    store: RunStore | str | Path | None = None,
    progress: Callable[[str], None] | None = None,
    retry: RetryPolicy | None = None,
) -> SweepReport:
    """Run every cell of a sweep, reusing stored results and parallelising.

    Parameters
    ----------
    specs:
        The expanded grid.  Results come back aligned with this sequence.
    workers:
        ``1`` (default) preserves the serial in-process path; ``> 1`` runs
        group-affine chunks on a :class:`ProcessPoolExecutor`.
    store:
        Optional :class:`RunStore` (or a directory path for one).  Cells
        whose fingerprint is already stored are *not* recomputed; newly
        computed cells are published as they finish, making a killed sweep
        resumable.
    progress:
        Optional callable receiving human-readable progress lines.
    retry:
        Optional :class:`~repro.robustness.retry.RetryPolicy`.  Retryable
        cell failures are re-attempted with jittered backoff; a cell that
        exhausts the budget is quarantined (recorded in
        ``SweepReport.failures``, never stored, never raised) so the rest
        of the sweep completes.  ``None`` (default) keeps fail-fast.
    """
    if workers < 1:
        raise OrchestrationError(f"workers must be >= 1, got {workers}")
    run_store = _resolve_store(store)
    started = time.perf_counter()
    report = SweepReport(results=[None] * len(specs), workers=workers)  # type: ignore[list-item]

    pending: list[tuple[int, RunSpec]] = []
    for index, spec in enumerate(specs):
        cached = run_store.get(spec.fingerprint()) if run_store is not None else None
        if cached is not None:
            report.results[index] = cached
            report.reused += 1
        else:
            pending.append((index, spec))
    if progress is not None and run_store is not None:
        progress(f"resume: {report.reused}/{len(specs)} cells already stored")

    if pending:
        if workers > 1 and not _mp.fork_available():
            # runtime-registered kinds reach pool workers only through fork
            # inheritance; under spawn/forkserver the worker would fail with
            # a baffling "unknown run kind" — degrade to the serial path
            # (with a warning) instead of crashing the sweep
            custom = sorted(
                {s.kind for _, s in pending} & (set(_KIND_RUNNERS) - set(_LAZY_KINDS))
            )
            if custom:
                workers = _mp.serial_fallback(
                    f"kinds {custom} were registered at runtime and cannot be "
                    "dispatched to pool workers under the "
                    f"{_mp.start_method()!r} start method"
                )
                report.workers = workers
        if workers == 1:
            for index, spec in pending:
                result, failure = _run_cell(spec, retry)
                report.results[index] = result
                if failure is not None:
                    report.failures.append(failure)
                    report.quarantined += 1
                else:
                    if run_store is not None:
                        run_store.put(spec.fingerprint(), result, spec=spec.describe())
                    report.computed += 1
                if progress is not None:
                    done_count = report.reused + report.computed + report.quarantined
                    progress(f"cell {done_count}/{len(specs)} done")
        else:
            store_directory = (
                str(run_store.directory)
                if run_store is not None and run_store.directory is not None
                else None
            )
            chunks = _chunk_pending(pending, workers)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_execute_chunk, chunk, store_directory, retry): chunk
                    for chunk in chunks
                }
                outstanding = set(futures)
                while outstanding:
                    done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                    for future in done:
                        for index, result, failure in future.result():
                            report.results[index] = result
                            if failure is not None:
                                report.failures.append(failure)
                                report.quarantined += 1
                                continue
                            report.computed += 1
                            # a memory-only store lives in the parent; disk
                            # stores were already written by the worker
                            if run_store is not None and run_store.directory is None:
                                run_store.put(
                                    specs[index].fingerprint(),
                                    result,
                                    spec=specs[index].describe(),
                                )
                        if progress is not None:
                            done_count = (
                                report.reused + report.computed + report.quarantined
                            )
                            progress(f"cells {done_count}/{len(specs)} done")

    report.elapsed_seconds = time.perf_counter() - started
    _LOGGER.info("%s", report.summary())
    return report


def specs_for_settings(
    kind: str,
    method: str,
    dataset: str,
    settings: "Any",
    training: TrainingConfig | None = None,
    privacy: PrivacyConfig | None = None,
    perturbation: str = "nonzero",
    metric: str = "strucequ",
    options: Mapping[str, Any] | None = None,
) -> RunSpec:
    """Build one :class:`RunSpec` from an :class:`ExperimentSettings` grid."""
    merged = dict(options or {})
    train_workers = int(getattr(settings, "train_workers", 1) or 1)
    if train_workers != 1:
        # recorded only when non-default so existing cell fingerprints (and
        # therefore stored sweep results) are untouched by the new knob
        merged.setdefault("train_workers", train_workers)
    return RunSpec(
        kind=kind,
        method=method,
        dataset=dataset,
        dataset_scale=settings.dataset_scale,
        dataset_seed=settings.seed,
        dataset_fingerprint=dataset_fingerprint(
            dataset, scale=settings.dataset_scale, seed=settings.seed
        ),
        training=training if training is not None else settings.training,
        privacy=privacy if privacy is not None else settings.privacy,
        repeats=settings.repeats,
        seed=settings.seed,
        perturbation=perturbation,
        metric=metric,
        options=tuple(sorted(merged.items())),
    )
