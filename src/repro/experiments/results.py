"""Result containers and plain-text rendering for the experiment harness.

Every table/figure reproduction returns a :class:`ResultTable`: a list of
rows, each mapping column names to values (floats are rendered as
``mean±sd`` pairs when both are present).  ``to_text`` prints the same rows
the paper reports, so the benchmark harness output can be compared to the
original tables side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping
from typing import Any

__all__ = ["ExperimentResult", "ResultTable"]


@dataclass(frozen=True)
class ExperimentResult:
    """A single measured cell: a metric value with its repetition spread."""

    metric: str
    mean: float
    std: float
    repeats: int
    context: Mapping[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.metric}={self.mean:.4f}±{self.std:.4f} (n={self.repeats})"


class ResultTable:
    """An ordered collection of result rows with text rendering.

    Rows are plain dictionaries; the column order is fixed by the first row
    (additional keys in later rows are appended).
    """

    def __init__(self, title: str, rows: Iterable[Mapping[str, Any]] | None = None) -> None:
        self.title = title
        self._rows: list[dict[str, Any]] = []
        #: the orchestrator's SweepReport when this table came out of a
        #: sweep (reused/computed cell counts, wall-clock); None otherwise
        self.run_report = None
        if rows is not None:
            for row in rows:
                self.add_row(row)

    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> list[dict[str, Any]]:
        """The accumulated rows (list of dicts)."""
        return self._rows

    def add_row(self, row: Mapping[str, Any]) -> None:
        """Append one row."""
        self._rows.append(dict(row))

    def columns(self) -> list[str]:
        """Column names in first-seen order."""
        seen: list[str] = []
        for row in self._rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        return seen

    def column(self, name: str) -> list[Any]:
        """Return the values of one column across all rows (missing → None)."""
        return [row.get(name) for row in self._rows]

    def filter(self, **criteria: Any) -> "ResultTable":
        """Return a new table containing only rows matching all criteria."""
        matched = [
            row
            for row in self._rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]
        return ResultTable(self.title, matched)

    def best_row(self, metric: str, maximize: bool = True) -> dict[str, Any]:
        """Return the row with the best value of ``metric``."""
        rows_with_metric = [row for row in self._rows if metric in row]
        if not rows_with_metric:
            raise KeyError(f"no row contains metric {metric!r}")
        chooser = max if maximize else min
        return chooser(rows_with_metric, key=lambda row: row[metric])

    # ------------------------------------------------------------------ #
    def to_text(self, float_format: str = "{:.4f}") -> str:
        """Render the table as aligned plain text (paper-style rows)."""
        columns = self.columns()
        if not columns:
            return f"== {self.title} ==\n(empty)"

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        header = [str(c) for c in columns]
        body = [[fmt(row.get(c, "")) for c in columns] for row in self._rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(columns))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths, strict=True)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths, strict=True)))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"ResultTable(title={self.title!r}, rows={len(self._rows)})"
