"""The method runner: map a method name + graph + budget to embeddings and scores.

This is the glue between the library and the table/figure reproductions.
``embed_with_method`` resolves a method name through the declarative
registry (:mod:`repro.models.registry`) — the eight methods of the paper's
evaluation are registered there:

* ``se_privgemb_dw`` / ``se_privgemb_deg`` — the proposed method with the
  DeepWalk / degree proximity,
* ``se_gemb_dw`` / ``se_gemb_deg`` — their non-private counterparts,
* ``dpggan``, ``dpgvae``, ``gap``, ``progap`` — the DP baselines.

Dispatch itself is two lines — build the registered estimator, fit it —
and new methods become registry entries instead of new branches here.
"""

from __future__ import annotations

import warnings
from typing import Any

import numpy as np

from ..config import PrivacyConfig, TrainingConfig
from ..evaluation import (
    link_prediction_auc,
    make_link_prediction_split,
    structural_equivalence_score,
)
from ..graph import Graph
from ..models import Embedder, available_methods, get_method
from ..proximity.base import ProximityMatrix
from ..proximity.cache import ProximityCache, resolve_cache_policy
from ..utils.rng import repeat_streams
from ..utils.stats import summarize_runs

__all__ = [
    "embed_with_method",
    "evaluate_structural_equivalence",
    "evaluate_link_prediction",
    "is_private_method",
]

def __getattr__(name: str):
    # METHOD_NAMES predates the registry; keep imports of it working while
    # steering callers to available_methods()
    if name == "METHOD_NAMES":
        warnings.warn(
            "repro.experiments.runner.METHOD_NAMES is deprecated; use "
            "repro.models.available_methods()",
            DeprecationWarning,
            stacklevel=2,
        )
        return tuple(available_methods())
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _coerce_cache_policy(policy: Any, *, legacy_none: str) -> "str | ProximityCache":
    """Translate legacy cache arguments onto the explicit contract.

    The explicit contract is ``"default"`` / ``"off"`` / a
    :class:`ProximityCache` instance.  ``None`` and booleans are the
    pre-redesign overloads: ``None`` meant whatever the call site's old
    default was (passed in as ``legacy_none``), ``False`` meant bypass and
    ``True`` the default cache — all accepted with a
    :class:`DeprecationWarning`.
    """
    if isinstance(policy, ProximityCache) or policy in ("default", "off"):
        return policy
    if policy is None:
        warnings.warn(
            "proximity_cache=None is deprecated; pass 'default', 'off', or a "
            "ProximityCache instance",
            DeprecationWarning,
            stacklevel=3,
        )
        return legacy_none
    if isinstance(policy, bool):
        warnings.warn(
            "boolean proximity_cache values are deprecated; pass 'off' instead of "
            "False and 'default' instead of True",
            DeprecationWarning,
            stacklevel=3,
        )
        return "default" if policy else "off"
    # invalid values fall through to resolve_cache_policy's error
    return policy


def _resolve_proximity(
    spec,
    graph: Graph,
    proximity: ProximityMatrix | None,
    deepwalk_window: int,
    proximity_cache: "str | ProximityCache",
) -> ProximityMatrix | None:
    """Precomputed matrix if given, otherwise the (possibly cached) compute.

    Returns ``None`` for methods without a proximity (the baselines).
    """
    if spec.proximity is None:
        return None
    if proximity is not None:
        return proximity
    measure = spec.make_proximity(deepwalk_window=deepwalk_window)
    cache = resolve_cache_policy(proximity_cache)
    if cache is None:
        return measure.compute(graph)
    return cache.get_or_compute(measure, graph)


def embed_with_method(
    method: str,
    graph: Graph,
    training: TrainingConfig,
    privacy: PrivacyConfig,
    seed: int | np.random.Generator | None = None,
    perturbation: str | None = None,
    proximity: ProximityMatrix | None = None,
    deepwalk_window: int = 5,
    proximity_cache: "str | ProximityCache" = "default",
    return_model: bool = False,
    workers: int = 1,
) -> np.ndarray | Embedder:
    """Produce an embedding matrix for ``graph`` with the named method.

    Parameters
    ----------
    method:
        A registered method name (see :func:`repro.models.available_methods`).
    graph:
        The (training) graph.
    training / privacy:
        Hyper-parameters; ``privacy`` is ignored by the non-private methods.
    seed:
        Seed or generator for the run.
    perturbation:
        Perturbation strategy for the SE-PrivGEmb variants ("nonzero" or
        "naive"); ``None`` (default) uses the registered spec's own
        default.  Ignored by every method without one.
    proximity:
        Optional precomputed proximity matrix for the SE methods; when
        omitted the matrix is resolved through ``proximity_cache``, so
        repeated sweeps over the same graph never recompute it.  Ignored by
        the baselines.
    deepwalk_window:
        Window size ``T`` of the DeepWalk proximity, for methods whose
        registered proximity is the truncated DeepWalk measure.
    proximity_cache:
        ``"default"`` (process-wide cache), ``"off"`` (compute ephemerally
        — the right choice for one-shot embeds of large graphs or throwaway
        split graphs), or an explicit
        :class:`~repro.proximity.cache.ProximityCache`.  The old ``None`` /
        ``False`` / ``True`` overloads are accepted with a
        :class:`DeprecationWarning`.
    return_model:
        When ``True``, return the fitted :class:`~repro.models.Embedder`
        (with ``embeddings_``, ``result_`` incl. privacy spent, and
        ``save()``) instead of the bare embedding matrix.
    workers:
        Hogwild worker count for the SE trainers (``1`` = the unchanged
        serial path).  Methods without the knob (the DP baselines) warn and
        ignore it rather than fail the sweep.
    """
    spec = get_method(method)
    proximity_cache = _coerce_cache_policy(proximity_cache, legacy_none="default")
    workers = int(workers)
    build_kwargs: dict[str, Any] = {}
    if workers != 1:
        if spec.proximity is not None:
            build_kwargs["workers"] = workers
        else:
            warnings.warn(
                f"method {method!r} does not support hogwild workers; "
                "training serially",
                RuntimeWarning,
                stacklevel=2,
            )
    model = spec.build(
        training=training,
        privacy=privacy,
        # None falls through to the spec's declared default inside build()
        perturbation=perturbation,
        deepwalk_window=deepwalk_window,
        proximity_cache=proximity_cache,
        seed=seed,
        **build_kwargs,
    )
    if spec.proximity is not None:
        model.fit(graph, proximity=proximity)
    else:
        model.fit(graph)
    return model if return_model else model.embeddings_


def is_private_method(method: str) -> bool:
    """Return ``True`` if the method consumes the privacy budget."""
    return get_method(method).private


def evaluate_structural_equivalence(
    method: str,
    graph: Graph,
    training: TrainingConfig,
    privacy: PrivacyConfig,
    repeats: int = 3,
    seed: int | np.random.SeedSequence = 0,
    perturbation: str | None = None,
    deepwalk_window: int = 5,
    proximity_cache: "str | ProximityCache" = "default",
    evaluation_seed: int | np.random.SeedSequence | None = None,
    workers: int = 1,
) -> tuple[float, float]:
    """Mean ± SD StrucEqu of a method over repeated runs on one graph.

    The proximity matrix of the SE methods is deterministic given the graph,
    so it is fetched once through the proximity cache and shared across the
    repeats — repeated runs only re-randomise initialisation, sampling and
    noise, and later sweeps over the same graph reuse the cached matrix.

    Repeats are seeded through :func:`repro.utils.rng.repeat_streams`
    (``SeedSequence.spawn``), so runs of adjacent base seeds never collide
    the way the old additive ``seed + repeat`` convention did, and the
    StrucEqu *evaluation* pair sample is held fixed across the repeats —
    the reported SD measures run-to-run variation, not scoring-sample
    noise.  ``evaluation_seed`` overrides the spawned evaluation stream:
    sweeps pass one derived from (base seed, dataset) so *every cell on
    the same graph* scores on the identical pair sample (common random
    numbers — cross-cell comparisons are not blurred by sampling noise
    either).
    """
    spec = get_method(method)
    proximity_cache = _coerce_cache_policy(proximity_cache, legacy_none="default")
    proximity = _resolve_proximity(spec, graph, None, deepwalk_window, proximity_cache)
    train_streams, eval_stream = repeat_streams(seed, repeats)
    if evaluation_seed is not None:
        eval_stream = (
            evaluation_seed
            if isinstance(evaluation_seed, np.random.SeedSequence)
            else np.random.SeedSequence(evaluation_seed)
        )
    scores = []
    for train_stream in train_streams:
        embeddings = embed_with_method(
            method,
            graph,
            training,
            privacy,
            seed=np.random.default_rng(train_stream),
            perturbation=perturbation,
            proximity=proximity,
            deepwalk_window=deepwalk_window,
            proximity_cache=proximity_cache,
            workers=workers,
        )
        # a fresh generator from the *same* stream per repeat: identical
        # evaluation pair sample every time, by construction
        scores.append(
            structural_equivalence_score(
                graph, embeddings, seed=np.random.default_rng(eval_stream)
            )
        )
    summary = summarize_runs(scores)
    return summary.mean, summary.std


def evaluate_link_prediction(
    method: str,
    graph: Graph,
    training: TrainingConfig,
    privacy: PrivacyConfig,
    repeats: int = 3,
    seed: int | np.random.SeedSequence = 0,
    perturbation: str | None = None,
    deepwalk_window: int = 5,
    proximity_cache: "str | ProximityCache" = "off",
    workers: int = 1,
) -> tuple[float, float]:
    """Mean ± SD link-prediction AUC of a method over repeated runs on one graph.

    Each repetition draws a fresh 90/10 split, trains on the training graph
    only, and scores the held-out pairs with the dot-product scorer.  The
    split and the training run of one repeat use *separate* spawned
    streams (the old convention reused one integer seed for both, making
    the split permutation and the weight initialisation draw from
    identical generators).

    Split graphs are throwaway — a new one per repeat — so caching defaults
    to ``"off"``: their proximity matrices are computed ephemerally and
    freed with the repeat rather than pinned in the process-wide default
    cache for the process lifetime.  Pass ``"default"`` or an explicit
    :class:`~repro.proximity.cache.ProximityCache` to opt into caching them
    (e.g. when sweeping several ε values over the same seeds and splits).
    """
    spec = get_method(method)
    proximity_cache = _coerce_cache_policy(proximity_cache, legacy_none="off")
    train_streams, _ = repeat_streams(seed, repeats)
    scores = []
    for train_stream in train_streams:
        split_stream, embed_stream = train_stream.spawn(2)
        split = make_link_prediction_split(graph, seed=np.random.default_rng(split_stream))
        proximity = _resolve_proximity(
            spec, split.training_graph, None, deepwalk_window, proximity_cache
        )
        embeddings = embed_with_method(
            method,
            split.training_graph,
            training,
            privacy,
            seed=np.random.default_rng(embed_stream),
            perturbation=perturbation,
            proximity=proximity,
            deepwalk_window=deepwalk_window,
            proximity_cache=proximity_cache,
            workers=workers,
        )
        scores.append(link_prediction_auc(embeddings, split))
    summary = summarize_runs(scores)
    return summary.mean, summary.std
