"""The method runner: map a method name + graph + budget to embeddings and scores.

This is the glue between the library and the table/figure reproductions.
``embed_with_method`` dispatches over the eight methods of the paper's
evaluation:

* ``se_privgemb_dw`` / ``se_privgemb_deg`` — the proposed method with the
  DeepWalk / degree proximity,
* ``se_gemb_dw`` / ``se_gemb_deg`` — their non-private counterparts,
* ``dpggan``, ``dpgvae``, ``gap``, ``progap`` — the DP baselines.
"""

from __future__ import annotations

import numpy as np

from ..config import PrivacyConfig, TrainingConfig
from ..baselines import get_baseline
from ..evaluation import (
    link_prediction_auc,
    make_link_prediction_split,
    structural_equivalence_score,
)
from ..exceptions import ConfigurationError
from ..embedding import SEGEmbTrainer, SEPrivGEmbTrainer
from ..graph import Graph
from ..proximity import DeepWalkProximity, DegreeProximity, compute_proximity
from ..proximity.base import ProximityMatrix
from ..proximity.cache import ProximityCache
from ..utils.rng import repeat_streams
from ..utils.stats import summarize_runs

__all__ = [
    "METHOD_NAMES",
    "embed_with_method",
    "evaluate_structural_equivalence",
    "evaluate_link_prediction",
]

METHOD_NAMES: tuple[str, ...] = (
    "se_privgemb_dw",
    "se_privgemb_deg",
    "se_gemb_dw",
    "se_gemb_deg",
    "dpggan",
    "dpgvae",
    "gap",
    "progap",
)

_PRIVATE_METHODS = {"se_privgemb_dw", "se_privgemb_deg", "dpggan", "dpgvae", "gap", "progap"}
_SE_METHODS = {"se_privgemb_dw", "se_privgemb_deg", "se_gemb_dw", "se_gemb_deg"}


def _proximity_for(method: str, deepwalk_window: int = 5):
    if method.endswith("_dw"):
        return DeepWalkProximity(window_size=deepwalk_window)
    if method.endswith("_deg"):
        return DegreeProximity()
    raise ConfigurationError(f"method {method!r} has no proximity suffix")


def _resolve_proximity(
    method: str,
    graph: Graph,
    proximity: ProximityMatrix | None,
    deepwalk_window: int,
    proximity_cache: "ProximityCache | None | bool",
) -> ProximityMatrix:
    """Precomputed matrix if given, otherwise the (possibly cached) compute.

    ``proximity_cache`` is tri-state: a :class:`ProximityCache` routes the
    computation through that cache, ``None`` uses the process-wide default
    cache, and ``False`` bypasses caching entirely (the matrix lives only
    as long as its consumer — the right choice for one-shot embeds of
    large graphs or throwaway split graphs).
    """
    if proximity is not None:
        return proximity
    measure = _proximity_for(method, deepwalk_window)
    if proximity_cache is False:
        return measure.compute(graph)
    # compute_proximity is the one cache front door (None -> default cache);
    # NB: an empty ProximityCache is falsy (len 0), so pass it verbatim
    return compute_proximity(
        measure,
        graph,
        cache=proximity_cache if isinstance(proximity_cache, ProximityCache) else None,
    )


def embed_with_method(
    method: str,
    graph: Graph,
    training: TrainingConfig,
    privacy: PrivacyConfig,
    seed: int | np.random.Generator | None = None,
    perturbation: str = "nonzero",
    proximity: ProximityMatrix | None = None,
    deepwalk_window: int = 5,
    proximity_cache: ProximityCache | None | bool = None,
) -> np.ndarray:
    """Produce an embedding matrix for ``graph`` with the named method.

    Parameters
    ----------
    method:
        One of :data:`METHOD_NAMES`.
    graph:
        The (training) graph.
    training / privacy:
        Hyper-parameters; ``privacy`` is ignored by the non-private methods.
    seed:
        Seed or generator for the run.
    perturbation:
        Perturbation strategy for the SE-PrivGEmb variants ("nonzero" or
        "naive"); ignored by every other method.
    proximity:
        Optional precomputed proximity matrix for the SE methods; when
        omitted the matrix is fetched through the proximity cache, so
        repeated sweeps over the same graph never recompute it.  Ignored by
        the baselines.
    deepwalk_window:
        Window size ``T`` of the DeepWalk proximity used by the ``*_dw``
        methods when ``proximity`` is not supplied.
    proximity_cache:
        Cache to route proximity computation through; ``None`` uses the
        process-wide default cache, ``False`` disables caching so the
        matrix is freed with the trainer (one-shot embeds of large
        graphs).
    """
    key = method.strip().lower()
    if key not in METHOD_NAMES:
        raise ConfigurationError(
            f"unknown method {method!r}; available: {', '.join(METHOD_NAMES)}"
        )

    if key in {"se_privgemb_dw", "se_privgemb_deg"}:
        trainer = SEPrivGEmbTrainer(
            graph,
            _resolve_proximity(key, graph, proximity, deepwalk_window, proximity_cache),
            training_config=training,
            privacy_config=privacy,
            perturbation=perturbation,
            seed=seed,
        )
        return trainer.train().embeddings

    if key in {"se_gemb_dw", "se_gemb_deg"}:
        trainer = SEGEmbTrainer(
            graph,
            _resolve_proximity(key, graph, proximity, deepwalk_window, proximity_cache),
            config=training,
            seed=seed,
        )
        return trainer.train().embeddings

    baseline = get_baseline(key, training_config=training, privacy_config=privacy, seed=seed)
    return baseline.fit(graph)


def is_private_method(method: str) -> bool:
    """Return ``True`` if the method consumes the privacy budget."""
    return method.strip().lower() in _PRIVATE_METHODS


def evaluate_structural_equivalence(
    method: str,
    graph: Graph,
    training: TrainingConfig,
    privacy: PrivacyConfig,
    repeats: int = 3,
    seed: int | np.random.SeedSequence = 0,
    perturbation: str = "nonzero",
    deepwalk_window: int = 5,
    proximity_cache: ProximityCache | None | bool = None,
    evaluation_seed: int | np.random.SeedSequence | None = None,
) -> tuple[float, float]:
    """Mean ± SD StrucEqu of a method over repeated runs on one graph.

    The proximity matrix of the SE methods is deterministic given the graph,
    so it is fetched once through the proximity cache and shared across the
    repeats — repeated runs only re-randomise initialisation, sampling and
    noise, and later sweeps over the same graph reuse the cached matrix.

    Repeats are seeded through :func:`repro.utils.rng.repeat_streams`
    (``SeedSequence.spawn``), so runs of adjacent base seeds never collide
    the way the old additive ``seed + repeat`` convention did, and the
    StrucEqu *evaluation* pair sample is held fixed across the repeats —
    the reported SD measures run-to-run variation, not scoring-sample
    noise.  ``evaluation_seed`` overrides the spawned evaluation stream:
    sweeps pass one derived from (base seed, dataset) so *every cell on
    the same graph* scores on the identical pair sample (common random
    numbers — cross-cell comparisons are not blurred by sampling noise
    either).
    """
    key = method.strip().lower()
    proximity = (
        _resolve_proximity(key, graph, None, deepwalk_window, proximity_cache)
        if key in _SE_METHODS
        else None
    )
    train_streams, eval_stream = repeat_streams(seed, repeats)
    if evaluation_seed is not None:
        eval_stream = (
            evaluation_seed
            if isinstance(evaluation_seed, np.random.SeedSequence)
            else np.random.SeedSequence(evaluation_seed)
        )
    scores = []
    for train_stream in train_streams:
        embeddings = embed_with_method(
            method,
            graph,
            training,
            privacy,
            seed=np.random.default_rng(train_stream),
            perturbation=perturbation,
            proximity=proximity,
            deepwalk_window=deepwalk_window,
            proximity_cache=proximity_cache,
        )
        # a fresh generator from the *same* stream per repeat: identical
        # evaluation pair sample every time, by construction
        scores.append(
            structural_equivalence_score(
                graph, embeddings, seed=np.random.default_rng(eval_stream)
            )
        )
    summary = summarize_runs(scores)
    return summary.mean, summary.std


def evaluate_link_prediction(
    method: str,
    graph: Graph,
    training: TrainingConfig,
    privacy: PrivacyConfig,
    repeats: int = 3,
    seed: int | np.random.SeedSequence = 0,
    perturbation: str = "nonzero",
    deepwalk_window: int = 5,
    proximity_cache: ProximityCache | None | bool = None,
) -> tuple[float, float]:
    """Mean ± SD link-prediction AUC of a method over repeated runs on one graph.

    Each repetition draws a fresh 90/10 split, trains on the training graph
    only, and scores the held-out pairs with the dot-product scorer.  The
    split and the training run of one repeat use *separate* spawned
    streams (the old convention reused one integer seed for both, making
    the split permutation and the weight initialisation draw from
    identical generators).

    Split graphs are throwaway — a new one per repeat — so their proximity
    matrices are computed ephemerally and freed with the repeat rather than
    routed into the process-wide default cache, where a large split matrix
    would stay pinned for the process lifetime.  Pass an explicit
    ``proximity_cache`` to opt into caching them (e.g. when sweeping
    several ε values over the same seeds and splits).
    """
    key = method.strip().lower()
    # throwaway split graphs default to the uncached path (False), not the
    # process-wide default cache — an explicit cache is still honoured
    split_cache = proximity_cache if proximity_cache is not None else False
    train_streams, _ = repeat_streams(seed, repeats)
    scores = []
    for train_stream in train_streams:
        split_stream, embed_stream = train_stream.spawn(2)
        split = make_link_prediction_split(graph, seed=np.random.default_rng(split_stream))
        proximity = None
        if key in _SE_METHODS:
            proximity = _resolve_proximity(
                key, split.training_graph, None, deepwalk_window, split_cache
            )
        embeddings = embed_with_method(
            method,
            split.training_graph,
            training,
            privacy,
            seed=np.random.default_rng(embed_stream),
            perturbation=perturbation,
            proximity=proximity,
            deepwalk_window=deepwalk_window,
            proximity_cache=proximity_cache,
        )
        scores.append(link_prediction_auc(embeddings, split))
    summary = summarize_runs(scores)
    return summary.mean, summary.std
