"""The method runner: map a method name + graph + budget to embeddings and scores.

This is the glue between the library and the table/figure reproductions.
``embed_with_method`` dispatches over the eight methods of the paper's
evaluation:

* ``se_privgemb_dw`` / ``se_privgemb_deg`` — the proposed method with the
  DeepWalk / degree proximity,
* ``se_gemb_dw`` / ``se_gemb_deg`` — their non-private counterparts,
* ``dpggan``, ``dpgvae``, ``gap``, ``progap`` — the DP baselines.
"""

from __future__ import annotations

import numpy as np

from ..config import PrivacyConfig, TrainingConfig
from ..baselines import get_baseline
from ..evaluation import (
    link_prediction_auc,
    make_link_prediction_split,
    structural_equivalence_score,
)
from ..exceptions import ConfigurationError
from ..embedding import SEGEmbTrainer, SEPrivGEmbTrainer
from ..graph import Graph
from ..proximity import DeepWalkProximity, DegreeProximity
from ..proximity.base import ProximityMatrix
from ..utils.stats import summarize_runs

__all__ = [
    "METHOD_NAMES",
    "embed_with_method",
    "evaluate_structural_equivalence",
    "evaluate_link_prediction",
]

METHOD_NAMES: tuple[str, ...] = (
    "se_privgemb_dw",
    "se_privgemb_deg",
    "se_gemb_dw",
    "se_gemb_deg",
    "dpggan",
    "dpgvae",
    "gap",
    "progap",
)

_PRIVATE_METHODS = {"se_privgemb_dw", "se_privgemb_deg", "dpggan", "dpgvae", "gap", "progap"}
_SE_METHODS = {"se_privgemb_dw", "se_privgemb_deg", "se_gemb_dw", "se_gemb_deg"}


def _proximity_for(method: str, deepwalk_window: int = 5):
    if method.endswith("_dw"):
        return DeepWalkProximity(window_size=deepwalk_window)
    if method.endswith("_deg"):
        return DegreeProximity()
    raise ConfigurationError(f"method {method!r} has no proximity suffix")


def embed_with_method(
    method: str,
    graph: Graph,
    training: TrainingConfig,
    privacy: PrivacyConfig,
    seed: int | np.random.Generator | None = None,
    perturbation: str = "nonzero",
    proximity: ProximityMatrix | None = None,
) -> np.ndarray:
    """Produce an embedding matrix for ``graph`` with the named method.

    Parameters
    ----------
    method:
        One of :data:`METHOD_NAMES`.
    graph:
        The (training) graph.
    training / privacy:
        Hyper-parameters; ``privacy`` is ignored by the non-private methods.
    seed:
        Seed or generator for the run.
    perturbation:
        Perturbation strategy for the SE-PrivGEmb variants ("nonzero" or
        "naive"); ignored by every other method.
    proximity:
        Optional precomputed proximity matrix for the SE methods.  The
        measures are closed-form and deterministic, so callers that embed
        the same graph repeatedly (e.g. repeated evaluation runs) can
        compute the matrix once and share it; ignored by the baselines.
    """
    key = method.strip().lower()
    if key not in METHOD_NAMES:
        raise ConfigurationError(
            f"unknown method {method!r}; available: {', '.join(METHOD_NAMES)}"
        )

    if key in {"se_privgemb_dw", "se_privgemb_deg"}:
        trainer = SEPrivGEmbTrainer(
            graph,
            proximity if proximity is not None else _proximity_for(key),
            training_config=training,
            privacy_config=privacy,
            perturbation=perturbation,
            seed=seed,
        )
        return trainer.train().embeddings

    if key in {"se_gemb_dw", "se_gemb_deg"}:
        trainer = SEGEmbTrainer(
            graph,
            proximity if proximity is not None else _proximity_for(key),
            config=training,
            seed=seed,
        )
        return trainer.train().embeddings

    baseline = get_baseline(key, training_config=training, privacy_config=privacy, seed=seed)
    return baseline.fit(graph)


def is_private_method(method: str) -> bool:
    """Return ``True`` if the method consumes the privacy budget."""
    return method.strip().lower() in _PRIVATE_METHODS


def evaluate_structural_equivalence(
    method: str,
    graph: Graph,
    training: TrainingConfig,
    privacy: PrivacyConfig,
    repeats: int = 3,
    seed: int = 0,
    perturbation: str = "nonzero",
) -> tuple[float, float]:
    """Mean ± SD StrucEqu of a method over repeated runs on one graph.

    The proximity matrix of the SE methods is deterministic given the graph,
    so it is computed once here and shared across the repeats — repeated
    runs only re-randomise initialisation, sampling and noise.
    """
    key = method.strip().lower()
    proximity = _proximity_for(key).compute(graph) if key in _SE_METHODS else None
    scores = []
    for repeat in range(repeats):
        embeddings = embed_with_method(
            method,
            graph,
            training,
            privacy,
            seed=seed + repeat,
            perturbation=perturbation,
            proximity=proximity,
        )
        scores.append(structural_equivalence_score(graph, embeddings, seed=seed + repeat))
    summary = summarize_runs(scores)
    return summary.mean, summary.std


def evaluate_link_prediction(
    method: str,
    graph: Graph,
    training: TrainingConfig,
    privacy: PrivacyConfig,
    repeats: int = 3,
    seed: int = 0,
    perturbation: str = "nonzero",
) -> tuple[float, float]:
    """Mean ± SD link-prediction AUC of a method over repeated runs on one graph.

    Each repetition draws a fresh 90/10 split, trains on the training graph
    only, and scores the held-out pairs with the dot-product scorer.
    """
    scores = []
    for repeat in range(repeats):
        split = make_link_prediction_split(graph, seed=seed + repeat)
        embeddings = embed_with_method(
            method,
            split.training_graph,
            training,
            privacy,
            seed=seed + repeat,
            perturbation=perturbation,
        )
        scores.append(link_prediction_auc(embeddings, split))
    summary = summarize_runs(scores)
    return summary.mean, summary.std
