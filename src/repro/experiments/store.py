"""Content-addressed on-disk store of completed experiment cells.

The orchestrator (:mod:`repro.experiments.orchestrator`) expands every
table/figure/ablation sweep into independent cells, each identified by a
content fingerprint over everything that determines its result: the kind of
evaluation, the method, the dataset's content hash, the full training and
privacy configuration, the repeat count and the seed.  :class:`RunStore`
memoizes the finished cells behind that fingerprint, mirroring the hashing
discipline of :mod:`repro.proximity.cache`:

* one **atomic JSON file per cell** (temp file + ``os.replace``), so a
  killed sweep never leaves a half-written result and concurrent workers
  can publish into the same directory without coordination;
* a **memory tier** for the hot loop of one process, backed by the
  optional directory tier for cross-invocation resume;
* **corruption tolerance** — an unreadable or foreign payload degrades to
  a cache miss (and is dropped, best effort) instead of killing the sweep.

A killed sweep resumed against the same store therefore recomputes zero
completed cells: the orchestrator checks the store before dispatching and
re-renders tables directly from the stored results.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from collections.abc import Iterator, Mapping
from typing import Any

from ..exceptions import OrchestrationError
from ..utils.fileio import atomic_write_path, tmp_file_pattern
from ..utils.logging import get_logger

__all__ = ["RunStore"]

_LOGGER = get_logger("experiments.store")

#: the store's own file naming: <64-hex cell fingerprint>.json
_STORE_FILE_PATTERN = re.compile(r"[0-9a-f]{64}\.json")
#: in-flight temp files left behind by writers that died before the rename
_TMP_FILE_PATTERN = tmp_file_pattern(r"[0-9a-f]{64}", ".json")

#: payload schema version; a bumped format simply misses the old files
_PAYLOAD_VERSION = 1


class RunStore:
    """Two-tier (memory + optional disk) store of finished experiment cells.

    Parameters
    ----------
    directory:
        Optional directory for the on-disk tier.  Created on first store;
        ``None`` keeps the store purely in-memory (still useful for reuse
        inside one process, e.g. re-rendering several tables from one
        sweep).
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._memory: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> dict[str, Any] | None:
        """Return the stored result for a cell fingerprint, or ``None``."""
        key = _check_key(key)
        if key in self._memory:
            self.hits += 1
            return dict(self._memory[key])
        path = self._disk_path(key)
        if path is not None and path.exists():
            result = self._load(path, key)
            if result is not None:
                self._memory[key] = result
                self.hits += 1
                return dict(result)
        self.misses += 1
        return None

    def put(self, key: str, result: Mapping[str, Any], spec: Mapping[str, Any] | None = None) -> None:
        """Store one finished cell (memory + atomic disk write).

        ``spec`` is an optional human-readable description of the cell,
        written alongside the result for debuggability; it is never read
        back into the result.
        """
        key = _check_key(key)
        self._memory[key] = dict(result)
        path = self._disk_path(key)
        if path is not None:
            payload = {
                "version": _PAYLOAD_VERSION,
                "key": key,
                "result": dict(result),
            }
            if spec is not None:
                payload["spec"] = dict(spec)
            try:
                self.directory.mkdir(parents=True, exist_ok=True)
                _atomic_write_json(path, payload)
            except (OSError, TypeError, ValueError) as exc:  # repro-lint: disable=RETRY001 -- the disk tier is best-effort by contract: the memory tier already holds the result, so a full/read-only volume must degrade to a warning, and retrying against it would only stall the sweep
                # full/read-only volume or unserialisable extras: the disk
                # tier is best effort — the memory tier already has it
                _LOGGER.warning("run store disk write failed for %s: %s", path, exc)
        self.stores += 1

    def __contains__(self, key: str) -> bool:
        """True only if :meth:`get` would return a result.

        A disk entry is *validated* (and pulled into the memory tier), not
        just stat-ed — a corrupt or foreign file must not make containment
        and retrieval disagree.
        """
        key = _check_key(key)
        if key in self._memory:
            return True
        path = self._disk_path(key)
        if path is None or not path.exists():
            return False
        result = self._load(path, key)
        if result is None:
            return False
        self._memory[key] = result
        return True

    # ------------------------------------------------------------------ #
    # maintenance / introspection
    # ------------------------------------------------------------------ #
    def keys(self) -> set[str]:
        """Fingerprints of every stored cell (memory plus disk)."""
        known = set(self._memory)
        if self.directory is not None and self.directory.exists():
            for path in self.directory.glob("*.json"):
                if _STORE_FILE_PATTERN.fullmatch(path.name):
                    known.add(path.stem)
        return known

    def clear(self) -> None:
        """Empty both tiers and reset the statistics.

        Only files matching this store's own ``<fingerprint>.json`` naming
        (and its orphaned temp files) are removed — a directory shared with
        other artifacts is left alone.
        """
        self._memory.clear()
        if self.directory is not None and self.directory.exists():
            for path in self.directory.glob("*.json"):
                if _STORE_FILE_PATTERN.fullmatch(path.name) or _TMP_FILE_PATTERN.fullmatch(
                    path.name
                ):
                    try:
                        path.unlink()
                    except FileNotFoundError:  # concurrent clear won
                        pass
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def __len__(self) -> int:
        return len(self.keys())

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.keys()))

    def __repr__(self) -> str:
        return (
            f"RunStore(items={len(self)}, hits={self.hits}, misses={self.misses}, "
            f"directory={str(self.directory) if self.directory else None!r})"
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _disk_path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"{key}.json"

    def _load(self, path: Path, key: str) -> dict[str, Any] | None:
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if (
                not isinstance(payload, dict)
                or payload.get("version") != _PAYLOAD_VERSION
                or payload.get("key") != key
                or not isinstance(payload.get("result"), dict)
            ):
                raise ValueError("foreign or incompatible run store payload")
        except FileNotFoundError:
            # another process cleared between the existence check and the
            # read — a plain miss
            return None
        except (OSError, ValueError):  # repro-lint: disable=RETRY001 -- a cache read that fails is a miss by design: the cell is recomputed from scratch, which is strictly more reliable than re-reading a payload that just proved unreadable
            _LOGGER.warning("dropping unreadable run store entry %s", path)
            try:
                path.unlink(missing_ok=True)
            except OSError:  # repro-lint: disable=RETRY001 -- best-effort eviction of an already-corrupt entry; if the unlink fails the entry simply stays and is dropped again next read
                pass
            return None
        return dict(payload["result"])


def _check_key(key: str) -> str:
    if not isinstance(key, str) or not re.fullmatch(r"[0-9a-f]{64}", key):
        raise OrchestrationError(
            f"run store keys are 64-hex cell fingerprints, got {key!r}"
        )
    return key


def _atomic_write_json(path: Path, payload: Mapping[str, Any]) -> None:
    with atomic_write_path(path) as tmp_path:
        with tmp_path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
