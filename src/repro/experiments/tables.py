"""Reproductions of Tables II-VI: parameter studies and the perturbation ablation.

Each function sweeps one hyper-parameter of SE-PrivGEmb (batch size B,
learning rate η, clipping threshold C, negative samples k) or the
perturbation strategy, over the datasets of the supplied
:class:`ExperimentSettings`, and returns a :class:`ResultTable` whose rows
mirror the corresponding paper table (average StrucEqu ± SD per cell).

The sweeps expand into flat lists of :class:`RunSpec` cells and delegate to
:func:`repro.experiments.orchestrator.execute`: ``workers=1`` (default)
preserves the serial path, larger values fan the independent cells out over
a process pool, and ``store=`` makes the sweep resumable (completed cells
are never recomputed).  The executed :class:`SweepReport` is attached to
the returned table as ``table.run_report``.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Sequence

from .configs import ExperimentSettings
from .orchestrator import SweepReport, execute, specs_for_settings
from .results import ResultTable
from .store import RunStore

__all__ = [
    "table_batch_size",
    "table_learning_rate",
    "table_clipping",
    "table_negative_samples",
    "table_perturbation",
]

# The two SE-PrivGEmb variants every parameter table reports.
_VARIANTS = ("se_privgemb_dw", "se_privgemb_deg")

# Paper sweep values (used as defaults; callers can narrow them for speed).
PAPER_BATCH_SIZES: tuple[int, ...] = (32, 64, 128, 256, 512, 1024)
PAPER_LEARNING_RATES: tuple[float, ...] = (0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3)
PAPER_CLIPPING_THRESHOLDS: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
PAPER_NEGATIVE_SAMPLES: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7)
PAPER_PERTURBATION_EPSILONS: tuple[float, ...] = (0.5, 2.0, 3.5)


def _attach_report(table: ResultTable, report: SweepReport) -> ResultTable:
    table.run_report = report
    return table


def _sweep(
    settings: ExperimentSettings,
    title: str,
    parameter_name: str,
    values: Sequence,
    apply_value,
    workers: int = 1,
    store: RunStore | str | Path | None = None,
) -> ResultTable:
    """Shared sweep: expand dataset × variant × value cells, then execute."""
    specs, rows = [], []
    for dataset_name in settings.datasets:
        for variant in _VARIANTS:
            for value in values:
                training, privacy, perturbation = apply_value(settings, value)
                specs.append(
                    specs_for_settings(
                        "strucequ",
                        variant,
                        dataset_name,
                        settings,
                        training=training,
                        privacy=privacy,
                        perturbation=perturbation,
                    )
                )
                rows.append({"dataset": dataset_name, "method": variant, parameter_name: value})
    report = execute(specs, workers=workers, store=store)
    table = ResultTable(title)
    for row, result in zip(rows, report.results, strict=True):
        table.add_row(
            {**row, "strucequ_mean": result["mean"], "strucequ_std": result["std"]}
        )
    return _attach_report(table, report)


def table_batch_size(
    settings: ExperimentSettings | None = None,
    batch_sizes: Sequence[int] = PAPER_BATCH_SIZES,
    workers: int = 1,
    store: RunStore | str | Path | None = None,
) -> ResultTable:
    """Table II: StrucEqu versus batch size ``B`` at ε = 3.5."""
    settings = settings or ExperimentSettings()

    def apply(s: ExperimentSettings, value: int):
        return s.training.with_updates(batch_size=int(value)), s.privacy, "nonzero"

    return _sweep(
        settings,
        "Table II: StrucEqu vs batch size B",
        "batch_size",
        batch_sizes,
        apply,
        workers=workers,
        store=store,
    )


def table_learning_rate(
    settings: ExperimentSettings | None = None,
    learning_rates: Sequence[float] = PAPER_LEARNING_RATES,
    workers: int = 1,
    store: RunStore | str | Path | None = None,
) -> ResultTable:
    """Table III: StrucEqu versus learning rate ``η`` at ε = 3.5."""
    settings = settings or ExperimentSettings()

    def apply(s: ExperimentSettings, value: float):
        return s.training.with_updates(learning_rate=float(value)), s.privacy, "nonzero"

    return _sweep(
        settings,
        "Table III: StrucEqu vs learning rate η",
        "learning_rate",
        learning_rates,
        apply,
        workers=workers,
        store=store,
    )


def table_clipping(
    settings: ExperimentSettings | None = None,
    thresholds: Sequence[float] = PAPER_CLIPPING_THRESHOLDS,
    workers: int = 1,
    store: RunStore | str | Path | None = None,
) -> ResultTable:
    """Table IV: StrucEqu versus gradient clipping threshold ``C`` at ε = 3.5."""
    settings = settings or ExperimentSettings()

    def apply(s: ExperimentSettings, value: float):
        privacy = s.privacy.__class__(
            epsilon=s.privacy.epsilon,
            delta=s.privacy.delta,
            noise_multiplier=s.privacy.noise_multiplier,
            clipping_threshold=float(value),
            accountant=s.privacy.accountant,
        )
        return s.training, privacy, "nonzero"

    return _sweep(
        settings,
        "Table IV: StrucEqu vs clipping threshold C",
        "clipping_threshold",
        thresholds,
        apply,
        workers=workers,
        store=store,
    )


def table_negative_samples(
    settings: ExperimentSettings | None = None,
    negative_samples: Sequence[int] = PAPER_NEGATIVE_SAMPLES,
    workers: int = 1,
    store: RunStore | str | Path | None = None,
) -> ResultTable:
    """Table V: StrucEqu versus negative sampling number ``k`` at ε = 3.5."""
    settings = settings or ExperimentSettings()

    def apply(s: ExperimentSettings, value: int):
        return s.training.with_updates(negative_samples=int(value)), s.privacy, "nonzero"

    return _sweep(
        settings,
        "Table V: StrucEqu vs negative samples k",
        "negative_samples",
        negative_samples,
        apply,
        workers=workers,
        store=store,
    )


def table_perturbation(
    settings: ExperimentSettings | None = None,
    epsilons: Sequence[float] = PAPER_PERTURBATION_EPSILONS,
    workers: int = 1,
    store: RunStore | str | Path | None = None,
) -> ResultTable:
    """Table VI: naive (Eq. 6) versus non-zero (Eq. 9) perturbation.

    For each dataset, SE-PrivGEmb variant and privacy budget, both
    strategies are trained and scored; the non-zero strategy should dominate
    at every ε, reproducing the paper's ablation.
    """
    settings = settings or ExperimentSettings()
    strategies = ("naive", "nonzero")
    specs, rows = [], []
    for dataset_name in settings.datasets:
        for variant in _VARIANTS:
            for epsilon in epsilons:
                privacy = settings.privacy.with_epsilon(float(epsilon))
                rows.append(
                    {"dataset": dataset_name, "method": variant, "epsilon": float(epsilon)}
                )
                for strategy in strategies:
                    specs.append(
                        specs_for_settings(
                            "strucequ",
                            variant,
                            dataset_name,
                            settings,
                            privacy=privacy,
                            perturbation=strategy,
                        )
                    )
    report = execute(specs, workers=workers, store=store)
    table = ResultTable("Table VI: naive vs non-zero perturbation")
    for row_index, row in enumerate(rows):
        for offset, strategy in enumerate(strategies):
            result = report.results[row_index * len(strategies) + offset]
            row[f"{strategy}_mean"] = result["mean"]
            row[f"{strategy}_std"] = result["std"]
        table.add_row(row)
    return _attach_report(table, report)
