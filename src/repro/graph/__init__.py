"""Graph substrate: in-memory graphs, generators, datasets, walks, sampling."""

from .graph import Graph
from .generators import (
    erdos_renyi_graph,
    barabasi_albert_graph,
    watts_strogatz_graph,
    powerlaw_cluster_graph,
    stochastic_block_model_graph,
    grid_with_rewiring_graph,
)
from .datasets import DatasetInfo, available_datasets, load_dataset
from .io import read_edge_list, write_edge_list
from .random_walk import RandomWalker
from .sampling import (
    EdgeSubgraph,
    generate_disjoint_subgraphs,
    generate_disjoint_subgraph_arrays,
    SubgraphSampler,
    UnigramNegativeSampler,
    ProximityNegativeSampler,
)
from .validation import validate_simple_graph

__all__ = [
    "Graph",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "powerlaw_cluster_graph",
    "stochastic_block_model_graph",
    "grid_with_rewiring_graph",
    "DatasetInfo",
    "available_datasets",
    "load_dataset",
    "read_edge_list",
    "write_edge_list",
    "RandomWalker",
    "EdgeSubgraph",
    "generate_disjoint_subgraphs",
    "generate_disjoint_subgraph_arrays",
    "SubgraphSampler",
    "UnigramNegativeSampler",
    "ProximityNegativeSampler",
    "validate_simple_graph",
]
