"""Dataset registry with synthetic stand-ins for the paper's six networks.

The paper evaluates on Chameleon, PPI, Power, Arxiv, BlogCatalog and DBLP,
all downloaded from SNAP / KONECT / BioGRID mirrors.  This environment has
no network access, so :func:`load_dataset` builds a *synthetic stand-in* for
each name: a graph from the same topology family (scale-free web graph,
power-law biological network, quasi-planar grid, collaboration network,
dense social network, large sparse scholarly network), scaled down so the
full experiment grid runs on a laptop.

The substitution is documented in ``DESIGN.md`` at the repository root
(which also describes the experiment orchestration that consumes these
graphs).  Every generator keeps the
*relative* density ordering of the originals (BlogCatalog densest, Power and
DBLP sparsest), which is what drives the qualitative behaviour of the
methods being compared.

Scale is controlled by the ``scale`` argument: ``scale=1.0`` produces the
default laptop-sized graphs listed in :data:`DATASETS`; larger values grow
the node count proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from ..exceptions import DatasetError
from ..utils.rng import ensure_rng
from .generators import (
    barabasi_albert_graph,
    grid_with_rewiring_graph,
    powerlaw_cluster_graph,
    stochastic_block_model_graph,
    watts_strogatz_graph,
)
from .graph import Graph

__all__ = ["DatasetInfo", "available_datasets", "load_dataset", "DATASETS"]


@dataclass(frozen=True)
class DatasetInfo:
    """Metadata describing one named dataset stand-in.

    Attributes
    ----------
    name:
        Registry key (lower-case).
    description:
        What the original dataset is and what the stand-in generator does.
    paper_num_nodes / paper_num_edges:
        The sizes reported in the paper (Section VI-A), kept for reference.
    default_num_nodes:
        Node count produced at ``scale=1.0``.
    builder:
        Callable ``(num_nodes, rng) -> Graph`` constructing the stand-in.
    """

    name: str
    description: str
    paper_num_nodes: int
    paper_num_edges: int
    default_num_nodes: int
    builder: Callable[[int, np.random.Generator], Graph]


def _build_chameleon(num_nodes: int, rng: np.random.Generator) -> Graph:
    # Wikipedia article graph: dense, scale-free, highly clustered.
    return powerlaw_cluster_graph(
        num_nodes, edges_per_node=8, triangle_probability=0.5, seed=rng, name="chameleon"
    )


def _build_ppi(num_nodes: int, rng: np.random.Generator) -> Graph:
    # Protein-protein interaction network: power-law with moderate clustering.
    return powerlaw_cluster_graph(
        num_nodes, edges_per_node=6, triangle_probability=0.3, seed=rng, name="ppi"
    )


def _build_power(num_nodes: int, rng: np.random.Generator) -> Graph:
    # Western US power grid: sparse quasi-planar lattice with some rewiring.
    cols = max(2, int(np.sqrt(num_nodes)))
    rows = max(2, num_nodes // cols)
    return grid_with_rewiring_graph(rows, cols, rewire_probability=0.1, seed=rng, name="power")


def _build_arxiv(num_nodes: int, rng: np.random.Generator) -> Graph:
    # GR-QC collaboration network: power-law, strong triadic closure, sparse.
    return powerlaw_cluster_graph(
        num_nodes, edges_per_node=3, triangle_probability=0.6, seed=rng, name="arxiv"
    )


def _build_blogcatalog(num_nodes: int, rng: np.random.Generator) -> Graph:
    # Blogger social network: very dense scale-free graph.
    return barabasi_albert_graph(num_nodes, edges_per_node=16, seed=rng, name="blogcatalog")


def _build_dblp(num_nodes: int, rng: np.random.Generator) -> Graph:
    # Scholarly network: large, sparse, community structured.
    num_blocks = max(2, num_nodes // 250)
    base = num_nodes // num_blocks
    sizes = [base] * num_blocks
    sizes[0] += num_nodes - base * num_blocks
    return stochastic_block_model_graph(
        sizes,
        intra_probability=min(1.0, 8.0 / max(base, 1)),
        inter_probability=min(1.0, 0.4 / max(num_nodes, 1)),
        seed=rng,
        name="dblp",
    )


def _build_smallworld(num_nodes: int, rng: np.random.Generator) -> Graph:
    # Extra synthetic dataset (not in the paper) handy for quick demos/tests.
    return watts_strogatz_graph(
        num_nodes, neighbors=6, rewire_probability=0.2, seed=rng, name="smallworld"
    )


DATASETS: dict[str, DatasetInfo] = {
    "chameleon": DatasetInfo(
        name="chameleon",
        description=(
            "Wikipedia 'chameleon' article network (2,277 nodes / 31,421 edges in the "
            "paper); stand-in: Holme-Kim power-law cluster graph, dense regime."
        ),
        paper_num_nodes=2_277,
        paper_num_edges=31_421,
        default_num_nodes=300,
        builder=_build_chameleon,
    ),
    "ppi": DatasetInfo(
        name="ppi",
        description=(
            "Human protein-protein interaction network (3,890 / 76,584); stand-in: "
            "Holme-Kim power-law cluster graph, moderate clustering."
        ),
        paper_num_nodes=3_890,
        paper_num_edges=76_584,
        default_num_nodes=350,
        builder=_build_ppi,
    ),
    "power": DatasetInfo(
        name="power",
        description=(
            "Western US power grid (4,941 / 6,594); stand-in: 2-D lattice with 10% "
            "rewiring, sparse quasi-planar regime."
        ),
        paper_num_nodes=4_941,
        paper_num_edges=6_594,
        default_num_nodes=400,
        builder=_build_power,
    ),
    "arxiv": DatasetInfo(
        name="arxiv",
        description=(
            "arXiv GR-QC collaboration network (5,242 / 14,496); stand-in: power-law "
            "cluster graph with strong triadic closure."
        ),
        paper_num_nodes=5_242,
        paper_num_edges=14_496,
        default_num_nodes=400,
        builder=_build_arxiv,
    ),
    "blogcatalog": DatasetInfo(
        name="blogcatalog",
        description=(
            "BlogCatalog social network (10,312 / 333,983); stand-in: Barabási-Albert "
            "graph in the dense regime."
        ),
        paper_num_nodes=10_312,
        paper_num_edges=333_983,
        default_num_nodes=450,
        builder=_build_blogcatalog,
    ),
    "dblp": DatasetInfo(
        name="dblp",
        description=(
            "DBLP scholarly network (2,244,021 / 4,354,534); stand-in: stochastic "
            "block model, sparse community-structured regime at reduced scale."
        ),
        paper_num_nodes=2_244_021,
        paper_num_edges=4_354_534,
        default_num_nodes=500,
        builder=_build_dblp,
    ),
    "smallworld": DatasetInfo(
        name="smallworld",
        description=(
            "Extra Watts-Strogatz small-world graph (not in the paper), useful for "
            "quick demos and tests."
        ),
        paper_num_nodes=0,
        paper_num_edges=0,
        default_num_nodes=200,
        builder=_build_smallworld,
    ),
}


def available_datasets() -> list[str]:
    """Return the sorted list of registered dataset names."""
    return sorted(DATASETS)


def load_dataset(
    name: str,
    scale: float = 1.0,
    num_nodes: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> Graph:
    """Build the synthetic stand-in for a named dataset.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (case-insensitive).
    scale:
        Multiplier on the default node count; ignored when ``num_nodes`` is
        given explicitly.
    num_nodes:
        Exact node count override.
    seed:
        Seed or generator for reproducible construction.  The default of 0
        makes repeated calls return identical graphs, mirroring a fixed
        on-disk dataset.
    """
    key = name.strip().lower()
    if key not in DATASETS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    info = DATASETS[key]
    rng = ensure_rng(seed)
    n = int(num_nodes) if num_nodes is not None else max(20, int(round(info.default_num_nodes * scale)))
    if n < 20:
        raise DatasetError(f"num_nodes must be at least 20, got {n}")
    return info.builder(n, rng)
