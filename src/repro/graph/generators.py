"""Synthetic graph generators.

The paper evaluates on six public networks (Chameleon, PPI, Power, Arxiv,
BlogCatalog, DBLP).  Those downloads are not available offline, so the
dataset registry in :mod:`repro.graph.datasets` builds synthetic stand-ins
from the generators below, each matching the topology family of the original
(dense scale-free web graph, power-law biological network, sparse
quasi-planar grid, collaboration network, dense social network, large sparse
citation network).

All generators return :class:`repro.graph.Graph` instances, take an explicit
``rng``/``seed`` and never touch global random state.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import GraphError
from ..utils.rng import ensure_rng
from .graph import Graph

__all__ = [
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "powerlaw_cluster_graph",
    "stochastic_block_model_graph",
    "grid_with_rewiring_graph",
]


def erdos_renyi_graph(
    num_nodes: int,
    edge_probability: float,
    seed: int | np.random.Generator | None = None,
    name: str = "erdos-renyi",
) -> Graph:
    """G(n, p) random graph.

    Every unordered pair is an edge independently with probability
    ``edge_probability``.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError(f"edge_probability must be in [0, 1], got {edge_probability}")
    rng = ensure_rng(seed)
    iu, ju = np.triu_indices(num_nodes, k=1)
    mask = rng.random(iu.shape[0]) < edge_probability
    edges = list(zip(iu[mask].tolist(), ju[mask].tolist(), strict=True))
    return Graph(num_nodes, edges, name=name)


def barabasi_albert_graph(
    num_nodes: int,
    edges_per_node: int,
    seed: int | np.random.Generator | None = None,
    name: str = "barabasi-albert",
    method: str = "sequential",
) -> Graph:
    """Preferential-attachment (scale-free) graph.

    Each new node attaches to ``edges_per_node`` existing nodes with
    probability proportional to their current degree.  Produces the heavy
    tailed degree distributions typical of web and social networks
    (Chameleon, BlogCatalog).

    ``method`` selects the construction algorithm:

    * ``"sequential"`` (default) — the original repeated-node-list loop.
      Its random stream is pinned: existing seeds keep producing the exact
      graphs they always did.
    * ``"batched"`` — the Batagelj–Brandes formulation: all attachment
      draws are sampled in one vectorised pass and resolved by pointer
      chasing, so million-node graphs build in seconds instead of minutes.
      Same degree-distribution family, but a *different* (and explicitly
      versioned) random stream, and occasional within-batch collisions mean
      a node can end up with slightly fewer than ``edges_per_node`` distinct
      attachments.
    """
    m = int(edges_per_node)
    if m < 1:
        raise GraphError(f"edges_per_node must be >= 1, got {m}")
    if num_nodes <= m:
        raise GraphError(
            f"num_nodes ({num_nodes}) must exceed edges_per_node ({m})"
        )
    if method not in {"sequential", "batched"}:
        raise GraphError(
            f"method must be 'sequential' or 'batched', got {method!r}"
        )
    rng = ensure_rng(seed)
    if method == "batched":
        return _barabasi_albert_batched(num_nodes, m, rng, name)
    edges: list[tuple[int, int]] = []
    # repeated-node list implements preferential attachment in O(1) per draw
    repeated: list[int] = []
    targets = list(range(m))
    for new_node in range(m, num_nodes):
        chosen: set[int] = set()
        for t in targets:
            edges.append((new_node, t))
            chosen.add(t)
        repeated.extend(chosen)
        repeated.extend([new_node] * len(chosen))
        targets = []
        while len(targets) < m:
            candidate = int(repeated[int(rng.integers(0, len(repeated)))])
            if candidate not in targets and candidate != new_node:
                targets.append(candidate)
    return Graph(num_nodes, edges, name=name)


def _barabasi_albert_batched(num_nodes: int, m: int, rng: np.random.Generator, name: str) -> Graph:
    """Batagelj–Brandes preferential attachment, fully vectorised.

    Edge ``e`` (0-indexed) belongs to node ``m + e // m``.  Node ``m``
    attaches deterministically to ``0 .. m-1``; every later edge draws one
    uniform position ``r`` over the ``2e`` endpoints written so far, which
    is exactly degree-proportional sampling over the current multigraph.
    Even positions resolve to a known source immediately; odd positions
    point at an earlier edge's target and are chased iteratively (chains
    are geometrically short, so the loop runs a handful of passes
    regardless of graph size).  Self-loops are dropped and the Graph
    constructor collapses duplicate attachments.
    """
    total = (num_nodes - m) * m
    sources = m + np.arange(total, dtype=np.int64) // m
    targets = np.empty(total, dtype=np.int64)
    targets[:m] = np.arange(m, dtype=np.int64)
    if total > m:
        draws = rng.integers(0, 2 * np.arange(m, total, dtype=np.int64))
        idx = np.arange(m, total, dtype=np.int64)
        ref = draws
        while idx.size:
            even = (ref & 1) == 0
            if even.any():
                targets[idx[even]] = sources[ref[even] >> 1]
            odd_idx = idx[~even]
            j = (ref[~even] - 1) >> 1  # earlier edge whose target we need
            known = j < m
            targets[odd_idx[known]] = j[known]
            idx = odd_idx[~known]
            ref = draws[j[~known] - m]
    keep = sources != targets
    edges = np.stack([sources[keep], targets[keep]], axis=1)
    return Graph(num_nodes, edges, name=name)


def watts_strogatz_graph(
    num_nodes: int,
    neighbors: int,
    rewire_probability: float,
    seed: int | np.random.Generator | None = None,
    name: str = "watts-strogatz",
) -> Graph:
    """Small-world ring lattice with random rewiring.

    Starts from a ring where every node connects to its ``neighbors`` nearest
    nodes (must be even) and rewires each edge with the given probability.
    """
    k = int(neighbors)
    if k % 2 != 0 or k < 2:
        raise GraphError(f"neighbors must be a positive even integer, got {k}")
    if k >= num_nodes:
        raise GraphError(f"neighbors ({k}) must be smaller than num_nodes ({num_nodes})")
    if not 0.0 <= rewire_probability <= 1.0:
        raise GraphError(
            f"rewire_probability must be in [0, 1], got {rewire_probability}"
        )
    rng = ensure_rng(seed)
    edge_set: set[tuple[int, int]] = set()
    for u in range(num_nodes):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % num_nodes
            edge_set.add((min(u, v), max(u, v)))
    edges = list(edge_set)
    rewired: set[tuple[int, int]] = set()
    for u, v in edges:
        if rng.random() < rewire_probability:
            for _ in range(50):
                w = int(rng.integers(0, num_nodes))
                key = (min(u, w), max(u, w))
                if w != u and key not in rewired and key not in edge_set:
                    rewired.add(key)
                    break
            else:
                rewired.add((u, v))
        else:
            rewired.add((u, v))
    return Graph(num_nodes, list(rewired), name=name)


def powerlaw_cluster_graph(
    num_nodes: int,
    edges_per_node: int,
    triangle_probability: float,
    seed: int | np.random.Generator | None = None,
    name: str = "powerlaw-cluster",
) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert, but after each preferential attachment step a
    triangle is closed with probability ``triangle_probability``.  This is
    the regime of protein-interaction and collaboration networks (PPI,
    Arxiv).
    """
    m = int(edges_per_node)
    if m < 1:
        raise GraphError(f"edges_per_node must be >= 1, got {m}")
    if num_nodes <= m:
        raise GraphError(f"num_nodes ({num_nodes}) must exceed edges_per_node ({m})")
    if not 0.0 <= triangle_probability <= 1.0:
        raise GraphError(
            f"triangle_probability must be in [0, 1], got {triangle_probability}"
        )
    rng = ensure_rng(seed)
    edge_set: set[tuple[int, int]] = set()
    neighbors: list[set[int]] = [set() for _ in range(num_nodes)]
    repeated: list[int] = list(range(m))

    def add_edge(u: int, v: int) -> None:
        if u == v:
            return
        key = (min(u, v), max(u, v))
        if key in edge_set:
            return
        edge_set.add(key)
        neighbors[u].add(v)
        neighbors[v].add(u)

    for new_node in range(m, num_nodes):
        first_target = int(repeated[int(rng.integers(0, len(repeated)))])
        added: set[int] = set()
        target = first_target
        for _ in range(m):
            add_edge(new_node, target)
            added.add(target)
            close_triangle = rng.random() < triangle_probability and neighbors[target]
            if close_triangle:
                candidates = [w for w in neighbors[target] if w != new_node and w not in added]
                if candidates:
                    tri = int(candidates[int(rng.integers(0, len(candidates)))])
                    add_edge(new_node, tri)
                    added.add(tri)
            target = int(repeated[int(rng.integers(0, len(repeated)))])
        repeated.extend(added)
        repeated.extend([new_node] * max(1, len(added)))
    return Graph(num_nodes, list(edge_set), name=name)


def stochastic_block_model_graph(
    block_sizes: list[int],
    intra_probability: float,
    inter_probability: float,
    seed: int | np.random.Generator | None = None,
    name: str = "sbm",
) -> Graph:
    """Stochastic block model with uniform intra/inter-block probabilities.

    Used as a community-structured stand-in (DBLP-like scholarly network at
    reduced scale).
    """
    if not block_sizes or any(size <= 0 for size in block_sizes):
        raise GraphError(f"block_sizes must be positive, got {block_sizes}")
    for p, label in ((intra_probability, "intra"), (inter_probability, "inter")):
        if not 0.0 <= p <= 1.0:
            raise GraphError(f"{label}_probability must be in [0, 1], got {p}")
    rng = ensure_rng(seed)
    num_nodes = int(sum(block_sizes))
    labels = np.repeat(np.arange(len(block_sizes)), block_sizes)
    iu, ju = np.triu_indices(num_nodes, k=1)
    same_block = labels[iu] == labels[ju]
    probs = np.where(same_block, intra_probability, inter_probability)
    mask = rng.random(iu.shape[0]) < probs
    edges = list(zip(iu[mask].tolist(), ju[mask].tolist(), strict=True))
    return Graph(num_nodes, edges, name=name)


def grid_with_rewiring_graph(
    rows: int,
    cols: int,
    rewire_probability: float = 0.0,
    seed: int | np.random.Generator | None = None,
    name: str = "grid",
) -> Graph:
    """2-D lattice with optional random rewiring.

    Approximates infrastructure networks such as the western-US power grid
    (sparse, quasi-planar, near-constant degree).
    """
    if rows < 1 or cols < 1:
        raise GraphError(f"rows and cols must be positive, got {rows}x{cols}")
    if not 0.0 <= rewire_probability <= 1.0:
        raise GraphError(
            f"rewire_probability must be in [0, 1], got {rewire_probability}"
        )
    rng = ensure_rng(seed)
    num_nodes = rows * cols

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    edge_set: set[tuple[int, int]] = set()
    for r in range(rows):
        for c in range(cols):
            u = node_id(r, c)
            if c + 1 < cols:
                v = node_id(r, c + 1)
                edge_set.add((min(u, v), max(u, v)))
            if r + 1 < rows:
                v = node_id(r + 1, c)
                edge_set.add((min(u, v), max(u, v)))

    if rewire_probability > 0 and num_nodes > 2:
        final: set[tuple[int, int]] = set()
        for u, v in edge_set:
            if rng.random() < rewire_probability:
                for _ in range(50):
                    w = int(rng.integers(0, num_nodes))
                    key = (min(u, w), max(u, w))
                    if w != u and key not in final and key not in edge_set:
                        final.add(key)
                        break
                else:
                    final.add((u, v))
            else:
                final.add((u, v))
        edge_set = final
    return Graph(num_nodes, list(edge_set), name=name)
