"""An undirected, unweighted, simple graph held in memory.

The paper's algorithms only ever need three views of a graph:

* the edge list (to enumerate positive skip-gram pairs),
* per-node neighbour sets (for negative sampling and proximities),
* the adjacency matrix (for structural-equivalence evaluation and the
  matrix-based proximities).

:class:`Graph` provides all three with O(1) edge membership tests and a
sparse CSR adjacency.  Nodes are integers ``0 .. n-1``; helper constructors
relabel arbitrary hashable node identifiers.
"""

from __future__ import annotations

import hashlib
import warnings
from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np
from scipy import sparse

from ..exceptions import GraphError

__all__ = ["Graph", "graph_content_fingerprint"]


def graph_content_fingerprint(num_nodes: int, edges: np.ndarray) -> str:
    """Content hash of a graph given as ``(num_nodes, canonical edge array)``.

    The single definition of the fingerprint format — used by
    :meth:`Graph.content_fingerprint` and by the proximity cache's fallback
    for duck-typed graph objects, so the two can never drift apart.
    """
    digest = hashlib.sha256()
    digest.update(b"repro-graph-v1")
    digest.update(int(num_nodes).to_bytes(8, "little"))
    digest.update(np.ascontiguousarray(np.asarray(edges, dtype=np.int64)).tobytes())
    return digest.hexdigest()[:32]


class Graph:
    """Undirected, unweighted simple graph on nodes ``0 .. num_nodes - 1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes.  Nodes without incident edges are allowed.
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops are rejected and duplicate
        edges (including ``(v, u)`` mirrors) are collapsed.
    name:
        Optional human-readable name, used in reprs and experiment reports.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[tuple[int, int]],
        name: str = "graph",
    ) -> None:
        if num_nodes <= 0:
            raise GraphError(f"num_nodes must be positive, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        self._name = name
        self._edges = self._canonical_edges(edges)
        # Neighbour structure and adjacency are built lazily: a million-node
        # graph that only feeds the array-based training path never pays for
        # per-node arrays it does not use.
        self._nbr_values: np.ndarray | None = None
        self._nbr_offsets: np.ndarray | None = None
        self._adjacency: sparse.csr_matrix | None = None
        self._adjacency_keys: np.ndarray | None = None
        self._content_fingerprint: str | None = None

    def _canonical_edges(self, edges: Iterable[tuple[int, int]]) -> np.ndarray:
        """Validate, canonicalise (``u < v``) and dedupe edges, vectorised.

        Reproduces the original ``sorted(set(...))`` construction exactly —
        rows come out lexicographically sorted with mirrors collapsed — but
        in O(m log m) array ops instead of a Python loop, which is what makes
        million-edge graphs constructible in seconds.
        """
        n = self._num_nodes
        if isinstance(edges, np.ndarray):
            arr = edges.astype(np.int64, copy=False)
        else:
            arr = np.asarray(list(edges) if not isinstance(edges, (list, tuple)) else edges)
            arr = arr.astype(np.int64, copy=False)
        if arr.size == 0:
            return np.empty((0, 2), dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError(
                f"edges must be (u, v) pairs, got an array of shape {arr.shape}"
            )
        loops = arr[:, 0] == arr[:, 1]
        if loops.any():
            u, v = arr[int(np.argmax(loops))]
            raise GraphError(
                f"self-loop ({int(u)}, {int(v)}) is not allowed in a simple graph"
            )
        bad = (arr < 0) | (arr >= n)
        if bad.any():
            u, v = arr[int(np.argmax(bad.any(axis=1)))]
            raise GraphError(
                f"edge ({int(u)}, {int(v)}) references a node outside [0, {n})"
            )
        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        if n <= np.iinfo(np.int64).max // max(n, 1):
            # pack (lo, hi) into one int64 key: unique() then sorts and
            # dedupes in a single pass (the packing is order-preserving)
            keys = np.unique(lo * np.int64(n) + hi)
            return np.stack([keys // n, keys % n], axis=1).astype(np.int64, copy=False)
        return np.unique(np.stack([lo, hi], axis=1), axis=0)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def _from_canonical_edges(
        cls, num_nodes: int, edges: np.ndarray, name: str = "graph"
    ) -> "Graph":
        """Construct a graph from an already-canonical edge array.

        The caller guarantees the :meth:`_canonical_edges` invariant —
        ``(m, 2)`` int64, ``u < v`` per row, lexicographically sorted,
        unique, every index in ``[0, num_nodes)``.  The streaming delta
        path maintains that invariant incrementally (sorted merges over
        packed keys) and uses this constructor to skip the O(m log m)
        re-canonicalisation a plain ``Graph(...)`` would pay.
        """
        if num_nodes <= 0:
            raise GraphError(f"num_nodes must be positive, got {num_nodes}")
        graph = cls.__new__(cls)
        graph._num_nodes = int(num_nodes)
        graph._name = name
        graph._edges = np.ascontiguousarray(edges, dtype=np.int64).reshape(-1, 2)
        graph._nbr_values = None
        graph._nbr_offsets = None
        graph._adjacency = None
        graph._adjacency_keys = None
        graph._content_fingerprint = None
        return graph

    @classmethod
    def from_edge_list(
        cls,
        edges: Sequence[tuple[int, int]],
        num_nodes: int | None = None,
        name: str = "graph",
    ) -> "Graph":
        """Build a graph from an edge list, inferring ``num_nodes`` if omitted."""
        if num_nodes is None:
            if not edges:
                raise GraphError("cannot infer num_nodes from an empty edge list")
            num_nodes = int(max(max(u, v) for u, v in edges)) + 1
        return cls(num_nodes, edges, name=name)

    @classmethod
    def from_adjacency(cls, adjacency: np.ndarray | sparse.spmatrix, name: str = "graph") -> "Graph":
        """Build a graph from a (dense or sparse) symmetric 0/1 adjacency matrix."""
        adj = sparse.csr_matrix(adjacency)
        if adj.shape[0] != adj.shape[1]:
            raise GraphError(f"adjacency matrix must be square, got shape {adj.shape}")
        coo = sparse.triu(adj, k=1).tocoo()
        edges = list(zip(coo.row.tolist(), coo.col.tolist(), strict=True))
        return cls(adj.shape[0], edges, name=name)

    @classmethod
    def from_networkx(cls, nx_graph, name: str | None = None) -> "Graph":
        """Convert a :class:`networkx.Graph`, relabelling nodes to ``0..n-1``."""
        nodes = sorted(nx_graph.nodes())
        index: Mapping[object, int] = {node: i for i, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nx_graph.edges() if u != v]
        return cls(len(nodes), edges, name=name or "networkx-graph")

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Human-readable name of the graph."""
        return self._name

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return int(self._edges.shape[0])

    @property
    def edges(self) -> np.ndarray:
        """``(|E|, 2)`` array of edges with ``u < v`` in each row."""
        return self._edges

    @property
    def density(self) -> float:
        """Edge density ``2|E| / (|V| (|V|-1))``."""
        n = self._num_nodes
        if n < 2:
            return 0.0
        return 2.0 * self.num_edges / (n * (n - 1))

    def degrees(self) -> np.ndarray:
        """Return the degree of every node as an ``int64`` array."""
        if not self.num_edges:
            return np.zeros(self._num_nodes, dtype=np.int64)
        return np.bincount(self._edges.ravel(), minlength=self._num_nodes).astype(
            np.int64, copy=False
        )

    def degree(self, node: int) -> int:
        """Return the degree of a single node."""
        self._check_node(node)
        self._ensure_neighbors()
        node = int(node)
        return int(self._nbr_offsets[node + 1] - self._nbr_offsets[node])

    def neighbors(self, node: int) -> np.ndarray:
        """Return the sorted neighbour array of ``node``."""
        self._check_node(node)
        self._ensure_neighbors()
        node = int(node)
        return self._nbr_values[self._nbr_offsets[node] : self._nbr_offsets[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the undirected edge ``(u, v)`` exists.

        Two binary searches over the lexicographically sorted edge array —
        no per-edge Python set, so membership stays O(log m) with zero
        auxiliary memory even on million-edge graphs.
        """
        u, v = int(u), int(v)
        if u == v:
            return False
        if not (0 <= u < self._num_nodes and 0 <= v < self._num_nodes):
            return False
        lo, hi = (u, v) if u < v else (v, u)
        left = int(np.searchsorted(self._edges[:, 0], lo, side="left"))
        right = int(np.searchsorted(self._edges[:, 0], lo, side="right"))
        if left == right:
            return False
        row = self._edges[left:right, 1]
        i = int(np.searchsorted(row, hi))
        return i < row.shape[0] and int(row[i]) == hi

    def adjacency_matrix(self, dense: bool = False) -> sparse.csr_matrix | np.ndarray:
        """Return the symmetric adjacency matrix (CSR, or dense if requested)."""
        if self._adjacency is None:
            rows = np.concatenate([self._edges[:, 0], self._edges[:, 1]])
            cols = np.concatenate([self._edges[:, 1], self._edges[:, 0]])
            data = np.ones(rows.shape[0], dtype=np.float64)
            self._adjacency = sparse.csr_matrix(
                (data, (rows, cols)), shape=(self._num_nodes, self._num_nodes)
            )
        if dense:
            return self._adjacency.toarray()
        return self._adjacency

    def content_fingerprint(self) -> str:
        """Content hash of the graph (node count + canonical edge array).

        Memoized on first use — the instance is immutable (every mutation
        helper returns a new graph), same as the lazy adjacency — so cache
        layers keyed by graph content pay the edge-array hash only once.
        """
        if self._content_fingerprint is None:
            self._content_fingerprint = graph_content_fingerprint(
                self._num_nodes, self._edges
            )
        return self._content_fingerprint

    def has_edges_bulk(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`has_edge` for parallel node-index arrays.

        One binary search over the CSR adjacency keys instead of a Python
        set lookup per pair — the bulk negative sampler checks hundreds of
        thousands of candidate pairs per call.
        """
        from ..utils.sparse import csr_entry_keys, csr_lookup, indices_in_range

        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if not indices_in_range(self._num_nodes, u, v):
            raise GraphError(
                f"node index outside [0, {self._num_nodes}) in bulk edge query"
            )
        adjacency = self.adjacency_matrix()
        if self._adjacency_keys is None:
            self._adjacency_keys = csr_entry_keys(adjacency)
        _, found = csr_lookup(adjacency, u, v, keys=self._adjacency_keys)
        return found & (u != v)

    # ------------------------------------------------------------------ #
    # graph-level operations
    # ------------------------------------------------------------------ #
    def subgraph_without_edges(self, removed: Iterable[tuple[int, int]], name: str | None = None) -> "Graph":
        """Return a copy of the graph with the given edges removed.

        Used by the link-prediction split, which hides 10% of edges from the
        training graph.
        """
        n_nodes = self._num_nodes
        removed_set = {
            key
            for u, v in removed
            for key in ((min(int(u), int(v)), max(int(u), int(v))),)
            if 0 <= key[0] and key[1] < n_nodes
        }
        if not removed_set or not self.num_edges:
            kept = self._edges
        else:
            removed_arr = np.array(sorted(removed_set), dtype=np.int64).reshape(-1, 2)
            n = np.int64(self._num_nodes)
            keys = self._edges[:, 0] * n + self._edges[:, 1]
            removed_keys = removed_arr[:, 0] * n + removed_arr[:, 1]
            kept = self._edges[~np.isin(keys, removed_keys)]
        return Graph(self._num_nodes, kept, name=name or f"{self._name}-pruned")

    def with_extra_edges(self, added: Iterable[tuple[int, int]], name: str | None = None) -> "Graph":
        """Return a copy of the graph with additional edges inserted.

        Inserting an edge that is already present (or listed twice in
        ``added``) warns with :class:`RuntimeWarning` instead of silently
        deduplicating — a delta author applying the same batch twice should
        hear about it rather than get a structurally identical graph back.
        """
        extra = np.asarray([(int(u), int(v)) for u, v in added], dtype=np.int64)
        edges = (
            np.concatenate([self._edges, extra.reshape(-1, 2)], axis=0)
            if extra.size
            else self._edges
        )
        graph = Graph(self._num_nodes, edges, name=name or f"{self._name}-augmented")
        if extra.size:
            requested = int(extra.reshape(-1, 2).shape[0])
            dropped = requested - (graph.num_edges - self.num_edges)
            if dropped:
                warnings.warn(
                    f"{dropped} of {requested} inserted edges were already present "
                    f"in graph {self._name!r} or duplicated within the batch; they "
                    "were collapsed (double-applied delta?)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return graph

    def remove_node_edges(self, node: int, name: str | None = None) -> "Graph":
        """Return a node-level neighbour of this graph.

        Under bounded node-level DP, a neighbouring graph keeps the same node
        set but replaces all edges incident to one node; the most adversarial
        replacement for sensitivity analysis removes them entirely.
        """
        self._check_node(node)
        node = int(node)
        kept = self._edges[(self._edges[:, 0] != node) & (self._edges[:, 1] != node)]
        return Graph(self._num_nodes, kept, name=name or f"{self._name}-minus-{node}")

    def connected_components(self) -> list[np.ndarray]:
        """Return connected components as arrays of node ids (largest first)."""
        n_components, labels = sparse.csgraph.connected_components(
            self.adjacency_matrix(), directed=False
        )
        components = [np.where(labels == c)[0] for c in range(n_components)]
        components.sort(key=len, reverse=True)
        return components

    def non_edges_sample(
        self,
        count: int,
        rng: np.random.Generator,
        exclude: Iterable[tuple[int, int]] | None = None,
        max_attempts_factor: int = 200,
    ) -> np.ndarray:
        """Sample ``count`` distinct node pairs that are *not* edges.

        Used to build negative examples for link prediction.  Pairs come
        back **in draw order** (each row canonicalised to ``u < v``) — a
        consumer slicing a prefix gets an unbiased subsample, which the
        old ``sorted(found)`` return silently violated (prefixes were
        biased toward low node indices).

        Sampling is vectorised rejection: bulk uniform draws filtered
        through :meth:`has_edges_bulk`.  When the graph is dense enough
        that rejection would thrash (or the attempt budget runs out), the
        exact complement is enumerated and a uniform permutation of it is
        returned instead, so dense graphs succeed whenever enough
        non-edges exist at all.  :class:`GraphError` is raised only when
        the graph genuinely has fewer than ``count`` eligible non-edges.
        """
        if count < 0:
            raise GraphError(f"count must be non-negative, got {count}")
        n = self._num_nodes
        # degenerate excludes (self-pairs, out-of-range pairs) can never be
        # drawn: drop them here so they neither reduce the capacity check
        # nor alias a valid pair in the exact-complement key encoding
        exclude_set: set[tuple[int, int]] = set()
        if exclude is not None:
            exclude_set = {
                key
                for u, v in exclude
                for key in ((min(int(u), int(v)), max(int(u), int(v))),)
                if 0 <= key[0] < key[1] < n
            }
        total_pairs = n * (n - 1) // 2
        # excludes that are already edges cannot be drawn either
        excluded_non_edges = sum(1 for key in exclude_set if not self.has_edge(*key))
        available = total_pairs - self.num_edges - excluded_non_edges
        if available < count:
            raise GraphError(
                f"graph {self._name!r} has only {available} eligible non-edges, "
                f"{count} requested"
            )
        if count == 0:
            return np.empty((0, 2), dtype=np.int64)
        # dense regime: most draws would hit edges — enumerate exactly
        if self.density >= 0.5 or available <= 4 * count:
            return self._non_edges_exact(count, rng, exclude_set)

        found: list[tuple[int, int]] = []
        found_keys: set[tuple[int, int]] = set()
        attempts = 0
        max_attempts = max(1, count) * max(1, max_attempts_factor)
        while len(found) < count and attempts < max_attempts:
            batch = min(max_attempts - attempts, max(256, 2 * (count - len(found))))
            u = rng.integers(0, n, size=batch)
            v = rng.integers(0, n, size=batch)
            attempts += batch
            lo = np.minimum(u, v)
            hi = np.maximum(u, v)
            keep = (lo != hi) & ~self.has_edges_bulk(lo, hi)
            for a, b in zip(lo[keep].tolist(), hi[keep].tolist(), strict=True):
                key = (a, b)
                if key in exclude_set or key in found_keys:
                    continue
                found_keys.add(key)
                found.append(key)
                if len(found) == count:
                    break
        if len(found) < count:
            # the budget ran out but enough non-edges exist (checked above):
            # fall back to the exact complement instead of spuriously failing
            return self._non_edges_exact(count, rng, exclude_set)
        return np.array(found, dtype=np.int64).reshape(-1, 2)

    def _non_edges_exact(
        self,
        count: int,
        rng: np.random.Generator,
        exclude_set: set[tuple[int, int]],
    ) -> np.ndarray:
        """Uniform sample of the explicitly enumerated non-edge complement."""
        n = self._num_nodes
        iu, ju = np.triu_indices(n, k=1)
        adjacency = self.adjacency_matrix()
        keep = np.asarray(adjacency[iu, ju]).ravel() == 0
        if exclude_set:
            excluded = np.fromiter(
                (a * n + b for a, b in exclude_set), dtype=np.int64, count=len(exclude_set)
            )
            keep &= ~np.isin(iu * np.int64(n) + ju, excluded)
        candidates = np.stack([iu[keep], ju[keep]], axis=1).astype(np.int64)
        if candidates.shape[0] < count:  # pragma: no cover - guarded by caller
            raise GraphError(
                f"graph {self._name!r} has only {candidates.shape[0]} eligible "
                f"non-edges, {count} requested"
            )
        order = rng.permutation(candidates.shape[0])[:count]
        return candidates[order]

    # ------------------------------------------------------------------ #
    # dunder methods
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[int]:
        return iter(range(self._num_nodes))

    def __len__(self) -> int:
        return self._num_nodes

    def __repr__(self) -> str:
        return (
            f"Graph(name={self._name!r}, num_nodes={self._num_nodes}, "
            f"num_edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes
            and self._edges.shape == other._edges.shape
            and bool(np.all(self._edges == other._edges))
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing is enough
        return id(self)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _ensure_neighbors(self) -> None:
        """Build the CSR-style neighbour structure on first use.

        One lexsort over both edge directions replaces the per-node Python
        bucket lists: ``_nbr_values[_nbr_offsets[u]:_nbr_offsets[u+1]]`` is
        the sorted neighbour array of ``u``.
        """
        if self._nbr_values is not None:
            return
        if not self.num_edges:
            self._nbr_values = np.empty(0, dtype=np.int64)
            self._nbr_offsets = np.zeros(self._num_nodes + 1, dtype=np.int64)
            return
        ends = np.concatenate([self._edges[:, 0], self._edges[:, 1]])
        other = np.concatenate([self._edges[:, 1], self._edges[:, 0]])
        order = np.lexsort((other, ends))
        self._nbr_values = np.ascontiguousarray(other[order])
        counts = np.bincount(ends, minlength=self._num_nodes)
        offsets = np.zeros(self._num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        self._nbr_offsets = offsets

    def _check_node(self, node: int) -> None:
        if not 0 <= int(node) < self._num_nodes:
            raise GraphError(f"node {node} is outside [0, {self._num_nodes})")
