"""Edge-list text IO.

The public datasets the paper uses are distributed as whitespace-separated
edge lists; this module reads and writes that format so users can plug their
own graphs into the library.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Iterable

from ..exceptions import GraphError
from .graph import Graph

__all__ = ["read_edge_list", "write_edge_list"]


def read_edge_list(
    path: str | Path,
    num_nodes: int | None = None,
    comment_prefix: str = "#",
    name: str | None = None,
) -> Graph:
    """Read a whitespace-separated edge list file into a :class:`Graph`.

    Lines starting with ``comment_prefix`` and blank lines are skipped.
    Node identifiers must be non-negative integers; they are used directly as
    node ids (so gaps create isolated nodes unless ``num_nodes`` says
    otherwise).
    """
    path = Path(path)
    edges: list[tuple[int, int]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(comment_prefix):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(
                    f"{path}:{line_number}: expected at least two columns, got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(
                    f"{path}:{line_number}: non-integer node id in {line!r}"
                ) from exc
            if u == v:
                continue  # silently drop self-loops, as the paper's preprocessing does
            edges.append((u, v))
    if not edges and num_nodes is None:
        raise GraphError(f"{path}: no edges found and num_nodes not given")
    return Graph.from_edge_list(edges, num_nodes=num_nodes, name=name or path.stem)


def write_edge_list(graph: Graph, path: str | Path, header: bool = True) -> None:
    """Write a graph as a whitespace-separated edge list."""
    path = Path(path)
    lines: list[str] = []
    if header:
        lines.append(f"# {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges")
    lines.extend(f"{int(u)} {int(v)}" for u, v in graph.edges)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _edges_as_tuples(edges: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Normalise an iterable of edge pairs to a list of int tuples."""
    return [(int(u), int(v)) for u, v in edges]
