r"""Random-walk engine.

DeepWalk-style uniform random walks are used in two places:

* the *DeepWalk proximity* (random-walk co-occurrence counts) that the paper
  fuses into SE-PrivGEmb\ :sub:`DW`,
* the non-private DeepWalk-like corpus generation used by examples.

The walker is deliberately simple (uniform transition over neighbours) but
also supports node2vec-style ``p``/``q`` biased second-order walks, since
node2vec is one of the skip-gram family methods discussed in the paper.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import GraphError
from ..utils.rng import ensure_rng
from .graph import Graph

__all__ = ["RandomWalker"]


class RandomWalker:
    """Generate random walks over a :class:`Graph`.

    Parameters
    ----------
    graph:
        The graph to walk on.
    walk_length:
        Number of nodes in each walk (including the start node).
    return_param / inout_param:
        node2vec ``p`` and ``q`` parameters.  With the defaults (both 1.0)
        walks are first-order uniform DeepWalk walks.
    seed:
        Seed or generator for reproducibility.
    """

    def __init__(
        self,
        graph: Graph,
        walk_length: int = 40,
        return_param: float = 1.0,
        inout_param: float = 1.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if walk_length < 1:
            raise GraphError(f"walk_length must be >= 1, got {walk_length}")
        if return_param <= 0 or inout_param <= 0:
            raise GraphError("return_param and inout_param must be positive")
        self.graph = graph
        self.walk_length = int(walk_length)
        self.return_param = float(return_param)
        self.inout_param = float(inout_param)
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------ #
    def walk_from(self, start: int) -> list[int]:
        """Generate a single walk starting at ``start``.

        The walk stops early if it reaches a node with no neighbours.
        """
        graph = self.graph
        walk = [int(start)]
        if graph.degree(start) == 0:
            return walk
        while len(walk) < self.walk_length:
            current = walk[-1]
            neighbors = graph.neighbors(current)
            if neighbors.size == 0:
                break
            if len(walk) == 1 or (self.return_param == 1.0 and self.inout_param == 1.0):
                nxt = int(neighbors[int(self._rng.integers(0, neighbors.size))])
            else:
                nxt = self._biased_step(walk[-2], current, neighbors)
            walk.append(nxt)
        return walk

    def generate_walks(self, walks_per_node: int = 10) -> list[list[int]]:
        """Generate ``walks_per_node`` walks from every node, in shuffled order."""
        if walks_per_node < 1:
            raise GraphError(f"walks_per_node must be >= 1, got {walks_per_node}")
        nodes = np.arange(self.graph.num_nodes)
        walks: list[list[int]] = []
        for _ in range(walks_per_node):
            self._rng.shuffle(nodes)
            for node in nodes:
                walks.append(self.walk_from(int(node)))
        return walks

    def cooccurrence_pairs(
        self, walks: list[list[int]], window_size: int = 5
    ) -> np.ndarray:
        """Extract (centre, context) pairs from walks within a sliding window.

        Returns an ``(n_pairs, 2)`` array.  This is the classic DeepWalk
        corpus construction, built per walk with array ops: every centre
        index is offset by ``-W..-1, 1..W`` at once and the out-of-range
        combinations masked away.  Pair order matches the nested-loop
        construction (centres ascending, contexts ascending per centre).
        """
        if window_size < 1:
            raise GraphError(f"window_size must be >= 1, got {window_size}")
        offsets = np.concatenate(
            [np.arange(-window_size, 0), np.arange(1, window_size + 1)]
        )
        chunks: list[np.ndarray] = []
        for walk in walks:
            nodes = np.asarray(walk, dtype=np.int64)
            length = nodes.size
            if length < 2:
                continue
            context_idx = np.arange(length)[:, None] + offsets[None, :]
            valid = (context_idx >= 0) & (context_idx < length)
            centers = np.repeat(nodes, valid.sum(axis=1))
            contexts = nodes[context_idx[valid]]
            chunks.append(np.stack([centers, contexts], axis=1))
        if not chunks:
            return np.zeros((0, 2), dtype=np.int64)
        return np.concatenate(chunks, axis=0)

    # ------------------------------------------------------------------ #
    def _biased_step(self, previous: int, current: int, neighbors: np.ndarray) -> int:
        """node2vec second-order transition from ``current`` given ``previous``.

        Membership of each candidate in the previous node's neighbourhood
        is a vectorised ``searchsorted`` probe of the graph's sorted
        neighbour array — no per-step Python set construction.
        """
        prev_neighbors = self.graph.neighbors(previous)  # sorted CSR slice
        positions = np.searchsorted(prev_neighbors, neighbors)
        positions_clipped = np.minimum(positions, prev_neighbors.size - 1)
        is_common = (positions < prev_neighbors.size) & (
            prev_neighbors[positions_clipped] == neighbors
        )
        weights = np.where(is_common, 1.0, 1.0 / self.inout_param)
        weights[neighbors == previous] = 1.0 / self.return_param
        weights /= weights.sum()
        choice = self._rng.choice(neighbors.size, p=weights)
        return int(neighbors[int(choice)])
