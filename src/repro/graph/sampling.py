"""Subgraph and negative sampling.

Implements Algorithm 1 of the paper (*Generating Disjoint Subgraphs*): every
edge ``(v_i, v_j)`` is grouped with ``k`` negative nodes ``v_n`` such that
``(v_i, v_n)`` is not an edge.  A batch of these subgraphs — sampled
uniformly without replacement — is the unit of one private SGD step, and
``γ = B / |E|`` is the subsampling rate used for privacy amplification.

Two negative-node distributions are provided:

* :class:`UnigramNegativeSampler` — the classic degree^0.75 unigram sampler
  used by word2vec/DeepWalk (the "prior work" setting in Section IV-B).
* :class:`ProximityNegativeSampler` — the paper's Theorem-3 design where
  ``P_n(v) ∝ min(P) / Σ_j p_ij``, which makes skip-gram preserve arbitrary
  proximities.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..engine.batch import SubgraphBatch
from ..exceptions import GraphError
from ..utils.rng import ensure_rng
from .graph import Graph

__all__ = [
    "EdgeSubgraph",
    "generate_disjoint_subgraphs",
    "generate_disjoint_subgraph_arrays",
    "SubgraphSampler",
    "UnigramNegativeSampler",
    "ProximityNegativeSampler",
]


@dataclass(frozen=True)
class EdgeSubgraph:
    """One record produced by Algorithm 1.

    Attributes
    ----------
    center:
        The centre node ``v_i`` of the positive edge.
    positive:
        The context node ``v_j`` of the positive edge.
    negatives:
        Array of ``k`` negative nodes ``v_n`` with ``(center, v_n) ∉ E``.
    """

    center: int
    positive: int
    negatives: np.ndarray

    def all_context_nodes(self) -> np.ndarray:
        """Return ``[positive, *negatives]`` — the k+1 output rows touched."""
        return np.concatenate(([self.positive], self.negatives)).astype(np.int64)


class _NegativeSamplerBase:
    """Common machinery: draw nodes from a distribution, rejecting neighbours.

    Draws are vectorised: candidates come from one inverse-CDF lookup
    (``searchsorted`` over the cumulative probabilities) per rejection
    round, and neighbour rejection runs through the graph's bulk CSR edge
    test.  The seed implementation paid one O(n) ``rng.choice`` per
    negative, which made Algorithm-1 pool construction the bottleneck on
    graphs past a few thousand nodes.

    With ``use_alias=True`` candidates come from a Walker alias table
    instead: two O(1) lookups per draw in place of the O(log n)
    ``searchsorted`` binary search — the standard trick of node2vec-family
    implementations.  The draw *distribution* is identical but the RNG
    *stream* is not (one uniform per draw instead of one per bin search),
    so the alias path sits behind the fast-path switch and the default
    stream stays pinned.
    """

    def __init__(
        self,
        graph: Graph,
        probabilities: np.ndarray,
        seed: int | np.random.Generator | None = None,
        max_attempts: int = 1000,
        use_alias: bool = False,
    ) -> None:
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.shape != (graph.num_nodes,):
            raise GraphError(
                f"probabilities must have shape ({graph.num_nodes},), got {probabilities.shape}"
            )
        if np.any(probabilities < 0):
            raise GraphError("negative sampling probabilities must be non-negative")
        total = probabilities.sum()
        if total <= 0:
            raise GraphError("negative sampling probabilities must not all be zero")
        self.graph = graph
        self.probabilities = probabilities / total
        self._cdf = np.cumsum(self.probabilities)
        self._cdf[-1] = 1.0  # guard the top bin against cumsum round-off
        self._rng = ensure_rng(seed)
        self._max_attempts = int(max_attempts)
        self.use_alias = bool(use_alias)
        self._alias_accept: np.ndarray | None = None
        self._alias_index: np.ndarray | None = None
        if self.use_alias:
            self._build_alias_table()

    # ------------------------------------------------------------------ #
    def _build_alias_table(self) -> None:
        """Walker's O(n) alias-table construction over ``self.probabilities``.

        ``accept[i]`` is the probability that a uniform draw landing in
        column ``i`` keeps ``i``; otherwise it yields ``alias[i]``.
        """
        n = self.probabilities.size
        scaled = self.probabilities * n
        accept = np.ones(n, dtype=np.float64)
        alias = np.arange(n, dtype=np.int64)
        # Python lists as work stacks: construction is one-time per sampler
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        scaled = scaled.copy()
        while small and large:
            lo = small.pop()
            hi = large.pop()
            accept[lo] = scaled[lo]
            alias[lo] = hi
            scaled[hi] = (scaled[hi] + scaled[lo]) - 1.0
            if scaled[hi] < 1.0:
                small.append(hi)
            else:
                large.append(hi)
        # leftovers are 1.0 up to round-off: they always accept
        for rest in small + large:
            accept[rest] = 1.0
            alias[rest] = rest
        self._alias_accept = accept
        self._alias_index = alias

    def _draw_candidates(self, count: int) -> np.ndarray:
        """Draw ``count`` node candidates from the sampling distribution."""
        if not self.use_alias:
            draws = np.searchsorted(
                self._cdf, self._rng.random(count), side="right"
            ).astype(np.int64)
            return np.minimum(draws, self.graph.num_nodes - 1, out=draws)
        n = self.graph.num_nodes
        u = self._rng.random(count)
        u *= n
        columns = u.astype(np.int64)
        np.minimum(columns, n - 1, out=columns)  # guard u*n rounding up to n
        u -= columns  # leftover fraction decides accept vs alias
        return np.where(
            u < self._alias_accept[columns], columns, self._alias_index[columns]
        )

    def sample_negatives(self, center: int, count: int) -> np.ndarray:
        """Sample ``count`` nodes that are not neighbours of ``center`` (nor itself).

        Falls back to uniform sampling over valid nodes if rejection sampling
        fails (e.g. near-complete graphs).
        """
        return self.sample_negatives_bulk(np.array([center], dtype=np.int64), count)[0]

    def sample_negatives_bulk(self, centers: np.ndarray, count: int) -> np.ndarray:
        """Sample ``count`` negatives for every centre in one vectorised pass.

        Returns an ``[len(centers), count]`` array where no entry is a
        neighbour of (or equal to) its row's centre.  All pending draws
        across all rows share each rejection round, so the cost is a few
        ``searchsorted`` passes regardless of the number of centres.
        """
        if count < 0:
            raise GraphError(f"count must be non-negative, got {count}")
        centers = np.asarray(centers, dtype=np.int64)
        total = centers.shape[0] * count
        result = np.full(total, -1, dtype=np.int64)
        if total == 0:
            return result.reshape(centers.shape[0], count)
        flat_centers = np.repeat(centers, count)
        pending = np.arange(total)
        rounds = 0
        while pending.size and rounds < self._max_attempts:
            rounds += 1
            draws = self._draw_candidates(pending.size)
            row_centers = flat_centers[pending]
            valid = ~self.graph.has_edges_bulk(row_centers, draws)
            valid &= draws != row_centers
            result[pending[valid]] = draws[valid]
            pending = pending[~valid]
        if pending.size:
            # Rejection failed (near-complete neighbourhoods): build the
            # allowed complement once per distinct centre via a boolean mask
            # and draw uniformly from it.
            by_center: dict[int, list[int]] = {}
            for index in pending:
                by_center.setdefault(int(flat_centers[index]), []).append(index)
            allowed_mask = np.empty(self.graph.num_nodes, dtype=bool)
            for center, indices in by_center.items():
                allowed_mask.fill(True)
                allowed_mask[self.graph.neighbors(center)] = False
                allowed_mask[center] = False
                allowed = np.flatnonzero(allowed_mask)
                if allowed.size == 0:
                    raise GraphError(
                        f"node {center} is connected to every other node; "
                        "cannot sample negatives"
                    )
                result[indices] = self._rng.choice(allowed, size=len(indices), replace=True)
        return result.reshape(centers.shape[0], count)


class UnigramNegativeSampler(_NegativeSamplerBase):
    """word2vec-style unigram sampler: ``P_n(v) ∝ degree(v) ** power``.

    With ``power=0.75`` this reproduces the negative sampling used by
    DeepWalk/LINE/node2vec — the comparison point of Section IV-B's
    "Comparison with Prior Works".
    """

    def __init__(
        self,
        graph: Graph,
        power: float = 0.75,
        seed: int | np.random.Generator | None = None,
        use_alias: bool = False,
    ) -> None:
        degrees = graph.degrees().astype(float)
        # Isolated nodes get a tiny positive mass so the distribution is valid.
        weights = np.power(np.maximum(degrees, 1e-12), power)
        super().__init__(graph, weights, seed=seed, use_alias=use_alias)
        self.power = float(power)


class ProximityNegativeSampler(_NegativeSamplerBase):
    """Theorem-3 negative sampler: ``P_n(v_i → ·) ∝ min(P) / Σ_j p_ij``.

    The paper defines the negative-sampling probability *per centre node*
    ``v_i`` as ``min(P) / Σ_{v_j} p_ij`` — i.e. the probability of drawing
    any particular negative is inversely proportional to the centre's total
    proximity mass.  Normalised over candidate nodes this yields a uniform
    distribution whose *scale* (relative to the positive term) is what drives
    the optimum in Eq. (10); for sampling purposes we draw candidates
    uniformly but expose :meth:`negative_weight` so the trainer can weight
    the negative part of the loss by ``k · min(P)`` exactly as Eq. (13)
    requires.
    """

    def __init__(
        self,
        graph: Graph,
        proximity_row_sums: np.ndarray,
        min_positive_proximity: float,
        seed: int | np.random.Generator | None = None,
        use_alias: bool = False,
    ) -> None:
        proximity_row_sums = np.asarray(proximity_row_sums, dtype=float)
        if proximity_row_sums.shape != (graph.num_nodes,):
            raise GraphError(
                "proximity_row_sums must have one entry per node, got shape "
                f"{proximity_row_sums.shape}"
            )
        if min_positive_proximity <= 0:
            raise GraphError(
                f"min_positive_proximity must be positive, got {min_positive_proximity}"
            )
        # Candidate negatives are drawn uniformly; the proximity information
        # enters through the per-centre weight used in the objective.
        uniform = np.ones(graph.num_nodes, dtype=float)
        super().__init__(graph, uniform, seed=seed, use_alias=use_alias)
        self.row_sums = proximity_row_sums
        self.min_positive_proximity = float(min_positive_proximity)

    @classmethod
    def from_proximity(
        cls,
        graph: Graph,
        proximity,
        seed: int | np.random.Generator | None = None,
        use_alias: bool = False,
    ) -> "ProximityNegativeSampler":
        """Build the Theorem-3 sampler straight from a ``ProximityMatrix``.

        Reads ``row_sums`` / ``min_positive`` off the matrix wrapper, which
        tracks them on both the CSR and the dense backend — no densified
        matrix is ever touched.
        """
        return cls(
            graph,
            proximity_row_sums=proximity.row_sums,
            min_positive_proximity=max(proximity.min_positive, 1e-12),
            seed=seed,
            use_alias=use_alias,
        )

    def negative_probability(self, center: int) -> float:
        """Return ``min(P) / Σ_j p_ij`` for the given centre node.

        This is the (unnormalised) probability mass Theorem 3 assigns to each
        negative candidate of ``center``; it must lie in ``(0, 1)`` for the
        theorem's premise to hold.
        """
        row_sum = float(self.row_sums[int(center)])
        if row_sum <= 0:
            return 0.0
        return self.min_positive_proximity / row_sum


def generate_disjoint_subgraph_arrays(
    graph: Graph,
    negative_sampler: _NegativeSamplerBase,
    num_negatives: int,
    both_directions: bool = False,
) -> SubgraphBatch:
    """Algorithm 1 in array form: the whole subgraph set ``GS`` as one batch.

    This is the engine's hot-path representation — centres ``[|GS|]`` and
    contexts ``[|GS|, 1+k]`` (positive first) — produced with exactly the
    same negative draws (same RNG stream) as the per-example
    :func:`generate_disjoint_subgraphs`.

    Parameters
    ----------
    graph:
        The training graph.
    negative_sampler:
        Any sampler exposing ``sample_negatives(center, count)``; samplers
        that also provide ``sample_negatives_bulk(centers, count)`` (all
        built-in ones do) take the vectorised path.
    num_negatives:
        ``k``, the number of negative samples per edge.
    both_directions:
        If ``True``, each undirected edge produces two subgraph rows (one
        per direction).  The paper's Algorithm 1 uses one per edge (default).
    """
    if num_negatives < 1:
        raise GraphError(f"num_negatives must be >= 1, got {num_negatives}")
    if graph.num_edges == 0:
        raise GraphError("cannot build subgraphs for a graph with no edges")
    count = graph.num_edges * (2 if both_directions else 1)
    centers = np.empty(count, dtype=np.int64)
    positives = np.empty(count, dtype=np.int64)
    if both_directions:
        # preserve the row layout of the per-edge loop: u→v then v→u
        centers[0::2] = graph.edges[:, 0]
        positives[0::2] = graph.edges[:, 1]
        centers[1::2] = graph.edges[:, 1]
        positives[1::2] = graph.edges[:, 0]
    else:
        centers[:] = graph.edges[:, 0]
        positives[:] = graph.edges[:, 1]
    contexts = np.empty((count, 1 + num_negatives), dtype=np.int64)
    contexts[:, 0] = positives
    if hasattr(negative_sampler, "sample_negatives_bulk"):
        contexts[:, 1:] = negative_sampler.sample_negatives_bulk(centers, num_negatives)
    else:
        # duck-typed custom samplers only promise sample_negatives(center, k)
        for row, center in enumerate(centers):
            contexts[row, 1:] = negative_sampler.sample_negatives(
                int(center), num_negatives
            )
    return SubgraphBatch(centers=centers, contexts=contexts)


def generate_disjoint_subgraphs(
    graph: Graph,
    negative_sampler: _NegativeSamplerBase,
    num_negatives: int,
    both_directions: bool = False,
) -> list[EdgeSubgraph]:
    """Algorithm 1: build one :class:`EdgeSubgraph` per edge.

    Compatibility wrapper over :func:`generate_disjoint_subgraph_arrays`;
    the dataclass list is a view of the same arrays (identical RNG stream).
    """
    return generate_disjoint_subgraph_arrays(
        graph, negative_sampler, num_negatives, both_directions=both_directions
    ).to_subgraphs()


class SubgraphSampler:
    """Uniform without-replacement batch sampler over precomputed subgraphs.

    One batch of size ``B`` corresponds to one private SGD step; the
    subsampling rate ``γ = B / |GS|`` feeds the privacy-amplification bound
    (Theorem 4 / 5 of the paper).

    The pool is stored as a :class:`~repro.engine.batch.SubgraphBatch`;
    :meth:`sample_batch_arrays` is the engine's zero-copy hot path, while
    :meth:`sample_batch` keeps the per-example dataclass view for callers
    that want one (both consume the identical RNG draw).

    With ``fast_path=True`` index draws switch from ``rng.choice`` —
    O(|GS|) per step, it permutes the whole pool — to a partial
    Fisher–Yates shuffle of a persistent permutation: O(B) work and O(B)
    uniform draws per step, still exactly uniform without replacement.
    The draw stream differs from ``rng.choice``, which is why the switch
    defaults off and the default stream stays pinned.
    """

    def __init__(
        self,
        subgraphs: Sequence[EdgeSubgraph] | SubgraphBatch,
        batch_size: int,
        seed: int | np.random.Generator | None = None,
        fast_path: bool = False,
    ) -> None:
        if isinstance(subgraphs, SubgraphBatch):
            pool = subgraphs
        else:
            subgraphs = list(subgraphs)
            if not subgraphs:
                raise GraphError("subgraphs must not be empty")
            pool = SubgraphBatch.from_subgraphs(subgraphs)
        if len(pool) == 0:
            raise GraphError("subgraphs must not be empty")
        if batch_size < 1:
            raise GraphError(f"batch_size must be >= 1, got {batch_size}")
        self.pool = pool
        self.batch_size = min(int(batch_size), len(pool))
        self._rng = ensure_rng(seed)
        self.fast_path = bool(fast_path)
        self._cast_pools: dict[np.dtype, SubgraphBatch] = {}
        if self.fast_path:
            size = len(pool)
            batch = self.batch_size
            # the permutation lives as a Python list: the B sequential swaps
            # are ~5x faster on list ints than through numpy scalar indexing
            self._perm = list(range(size))
            # span[i] = size - i, so u * span + i is uniform over [i, size)
            self._fy_spans = (size - np.arange(batch)).astype(np.float64)
            self._fy_base = np.arange(batch, dtype=np.float64)
            self._fy_uniforms = np.empty(batch, dtype=np.float64)
            self._fy_draws = np.empty(batch, dtype=np.int64)
            self._fy_indices = np.empty(batch, dtype=np.int64)

    @property
    def subgraphs(self) -> list[EdgeSubgraph]:
        """Compatibility copy of the pool as per-example dataclasses.

        Built fresh on each access (O(|GS|)); mutating the returned list
        does not affect what :meth:`sample_batch` can draw — the pool
        arrays are the source of truth.
        """
        return self.pool.to_subgraphs()

    @property
    def sampling_rate(self) -> float:
        """The subsampling parameter ``γ = B / |GS|``."""
        return self.batch_size / len(self.pool)

    def sample_indices(self) -> np.ndarray:
        """Draw ``batch_size`` pool indices uniformly without replacement.

        The fast path returns a *view* of the persistent permutation's
        prefix — copy it if you need it to survive the next draw.
        """
        if self.fast_path:
            return self._fisher_yates_prefix()
        return self._rng.choice(len(self.pool), size=self.batch_size, replace=False)

    def _fisher_yates_prefix(self) -> np.ndarray:
        """Partial Fisher–Yates: shuffle a uniform B-prefix into ``_perm``.

        All ``B`` swap targets are drawn and truncated vectorised (into the
        preallocated buffers); only the inherently sequential swaps run in
        Python, over the list-backed permutation.  Starting from any
        permutation the B-prefix after the swaps is a uniform ordered
        sample without replacement.  Returns the reused index buffer —
        valid until the next draw.
        """
        size = len(self.pool)
        batch = self.batch_size
        uniforms = self._fy_uniforms
        draws = self._fy_draws
        self._rng.random(out=uniforms)
        np.multiply(uniforms, self._fy_spans, out=uniforms)
        np.add(uniforms, self._fy_base, out=uniforms)
        np.copyto(draws, uniforms, casting="unsafe")  # trunc: floor for x >= 0
        np.minimum(draws, size - 1, out=draws)  # u * span can round up to span
        perm = self._perm
        for i, j in enumerate(draws.tolist()):
            perm[i], perm[j] = perm[j], perm[i]
        indices = self._fy_indices
        indices[:] = perm[:batch]
        return indices

    def _pool_for_dtype(self, dtype: np.dtype) -> SubgraphBatch:
        """The pool with weights cast to ``dtype`` (cached; cast once)."""
        weights = self.pool.weights
        if weights is None or weights.dtype == dtype:
            return self.pool
        cast = self._cast_pools.get(dtype)
        if cast is None:
            cast = self.pool.with_weights(weights.astype(dtype))
            self._cast_pools[dtype] = cast
        return cast

    def sample_batch_arrays(self, *, workspace=None) -> SubgraphBatch:
        """Sample one batch in array form — the engine's hot path.

        With ``workspace`` the batch is gathered straight into the
        workspace's preallocated buffers (no per-step allocation); pool
        weights are cast to the workspace compute dtype once and cached.
        """
        if workspace is None:
            return self.pool.take(self.sample_indices())
        pool = self._pool_for_dtype(workspace.dtype)
        return pool.take(self.sample_indices(), out=workspace.batch)

    def sample_batch(self) -> list[EdgeSubgraph]:
        """Sample ``batch_size`` subgraphs uniformly without replacement."""
        return self.sample_batch_arrays().to_subgraphs()

    def __len__(self) -> int:
        return len(self.pool)
