"""Structural validation helpers for simple graphs."""

from __future__ import annotations

import numpy as np

from ..exceptions import GraphError
from .graph import Graph

__all__ = ["validate_simple_graph"]


def validate_simple_graph(graph: Graph, require_edges: bool = True) -> None:
    """Check the invariants the trainers rely on; raise :class:`GraphError` otherwise.

    Invariants checked:

    * at least one edge (unless ``require_edges=False``),
    * no self-loops (guaranteed by :class:`Graph`, re-checked defensively),
    * adjacency matrix symmetric with a zero diagonal,
    * every edge endpoint inside ``[0, num_nodes)``.
    """
    if require_edges and graph.num_edges == 0:
        raise GraphError(f"graph {graph.name!r} has no edges")

    edges = graph.edges
    if edges.size:
        if np.any(edges[:, 0] == edges[:, 1]):
            raise GraphError("graph contains a self-loop")
        if edges.min() < 0 or edges.max() >= graph.num_nodes:
            raise GraphError("graph contains an edge endpoint outside the node range")

    adjacency = graph.adjacency_matrix()
    asym = abs(adjacency - adjacency.T)
    if asym.nnz != 0 and float(asym.max()) > 0:
        raise GraphError("adjacency matrix is not symmetric")
    if float(abs(adjacency.diagonal()).sum()) > 0:
        raise GraphError("adjacency matrix has a non-zero diagonal")
