"""Unified estimator API: the :class:`Embedder` protocol + method registry.

Every method of the paper's evaluation is one registry entry and one
estimator shape::

    from repro.models import Embedder, get_method

    model = get_method("se_privgemb_dw").build(training, privacy, seed=0)
    model.fit(graph)
    model.embeddings_          # |V| × r matrix
    model.result_.privacy_spent
    model.save("model.npz")
    Embedder.load("model.npz") # bit-identical embeddings_

See :mod:`repro.models.base` for the protocol, :mod:`repro.models.registry`
for the declarative :class:`MethodSpec` registry, and
:mod:`repro.models.artifacts` for the ``.npz`` + JSON artifact layout.
"""

from .artifacts import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    load_artifact,
    peek_artifact,
    save_artifact,
)
from .base import Embedder, FitResult, WarmStart
from .registry import (
    MethodSpec,
    available_methods,
    get_method,
    method_aliases,
    register,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "Embedder",
    "FitResult",
    "MethodSpec",
    "available_methods",
    "get_method",
    "load_artifact",
    "method_aliases",
    "peek_artifact",
    "register",
    "save_artifact",
    "WarmStart",
]
