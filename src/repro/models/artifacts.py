"""Persistable model artifacts: one ``.npz`` file = arrays + JSON metadata.

A fitted :class:`~repro.models.Embedder` is published as a single ``.npz``
archive carrying

* the embedding matrices (``embeddings``, optionally
  ``context_embeddings``) exactly as trained — float64 arrays round-trip
  bit-exactly, so a loaded model scores identically to the one that was
  saved, and
* one JSON document (stored under the reserved ``__metadata__`` key)
  describing everything needed to reconstruct and trust the model: the
  method-registry spec, the training/privacy configurations, the dataset
  and proximity content fingerprints, the losses, and the privacy actually
  spent.

Writes go through :func:`repro.utils.fileio.atomic_write_path`, the same
temp-then-rename discipline as the proximity cache and the run store, so
concurrent writers never publish a torn file.  ``allow_pickle`` stays off
on both ends: artifacts are plain data, never code.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from collections.abc import Mapping
from typing import Any

import numpy as np

from ..exceptions import ArtifactError
from ..utils.fileio import atomic_write_path

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "load_artifact",
    "peek_artifact",
    "save_artifact",
]

#: identifies our archives among arbitrary ``.npz`` files
ARTIFACT_FORMAT = "repro.models.embedder"
#: bumped on breaking layout changes; old readers reject newer files cleanly
ARTIFACT_VERSION = 1

#: reserved array key holding the JSON metadata document
_METADATA_KEY = "__metadata__"


def save_artifact(
    path: str | Path,
    arrays: Mapping[str, np.ndarray],
    metadata: Mapping[str, Any],
) -> Path:
    """Atomically write ``arrays`` + ``metadata`` as one ``.npz`` artifact.

    The ``format`` / ``format_version`` envelope fields are stamped here so
    every artifact is self-identifying regardless of which caller built the
    metadata.
    """
    path = Path(path)
    if _METADATA_KEY in arrays:
        raise ArtifactError(f"array name {_METADATA_KEY!r} is reserved for metadata")
    for name, array in arrays.items():
        if not isinstance(array, np.ndarray):
            raise ArtifactError(
                f"artifact array {name!r} must be a numpy array, got {type(array).__name__}"
            )
    envelope = {"format": ARTIFACT_FORMAT, "format_version": ARTIFACT_VERSION, **metadata}
    document = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
    path.parent.mkdir(parents=True, exist_ok=True)
    with atomic_write_path(path) as tmp_path:
        # np.savez appends ".npz" to bare *filenames*; an open handle is
        # written verbatim, keeping the atomic temp-name contract intact
        with open(tmp_path, "wb") as handle:
            np.savez(handle, **{_METADATA_KEY: np.array(document), **dict(arrays)})
    return path


def _read_metadata(path: Path, archive) -> dict[str, Any]:
    """Extract and parse the metadata document from an open ``NpzFile``."""
    if _METADATA_KEY not in archive.files:
        raise ArtifactError(
            f"{path} is a .npz archive but not a {ARTIFACT_FORMAT} artifact "
            "(no metadata entry)"
        )
    try:
        metadata = json.loads(str(archive[_METADATA_KEY][()]))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ArtifactError(f"corrupt metadata in {path}: {exc}") from exc
    return metadata


def _validate_envelope(path: Path, metadata: Any) -> dict[str, Any]:
    """Check the ``format`` / ``format_version`` envelope fields."""
    if not isinstance(metadata, dict) or metadata.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(f"{path} does not contain a {ARTIFACT_FORMAT} artifact")
    version = metadata.get("format_version")
    if not isinstance(version, int) or version > ARTIFACT_VERSION:
        raise ArtifactError(
            f"{path} has artifact version {version!r}; this build reads <= {ARTIFACT_VERSION}"
        )
    return metadata


def load_artifact(path: str | Path) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Read an artifact back as ``(arrays, metadata)``.

    Raises :class:`~repro.exceptions.ArtifactError` for missing files,
    foreign ``.npz`` archives, corrupt metadata, or artifacts written by a
    newer format version.
    """
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"no model artifact at {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            metadata = _read_metadata(path, archive)
            arrays = {name: archive[name] for name in archive.files if name != _METADATA_KEY}
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:  # repro-lint: disable=RETRY001 -- translating to a typed ArtifactError is the whole job here; whether loading this artifact is worth retrying is the caller's policy decision, not the reader's
        raise ArtifactError(f"cannot read model artifact {path}: {exc}") from exc
    return arrays, _validate_envelope(path, metadata)


def peek_artifact(path: str | Path) -> dict[str, Any]:
    """Read an artifact's metadata without loading any array payload.

    ``NpzFile`` members are decompressed lazily, so only the (tiny) JSON
    document is actually read; the array members contribute just their
    ``.npy`` headers, surfaced under an extra ``"arrays"`` key as
    ``{name: {"shape": [...], "dtype": "..."}}``.  Inspecting a
    million-node artifact therefore costs O(metadata), not O(|V| · r) —
    the CLI ``inspect`` / ``query`` validation paths rely on this.

    Raises the same :class:`~repro.exceptions.ArtifactError` family as
    :func:`load_artifact`.
    """
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"no model artifact at {path}")
    arrays_info: dict[str, dict[str, Any]] = {}
    try:
        with np.load(path, allow_pickle=False) as archive:
            metadata = _read_metadata(path, archive)
            for name in archive.files:
                if name == _METADATA_KEY:
                    continue
                with archive.zip.open(name + ".npy") as handle:
                    version = np.lib.format.read_magic(handle)
                    if version == (1, 0):
                        shape, _, dtype = np.lib.format.read_array_header_1_0(handle)
                    elif version == (2, 0):
                        shape, _, dtype = np.lib.format.read_array_header_2_0(handle)
                    else:  # future .npy revision: fall back to a full read
                        array = archive[name]
                        shape, dtype = array.shape, array.dtype
                arrays_info[name] = {
                    "shape": [int(dim) for dim in shape],
                    "dtype": str(dtype),
                }
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:  # repro-lint: disable=RETRY001 -- translating to a typed ArtifactError is the whole job here; whether peeking again is worth it is the caller's policy decision, not the reader's
        raise ArtifactError(f"cannot read model artifact {path}: {exc}") from exc
    metadata = dict(_validate_envelope(path, metadata))
    metadata["arrays"] = arrays_info
    # Audit summary: hoist the budget actually spent and the dataset
    # fingerprint to the top level so ledger tooling and `experiments
    # inspect` can audit an artifact without digging through `result`
    # (or loading any payload).
    result = metadata.get("result")
    metadata["privacy_spent"] = (
        result.get("privacy_spent") if isinstance(result, dict) else None
    )
    metadata.setdefault("dataset_fingerprint", None)
    return metadata
