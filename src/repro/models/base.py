"""The :class:`Embedder` estimator protocol shared by every method.

The paper evaluates eight methods — SE-PrivGEmb / SE-GEmb with two
structure preferences plus four DP baselines — as interchangeable
"graph → |V| × r embedding under a budget" boxes.  This module is that box
as code: one estimator shape with

* ``fit(graph, *, rng=None) -> self`` — train on a graph (the graph is a
  ``fit`` argument, never constructor state, so one configured estimator
  can be fitted to many graphs),
* ``embeddings_`` — the trained ``|V| × r`` matrix,
* ``result_`` — a :class:`FitResult` with the per-epoch losses and, for
  private methods, the :class:`~repro.privacy.accountant.PrivacySpent`,
* ``save(path)`` / ``Embedder.load(path)`` — round-trip the fitted state
  through a single ``.npz`` + JSON artifact (see
  :mod:`repro.models.artifacts`) carrying the method spec, configurations,
  dataset fingerprint, proximity fingerprint and budget spent.

Concrete estimators implement ``_fit`` and are built declaratively through
the method registry (:mod:`repro.models.registry`):

>>> from repro.models import Embedder, get_method
>>> model = get_method("se_privgemb_dw").build(seed=0).fit(graph)
>>> model.save("model.npz")
>>> reloaded = Embedder.load("model.npz")  # bit-identical embeddings_
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TYPE_CHECKING

import numpy as np

from ..config import PrivacyConfig, TrainingConfig
from ..exceptions import ArtifactError, ConfigurationError, PrivacyError, TrainingError
from ..graph import Graph
from ..privacy.accountant import PrivacySpent
from ..utils.rng import ensure_rng
from .artifacts import load_artifact, save_artifact

if TYPE_CHECKING:  # registry imports embedders lazily; avoid the cycle here
    from ..privacy.ledger import PrivacyLedger
    from ..serving.engine import QueryEngine
    from .registry import MethodSpec

__all__ = ["Embedder", "FitResult", "WarmStart"]


@dataclass(frozen=True)
class WarmStart:
    """Resolved warm-start state: prior matrices to seed a refit from.

    Built by :meth:`Embedder.fit` from either a saved artifact path or a
    fitted estimator; consumed by trainers that set
    ``_supports_warm_start`` (they copy rows ``[0, min(n_new, num_nodes))``
    into the freshly initialised model, so new nodes keep their pinned
    fresh init and removed trailing nodes are dropped).
    """

    embeddings: np.ndarray
    context_embeddings: np.ndarray | None
    method: str | None
    dataset_fingerprint: str | None
    source: str  # description for metadata: the path or "estimator"

    @property
    def num_nodes(self) -> int:
        return int(self.embeddings.shape[0])

    @property
    def embedding_dim(self) -> int:
        return int(self.embeddings.shape[1])


@dataclass
class FitResult:
    """Outcome of one :meth:`Embedder.fit` call.

    ``privacy_spent`` is ``None`` for non-private methods; for private ones
    it records the budget consumed (which post-processing — evaluation,
    persistence, serving — inherits for free by Theorem 2).  The SE
    trainers snapshot their RDP accountant; the calibrated one-shot
    baselines report their configured target (their noise is calibrated so
    the whole release meets it) with ``best_alpha = steps = 0`` standing
    for "no per-step accountant curve".
    """

    losses: list[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False
    privacy_spent: PrivacySpent | None = None

    @property
    def final_loss(self) -> float:
        """Loss of the last completed epoch (NaN if none were recorded)."""
        return self.losses[-1] if self.losses else float("nan")

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form stored inside model artifacts."""
        spent = self.privacy_spent
        return {
            "losses": [float(value) for value in self.losses],
            "epochs_run": int(self.epochs_run),
            "stopped_early": bool(self.stopped_early),
            "privacy_spent": None
            if spent is None
            else {
                "epsilon": float(spent.epsilon),
                "delta": float(spent.delta),
                "best_alpha": float(spent.best_alpha),
                "steps": int(spent.steps),
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FitResult":
        """Rebuild a result from its artifact form."""
        spent = payload.get("privacy_spent")
        return cls(
            losses=[float(value) for value in payload.get("losses", [])],
            epochs_run=int(payload.get("epochs_run", 0)),
            stopped_early=bool(payload.get("stopped_early", False)),
            privacy_spent=None if spent is None else PrivacySpent(**spent),
        )


class Embedder(abc.ABC):
    """Base class of every embedding method (trainers and baselines alike).

    Subclasses implement :meth:`_fit`, which must assign
    ``self._embeddings`` (and optionally ``self._context_embeddings`` /
    ``self._proximity_fingerprint``) and return a :class:`FitResult`.
    Everything else — fitted-state bookkeeping, ``fit_transform``,
    artifact persistence — lives here once.
    """

    #: trainers that can seed their matrices from a prior artifact set this
    _supports_warm_start: bool = False
    #: private trainers that can record into a persistent ledger set this
    _supports_ledger: bool = False

    def __init__(self) -> None:
        self._spec: "MethodSpec | None" = getattr(self, "_spec", None)
        #: non-default build() kwargs, stamped by MethodSpec.build so
        #: artifacts can replay them on load
        self._build_overrides: dict[str, Any] = getattr(self, "_build_overrides", {})
        self._embeddings: np.ndarray | None = None
        self._context_embeddings: np.ndarray | None = None
        self._result: FitResult | None = None
        self._dataset_fingerprint: str | None = None
        self._proximity_fingerprint: str | None = None
        #: resolved WarmStart for the fit in flight (trainers consume it)
        self._pending_warm_start: WarmStart | None = None
        #: ledger bound to the fit in flight (private trainers consume it)
        self._active_ledger: "PrivacyLedger | None" = None
        #: provenance of the last applied warm start (for artifact metadata)
        self._last_warm_start: dict[str, Any] | None = None

    # ------------------------------------------------------------------ #
    # the estimator surface
    # ------------------------------------------------------------------ #
    def fit(
        self, graph: Graph, *, rng=None, warm_start=None, ledger=None, **fit_params
    ) -> "Embedder":
        """Train on ``graph`` and return ``self``.

        ``rng`` (seed, ``Generator`` or ``SeedSequence``) overrides the
        seed given at construction for this fit only.  ``warm_start``
        (a saved artifact path or a fitted estimator) seeds the embedding
        matrices from a prior fit — rows shared with the old node set are
        copied, new nodes keep their pinned fresh initialisation.
        ``ledger`` (a :class:`~repro.privacy.PrivacyLedger`) makes a
        private fit check admission against, and record its spend into,
        a durable budget lineage.  Extra keyword arguments are forwarded
        to the concrete ``_fit`` (e.g. the SE trainers accept a
        precomputed ``proximity=`` matrix).
        """
        if not isinstance(graph, Graph):
            raise ConfigurationError(
                f"fit expects a repro.Graph, got {type(graph).__name__}"
            )
        if warm_start is not None and not self._supports_warm_start:
            raise ConfigurationError(
                f"{type(self).__name__} does not support warm_start (only the "
                "skip-gram trainers seed from prior embeddings)"
            )
        if ledger is not None and not self._supports_ledger:
            raise ConfigurationError(
                f"{type(self).__name__} does not support a privacy ledger (only "
                "private trainers with a per-step accountant record into one)"
            )
        if ledger is not None:
            head = ledger.dataset_fingerprint
            if head is not None and head != graph.content_fingerprint():
                raise PrivacyError(
                    f"graph {graph.content_fingerprint()} is not the ledger's "
                    f"lineage head {head}; record the connecting delta(s) with "
                    "ledger.record_delta first"
                )
        generator = ensure_rng(rng) if rng is not None else self._fit_rng()
        self._embeddings = None
        self._context_embeddings = None
        self._result = None
        self._last_warm_start = None
        self._pending_warm_start = (
            self._resolve_warm_start(warm_start) if warm_start is not None else None
        )
        self._active_ledger = ledger
        try:
            result = self._fit(graph, generator, **fit_params)
        finally:
            self._pending_warm_start = None
            self._active_ledger = None
        if self._embeddings is None:
            raise TrainingError(
                f"{type(self).__name__}._fit completed without producing embeddings"
            )
        self._result = result
        self._dataset_fingerprint = graph.content_fingerprint()
        return self

    def _resolve_warm_start(self, source) -> WarmStart:
        """Normalise a warm-start argument to a :class:`WarmStart`.

        Accepts a saved artifact path (loaded through :meth:`load`, which
        already rejects spec drift) or a fitted estimator.  The embedding
        dimension must match this estimator's configuration; a different
        *method* only warns — cross-method seeding is legitimate (e.g.
        seeding a private refit from a non-private base fit) but worth
        flagging.
        """
        if isinstance(source, (str, Path)):
            donor = Embedder.load(source)
            label = str(source)
        elif isinstance(source, Embedder):
            source._check_fitted()
            source._check_spec_current()
            donor = source
            label = "estimator"
        else:
            raise ConfigurationError(
                "warm_start must be a saved artifact path or a fitted Embedder, "
                f"got {type(source).__name__}"
            )
        embeddings = np.asarray(donor._embeddings)
        context = donor._context_embeddings
        training = getattr(self, "training_config", None)
        if training is not None and embeddings.shape[1] != training.embedding_dim:
            raise ConfigurationError(
                f"warm-start embeddings have dimension {embeddings.shape[1]} but "
                f"this estimator is configured for {training.embedding_dim}"
            )
        donor_method = donor._spec.name if donor._spec is not None else None
        own_method = self._spec.name if self._spec is not None else None
        if donor_method is not None and own_method is not None and donor_method != own_method:
            warnings.warn(
                f"warm-starting a {own_method!r} fit from a {donor_method!r} "
                "artifact; embedding geometries may differ",
                RuntimeWarning,
                stacklevel=3,
            )
        return WarmStart(
            embeddings=embeddings,
            context_embeddings=np.asarray(context) if context is not None else None,
            method=donor_method,
            dataset_fingerprint=donor._dataset_fingerprint,
            source=label,
        )

    def fit_transform(self, graph: Graph, *, rng=None, **fit_params) -> np.ndarray:
        """:meth:`fit`, then return :attr:`embeddings_` (scikit-learn shape)."""
        return self.fit(graph, rng=rng, **fit_params).embeddings_

    def transform(self) -> np.ndarray:
        """Return the fitted embeddings (embeddings are transductive here)."""
        return self.embeddings_

    @abc.abstractmethod
    def _fit(self, graph: Graph, rng: np.random.Generator, **fit_params) -> FitResult:
        """Train on ``graph``; set ``self._embeddings`` and return the result."""

    def _fit_rng(self) -> np.random.Generator:
        """Generator used when :meth:`fit` is called without ``rng``."""
        return ensure_rng(getattr(self, "_seed", None))

    # ------------------------------------------------------------------ #
    # fitted state
    # ------------------------------------------------------------------ #
    def _check_fitted(self) -> None:
        if self._result is None or self._embeddings is None:
            raise TrainingError(
                f"{type(self).__name__} is not fitted yet; call fit(graph) first"
            )

    @property
    def is_fitted_(self) -> bool:
        """``True`` once :meth:`fit` (or a :meth:`load`) has completed."""
        return self._result is not None and self._embeddings is not None

    @property
    def embeddings_(self) -> np.ndarray:
        """The trained ``|V| × r`` embedding matrix."""
        self._check_fitted()
        return self._embeddings

    @property
    def context_embeddings_(self) -> np.ndarray | None:
        """The context (``W_out``) matrix, when the method has one."""
        self._check_fitted()
        return self._context_embeddings

    @property
    def result_(self) -> FitResult:
        """Losses, epochs run and privacy spent of the last fit."""
        self._check_fitted()
        return self._result

    @property
    def dataset_fingerprint_(self) -> str | None:
        """Content fingerprint of the graph the model was fitted on."""
        self._check_fitted()
        return self._dataset_fingerprint

    @property
    def proximity_fingerprint_(self) -> str | None:
        """Fingerprint of the proximity configuration (SE methods only)."""
        self._check_fitted()
        return self._proximity_fingerprint

    @property
    def spec(self) -> "MethodSpec | None":
        """The registry spec this estimator was built from (if any)."""
        return self._spec

    # ------------------------------------------------------------------ #
    # registry integration
    # ------------------------------------------------------------------ #
    @classmethod
    def from_method_spec(
        cls,
        spec: "MethodSpec",
        *,
        training: TrainingConfig | None = None,
        privacy: PrivacyConfig | None = None,
        perturbation=None,
        proximity=None,
        proximity_cache="default",
        seed=None,
        **kwargs,
    ) -> "Embedder":
        """Instantiate this estimator for a registry spec.

        The default maps onto the baseline constructor shape
        (``training_config`` / ``privacy_config`` / ``seed``) and ignores
        ``perturbation`` — the SE trainers override this to consume their
        proximity measure, cache policy and perturbation strategy.
        """
        if proximity is not None:
            raise ConfigurationError(
                f"method {spec.name!r} does not take a proximity measure"
            )
        model = cls(training_config=training, privacy_config=privacy, seed=seed, **kwargs)
        model._spec = spec
        return model

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _metadata(self) -> dict[str, Any]:
        """Method-specific artifact metadata; subclasses extend."""
        meta: dict[str, Any] = {}
        training = getattr(self, "training_config", None)
        if training is not None:
            meta["training"] = training.to_dict()
        privacy = getattr(self, "privacy_config", None)
        if privacy is not None:
            meta["privacy"] = privacy.to_dict()
        if self._last_warm_start is not None:
            meta["warm_start"] = dict(self._last_warm_start)
        return meta

    def _build_options(self) -> dict[str, Any]:
        """Build-time overrides :meth:`load` must replay.

        The base implementation returns whatever non-default kwargs
        :meth:`MethodSpec.build` recorded (e.g. ``hidden_dim`` for the
        GAN/VAE baselines, ``deepwalk_window`` for the SE methods);
        subclasses merge in anything they track themselves.
        """
        return dict(self._build_overrides)

    def _artifact_metadata(self) -> dict[str, Any]:
        """The full metadata document persisted with this fitted model.

        Shared by :meth:`save` (npz artifacts) and the serving exporter
        (:func:`repro.serving.store.export_servable`), so both carriers
        describe the model identically — method spec, fingerprints,
        result, build options.
        """
        self._check_fitted()
        cls = type(self)
        metadata: dict[str, Any] = {
            "embedder": f"{cls.__module__}:{cls.__qualname__}",
            "method": self._spec.name if self._spec is not None else None,
            "method_spec": self._spec.fingerprint_payload() if self._spec is not None else None,
            "dataset_fingerprint": self._dataset_fingerprint,
            "proximity_fingerprint": self._proximity_fingerprint,
            "result": self._result.to_dict(),
            "build_options": self._build_options(),
            **self._metadata(),
        }
        from .. import __version__

        metadata["repro_version"] = __version__
        return metadata

    def save(self, path: str | Path) -> Path:
        """Persist the fitted model as one ``.npz`` + JSON artifact."""
        metadata = self._artifact_metadata()
        arrays = {"embeddings": np.asarray(self._embeddings)}
        if self._context_embeddings is not None:
            arrays["context_embeddings"] = np.asarray(self._context_embeddings)
        return save_artifact(path, arrays, metadata)

    def _restore(self, arrays: dict[str, np.ndarray], metadata: dict[str, Any]) -> None:
        """Install persisted fitted state (no retraining)."""
        self._embeddings = np.asarray(arrays["embeddings"])
        context = arrays.get("context_embeddings")
        self._context_embeddings = np.asarray(context) if context is not None else None
        self._result = FitResult.from_dict(metadata.get("result") or {})
        self._dataset_fingerprint = metadata.get("dataset_fingerprint")
        self._proximity_fingerprint = metadata.get("proximity_fingerprint")

    @classmethod
    def load(cls, path: str | Path) -> "Embedder":
        """Reconstruct a fitted estimator from a saved artifact.

        The artifact's method name is resolved through the registry and its
        stored spec payload is checked against the current registration, so
        an artifact saved under a since-changed method definition fails
        loudly instead of silently impersonating the new one.  Calling
        ``load`` on a concrete subclass additionally asserts the artifact
        holds that type: ``SEPrivGEmbTrainer.load`` refuses a GAP artifact.
        """
        arrays, metadata = load_artifact(path)
        if "embeddings" not in arrays:
            raise ArtifactError(f"{path} has no embeddings array")
        method = metadata.get("method")
        if not method:
            raise ArtifactError(
                f"{path} was saved without a registered method name and cannot be "
                "reconstructed; re-save it from a registry-built estimator"
            )
        from .registry import get_method

        spec = get_method(method)
        stored = metadata.get("method_spec")
        if stored is not None and stored != spec.fingerprint_payload():
            raise ArtifactError(
                f"{path} was saved under a different registration of method "
                f"{method!r}; the artifact is stale relative to the current registry"
            )
        training = (
            TrainingConfig(**metadata["training"]) if metadata.get("training") else None
        )
        privacy = PrivacyConfig(**metadata["privacy"]) if metadata.get("privacy") else None
        model = spec.build(
            training=training,
            privacy=privacy,
            perturbation=metadata.get("perturbation"),
            **(metadata.get("build_options") or {}),
        )
        if not isinstance(model, cls):
            raise ArtifactError(
                f"{path} holds a {type(model).__name__} artifact, not {cls.__name__}; "
                f"load it via {type(model).__name__}.load or Embedder.load"
            )
        model._restore(arrays, metadata)
        return model

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def _check_spec_current(self) -> None:
        """Refuse serving when this model's method registration has drifted.

        ``load`` already rejects stale artifacts, but a long-lived fitted
        estimator can outlive a re-registration in the same process — the
        serving entry points re-check before handing out query engines.
        """
        if self._spec is None:
            return
        from .registry import get_method

        try:
            current = get_method(self._spec.name)
        except ConfigurationError as exc:
            raise ArtifactError(
                f"method {self._spec.name!r} is no longer registered; refusing to "
                f"serve this model: {exc}"
            ) from exc
        if current.fingerprint_payload() != self._spec.fingerprint_payload():
            raise ArtifactError(
                f"method {self._spec.name!r} has been re-registered with a different "
                "spec since this model was built; refusing to serve a drifted model"
            )

    def as_servable(self, **engine_kwargs) -> "QueryEngine":
        """Query this fitted model in-process, without refitting or exporting.

        Returns a :class:`repro.serving.QueryEngine` over the in-memory
        embedding matrices — the same engine :meth:`ServableModel.open`
        builds over memory-mapped sidecars, so a loaded estimator
        (``Embedder.load(...).as_servable()``) serves identically to an
        exported one.  Raises :class:`~repro.exceptions.ArtifactError` if
        the model's method registration has drifted since it was built.
        """
        self._check_fitted()
        self._check_spec_current()
        from ..serving.engine import QueryEngine

        context = self._context_embeddings
        return QueryEngine(
            np.asarray(self._embeddings),
            context_embeddings=np.asarray(context) if context is not None else None,
            **engine_kwargs,
        )

    def export_servable(self, path: str | Path, *, overwrite: bool = False) -> Path:
        """Export this fitted model as a memory-mappable servable directory.

        See :func:`repro.serving.store.export_servable`.
        """
        self._check_fitted()
        self._check_spec_current()
        from ..serving.store import export_servable

        return export_servable(self, path, overwrite=overwrite)
