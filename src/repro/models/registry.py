"""Declarative registry of embedding methods.

A method is described, not dispatched: a :class:`MethodSpec` names the
estimator class (as a lazily-imported ``"module:QualName"`` path, so the
registry itself never creates import cycles and stays picklable), the
proximity factory the method consumes, its default perturbation strategy
and whether it spends privacy budget.  The eight paper methods are
registered at import time; new methods — new proximities, new baselines,
serving-only wrappers — become registry entries instead of new branches in
an if-chain:

>>> from repro.models import get_method, available_methods, register, MethodSpec
>>> model = get_method("se_privgemb_dw").build(seed=0).fit(graph)
>>> register(MethodSpec(name="se_gemb_katz",
...                     embedder="repro.embedding.trainer:SEGEmbTrainer",
...                     proximity="katz"))

This replaces the old ``METHOD_NAMES`` tuple and the ``_dw`` / ``_deg``
string-suffix parsing: everything the experiment stack used to infer from
a method's *name* (its proximity, its privacy flag, its grouping key) is
now a structured field, and :meth:`MethodSpec.fingerprint` gives sweeps a
content address over the method *definition* rather than its label.
"""

from __future__ import annotations

import difflib
import hashlib
import importlib
import json
from dataclasses import dataclass, replace
from typing import Any, TYPE_CHECKING

import numpy as np

from ..config import PrivacyConfig, TrainingConfig
from ..exceptions import ConfigurationError
from ..proximity import get_proximity
from ..proximity.base import ProximityMeasure

if TYPE_CHECKING:
    from .base import Embedder

__all__ = [
    "MethodSpec",
    "available_methods",
    "get_method",
    "method_aliases",
    "register",
]

_REGISTRY: dict[str, "MethodSpec"] = {}
_ALIASES: dict[str, str] = {}
_EMBEDDER_CLASS_CACHE: dict[str, type] = {}


def _normalize(name: str) -> str:
    return name.strip().lower().replace("-", "_")


def _resolve_embedder_class(path: str) -> type["Embedder"]:
    """Import ``"module:QualName"`` and check it is an :class:`Embedder`."""
    cached = _EMBEDDER_CLASS_CACHE.get(path)
    if cached is not None:
        return cached
    module_name, _, qualname = path.partition(":")
    if not module_name or not qualname:
        raise ConfigurationError(
            f"embedder path {path!r} must look like 'package.module:ClassName'"
        )
    try:
        obj: Any = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigurationError(f"cannot import embedder module {module_name!r}: {exc}") from exc
    for attr in qualname.split("."):
        try:
            obj = getattr(obj, attr)
        except AttributeError as exc:
            raise ConfigurationError(
                f"module {module_name!r} has no attribute {qualname!r}"
            ) from exc
    from .base import Embedder

    if not (isinstance(obj, type) and issubclass(obj, Embedder)):
        raise ConfigurationError(f"{path!r} does not name an Embedder subclass")
    _EMBEDDER_CLASS_CACHE[path] = obj
    return obj


@dataclass(frozen=True)
class MethodSpec:
    """Declarative description of one embedding method.

    Attributes
    ----------
    name:
        Registry key (normalised to lowercase ``snake_case``).
    embedder:
        ``"module:QualName"`` path of the :class:`~repro.models.Embedder`
        subclass, imported lazily on first :meth:`build`.
    private:
        Whether the method consumes the (ε, δ) privacy budget.
    proximity:
        Name of the proximity measure the method's structure preference
        uses (resolved through :func:`repro.proximity.get_proximity`), or
        ``None`` for methods without one (the DP baselines).
    proximity_params:
        Sorted ``(name, value)`` constructor defaults for the proximity
        measure (e.g. the DeepWalk window size).
    perturbation:
        Default perturbation strategy name for private SE methods
        (``"nonzero"`` / ``"naive"``), ``None`` where not applicable.
    description:
        One-line human description (shown by CLI listings).
    """

    name: str
    embedder: str
    private: bool = False
    proximity: str | None = None
    proximity_params: tuple[tuple[str, Any], ...] = ()
    perturbation: str | None = None
    description: str = ""

    # ------------------------------------------------------------------ #
    def embedder_class(self) -> type["Embedder"]:
        """The estimator class (imported lazily and cached)."""
        return _resolve_embedder_class(self.embedder)

    def make_proximity(
        self, *, deepwalk_window: int | None = None, **overrides: Any
    ) -> ProximityMeasure | None:
        """Instantiate the method's proximity measure (``None`` if it has none).

        ``deepwalk_window`` is the experiment-level knob for the window
        size ``T``; it only applies to specs whose proximity is the
        truncated DeepWalk measure, exactly as the old ``*_dw`` suffix
        convention behaved.
        """
        if self.proximity is None:
            return None
        params = dict(self.proximity_params)
        if deepwalk_window is not None and self.proximity == "deepwalk":
            params["window_size"] = int(deepwalk_window)
        params.update(overrides)
        return get_proximity(self.proximity, **params)

    def build(
        self,
        training: TrainingConfig | None = None,
        privacy: PrivacyConfig | None = None,
        *,
        perturbation: str | None = None,
        deepwalk_window: int | None = None,
        proximity_cache: Any = "default",
        seed: int | np.random.Generator | np.random.SeedSequence | None = None,
        **overrides: Any,
    ) -> "Embedder":
        """Construct an unfitted estimator for this method.

        ``perturbation=None`` falls back to the spec default; extra keyword
        arguments are forwarded to the estimator constructor (e.g.
        ``negative_sampling="unigram"`` for SE-GEmb, ``num_hops=`` for GAP).
        """
        measure = self.make_proximity(deepwalk_window=deepwalk_window)
        cls = self.embedder_class()
        model = cls.from_method_spec(
            self,
            training=training,
            privacy=privacy,
            perturbation=perturbation if perturbation is not None else self.perturbation,
            proximity=measure,
            proximity_cache=proximity_cache,
            seed=seed,
            **overrides,
        )
        # remember the non-default build knobs so Embedder.load can replay
        # them: a reloaded estimator must be *configured* like the saved one
        # (hidden_dim, deepwalk_window, ...), not just carry its arrays
        build_overrides = dict(overrides)
        if deepwalk_window is not None:
            build_overrides["deepwalk_window"] = int(deepwalk_window)
        model._build_overrides = build_overrides
        return model

    # ------------------------------------------------------------------ #
    def fingerprint_payload(self) -> dict[str, Any]:
        """Canonical JSON-able form of everything that defines the method.

        Experiment cells hash this instead of the method *name*, so a
        re-registered method with different semantics invalidates stored
        results instead of silently reusing them.
        """
        return {
            "name": self.name,
            "embedder": self.embedder,
            "private": self.private,
            "proximity": self.proximity,
            "proximity_params": [[key, value] for key, value in self.proximity_params],
            "perturbation": self.perturbation,
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical payload — the method's content address."""
        canonical = json.dumps(
            self.fingerprint_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()


# --------------------------------------------------------------------- #
# registry operations
# --------------------------------------------------------------------- #
def register(
    spec: MethodSpec, *, aliases: tuple[str, ...] = (), overwrite: bool = False
) -> MethodSpec:
    """Register a method spec (and optional aliases) under its name.

    Returns the (name-normalised) spec actually stored.  Registering an
    existing name without ``overwrite=True`` is an error — accidental
    shadowing of a paper method would silently change every sweep that
    references it.
    """
    key = _normalize(spec.name)
    if not key:
        raise ConfigurationError("method name must be non-empty")
    stored = spec if spec.name == key else replace(spec, name=key)
    alias_keys = [a for a in (_normalize(alias) for alias in aliases) if a != key]
    if not overwrite:
        # aliases are resolved before registry names in get_method, so an
        # unchecked alias would silently hijack an existing method
        taken = [
            name for name in [key, *alias_keys] if name in _REGISTRY or name in _ALIASES
        ]
        if taken:
            raise ConfigurationError(
                f"method name(s)/alias(es) {', '.join(repr(t) for t in taken)} are "
                "already registered; pass overwrite=True to replace them"
            )
    _REGISTRY[key] = stored
    for alias_key in alias_keys:
        _ALIASES[alias_key] = key
    return stored


def available_methods() -> tuple[str, ...]:
    """Registered method names, in registration (paper) order."""
    return tuple(_REGISTRY)


def method_aliases() -> dict[str, str]:
    """Alias → canonical-name mapping (a copy)."""
    return dict(_ALIASES)


def get_method(name: str) -> MethodSpec:
    """Look up a method spec by name or alias.

    Unknown names raise :class:`~repro.exceptions.ConfigurationError`
    listing every available method and, when one is close enough, a
    did-you-mean hint.
    """
    if isinstance(name, MethodSpec):
        return name
    key = _normalize(str(name))
    # canonical names win over aliases: an alias can never shadow a method
    spec = _REGISTRY.get(key) or _REGISTRY.get(_ALIASES.get(key, key))
    if spec is None:
        candidates = list(_REGISTRY) + list(_ALIASES)
        close = difflib.get_close_matches(key, candidates, n=1, cutoff=0.6)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        raise ConfigurationError(
            f"unknown method {name!r}{hint} "
            f"(available: {', '.join(available_methods())})"
        )
    return spec


# --------------------------------------------------------------------- #
# the eight methods of the paper's evaluation
# --------------------------------------------------------------------- #
register(
    MethodSpec(
        name="se_privgemb_dw",
        embedder="repro.embedding.private_trainer:SEPrivGEmbTrainer",
        private=True,
        proximity="deepwalk",
        proximity_params=(("window_size", 5),),
        perturbation="nonzero",
        description="SE-PrivGEmb with the truncated-DeepWalk structure preference",
    ),
    aliases=("se_privgemb_deepwalk",),
)
register(
    MethodSpec(
        name="se_privgemb_deg",
        embedder="repro.embedding.private_trainer:SEPrivGEmbTrainer",
        private=True,
        proximity="degree",
        perturbation="nonzero",
        description="SE-PrivGEmb with the degree structure preference",
    ),
    aliases=("se_privgemb_degree",),
)
register(
    MethodSpec(
        name="se_gemb_dw",
        embedder="repro.embedding.trainer:SEGEmbTrainer",
        proximity="deepwalk",
        proximity_params=(("window_size", 5),),
        description="Non-private SE-GEmb upper bound (DeepWalk preference)",
    ),
    aliases=("se_gemb_deepwalk",),
)
register(
    MethodSpec(
        name="se_gemb_deg",
        embedder="repro.embedding.trainer:SEGEmbTrainer",
        proximity="degree",
        description="Non-private SE-GEmb upper bound (degree preference)",
    ),
    aliases=("se_gemb_degree",),
)
register(
    MethodSpec(
        name="dpggan",
        embedder="repro.baselines.dpggan:DPGGAN",
        private=True,
        description="DP graph GAN baseline (DPSGD discriminator + Moments Accountant)",
    )
)
register(
    MethodSpec(
        name="dpgvae",
        embedder="repro.baselines.dpgvae:DPGVAE",
        private=True,
        description="DP graph VAE baseline (DPSGD encoder + output privatisation)",
    )
)
register(
    MethodSpec(
        name="gap",
        embedder="repro.baselines.gap:GAP",
        private=True,
        description="Aggregation-perturbation GNN baseline",
    )
)
register(
    MethodSpec(
        name="progap",
        embedder="repro.baselines.progap:ProGAP",
        private=True,
        description="Progressive aggregation-perturbation GNN baseline",
    )
)
