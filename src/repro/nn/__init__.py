"""Minimal neural-network substrate (pure numpy) used by the DP baselines."""

from .layers import DenseLayer, Activation, Sequential
from .losses import binary_cross_entropy, binary_cross_entropy_grad, mse, mse_grad
from .gcn import normalized_adjacency, GCNLayer, GCNEncoder

__all__ = [
    "DenseLayer",
    "Activation",
    "Sequential",
    "binary_cross_entropy",
    "binary_cross_entropy_grad",
    "mse",
    "mse_grad",
    "normalized_adjacency",
    "GCNLayer",
    "GCNEncoder",
]
