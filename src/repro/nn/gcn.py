"""Graph-convolution substrate used by the GAP / ProGAP baselines.

A GCN layer computes ``H' = act(Â H W)`` where ``Â`` is the symmetrically
normalised adjacency with self-loops.  The GAP family perturbs the
*aggregation* step ``Â H`` with Gaussian noise (aggregation perturbation),
which is why the aggregation is exposed as its own method here.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..exceptions import ConfigurationError
from ..graph import Graph
from ..utils.rng import ensure_rng
from .layers import Activation, DenseLayer

__all__ = ["normalized_adjacency", "GCNLayer", "GCNEncoder"]


def normalized_adjacency(graph: Graph, add_self_loops: bool = True) -> np.ndarray:
    """Return ``D^{-1/2} (A + I) D^{-1/2}`` as a dense array."""
    adjacency = graph.adjacency_matrix()
    if sparse.issparse(adjacency):
        adjacency = adjacency.toarray()
    if add_self_loops:
        adjacency = adjacency + np.eye(graph.num_nodes)
    degrees = adjacency.sum(axis=1)
    inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(np.maximum(degrees, 1e-12)), 0.0)
    return adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]


class GCNLayer:
    """One graph convolution: aggregate with ``Â`` then transform with a dense layer."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str = "relu",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        rng = ensure_rng(seed)
        self.dense = DenseLayer(in_features, out_features, seed=rng)
        self.activation = Activation(activation)

    def aggregate(self, normalized_adj: np.ndarray, features: np.ndarray) -> np.ndarray:
        """The neighbourhood aggregation ``Â H`` (the step GAP perturbs)."""
        return normalized_adj @ features

    def transform(self, aggregated: np.ndarray) -> np.ndarray:
        """Apply the dense transform and activation to an aggregated matrix."""
        return self.activation.forward(self.dense.forward(aggregated))

    def forward(self, normalized_adj: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Full layer: aggregate then transform."""
        return self.transform(self.aggregate(normalized_adj, features))


class GCNEncoder:
    """A stack of GCN layers producing node embeddings.

    Parameters
    ----------
    layer_sizes:
        Sizes ``[in, hidden..., out]``; at least two entries.
    activation:
        Activation for all but the last layer (the last layer is linear).
    seed:
        Seed for the layer initialisations.
    """

    def __init__(
        self,
        layer_sizes: list[int],
        activation: str = "relu",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ConfigurationError(
                f"layer_sizes needs at least [in, out], got {layer_sizes}"
            )
        rng = ensure_rng(seed)
        self.layers: list[GCNLayer] = []
        for i in range(len(layer_sizes) - 1):
            act = activation if i < len(layer_sizes) - 2 else "identity"
            self.layers.append(
                GCNLayer(layer_sizes[i], layer_sizes[i + 1], activation=act, seed=rng)
            )

    def encode(
        self,
        normalized_adj: np.ndarray,
        features: np.ndarray,
        aggregation_hook=None,
    ) -> np.ndarray:
        """Run all layers; ``aggregation_hook(agg) -> agg`` perturbs each aggregation.

        The hook is how GAP injects aggregation-perturbation noise without
        the encoder knowing about privacy at all.
        """
        hidden = features
        for layer in self.layers:
            aggregated = layer.aggregate(normalized_adj, hidden)
            if aggregation_hook is not None:
                aggregated = aggregation_hook(aggregated)
            hidden = layer.transform(aggregated)
        return hidden
