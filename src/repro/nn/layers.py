"""Tiny feed-forward layer library with manual forward/backward passes.

PyTorch is not available in this environment, so the DP baselines
(DPGGAN, DPGVAE, GAP, ProGAP) are built on this small substrate: dense
layers, element-wise activations, and a sequential container.  Each module
implements ``forward`` and ``backward`` explicitly; ``backward`` receives
the gradient of the loss with respect to the module's output and returns
the gradient with respect to its input while accumulating parameter
gradients internally.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import ClassVar

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.math import sigmoid
from ..utils.rng import ensure_rng

__all__ = ["DenseLayer", "Activation", "Sequential"]


class DenseLayer:
    """Fully connected layer ``y = x W + b`` with manual gradients."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError(
                f"in_features and out_features must be positive, got "
                f"{in_features}/{out_features}"
            )
        rng = ensure_rng(seed)
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weight = rng.uniform(-limit, limit, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.weight_grad = np.zeros_like(self.weight)
        self.bias_grad = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute ``x W + b`` and cache ``x`` for the backward pass."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients and return the input gradient."""
        if self._input is None:
            raise ConfigurationError("backward called before forward")
        grad_output = np.atleast_2d(np.asarray(grad_output, dtype=float))
        self.weight_grad += self._input.T @ grad_output
        self.bias_grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    def zero_grad(self) -> None:
        """Reset accumulated parameter gradients."""
        self.weight_grad.fill(0.0)
        self.bias_grad.fill(0.0)

    def parameters(self) -> list[np.ndarray]:
        """Return the trainable parameter arrays (views)."""
        return [self.weight, self.bias]

    def gradients(self) -> list[np.ndarray]:
        """Return the accumulated gradients aligned with :meth:`parameters`."""
        return [self.weight_grad, self.bias_grad]

    def apply_gradients(self, learning_rate: float) -> None:
        """SGD step on this layer's parameters."""
        self.weight -= learning_rate * self.weight_grad
        self.bias -= learning_rate * self.bias_grad


class Activation:
    """Element-wise activation module: relu, sigmoid, tanh or identity."""

    _FORWARD: ClassVar[dict[str, Callable[[np.ndarray], np.ndarray]]] = {
        "relu": lambda x: np.maximum(x, 0.0),
        "sigmoid": sigmoid,
        "tanh": np.tanh,
        "identity": lambda x: x,
    }

    def __init__(self, kind: str = "relu") -> None:
        key = kind.strip().lower()
        if key not in self._FORWARD:
            raise ConfigurationError(
                f"unknown activation {kind!r}; available: {sorted(self._FORWARD)}"
            )
        self.kind = key
        self._output: np.ndarray | None = None
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the activation element-wise."""
        x = np.asarray(x, dtype=float)
        self._input = x
        self._output = self._FORWARD[self.kind](x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Chain the activation derivative into the incoming gradient."""
        if self._output is None or self._input is None:
            raise ConfigurationError("backward called before forward")
        if self.kind == "relu":
            local = (self._input > 0).astype(float)
        elif self.kind == "sigmoid":
            local = self._output * (1.0 - self._output)
        elif self.kind == "tanh":
            local = 1.0 - self._output**2
        else:
            local = np.ones_like(self._output)
        return np.asarray(grad_output, dtype=float) * local

    def zero_grad(self) -> None:
        """No-op (activations have no parameters)."""

    def parameters(self) -> list[np.ndarray]:
        """Activations have no parameters."""
        return []

    def gradients(self) -> list[np.ndarray]:
        """Activations have no gradients."""
        return []

    def apply_gradients(self, learning_rate: float) -> None:
        """No-op (activations have no parameters)."""


class Sequential:
    """A chain of modules applied in order."""

    def __init__(self, *modules: object) -> None:
        if not modules:
            raise ConfigurationError("Sequential needs at least one module")
        self.modules = list(modules)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward through every module in order."""
        for module in self.modules:
            x = module.forward(x)  # type: ignore[attr-defined]
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backward through every module in reverse order."""
        for module in reversed(self.modules):
            grad_output = module.backward(grad_output)  # type: ignore[attr-defined]
        return grad_output

    def zero_grad(self) -> None:
        """Reset gradients of all modules."""
        for module in self.modules:
            module.zero_grad()  # type: ignore[attr-defined]

    def parameters(self) -> list[np.ndarray]:
        """All trainable parameters in module order."""
        params: list[np.ndarray] = []
        for module in self.modules:
            params.extend(module.parameters())  # type: ignore[attr-defined]
        return params

    def gradients(self) -> list[np.ndarray]:
        """All gradients aligned with :meth:`parameters`."""
        grads: list[np.ndarray] = []
        for module in self.modules:
            grads.extend(module.gradients())  # type: ignore[attr-defined]
        return grads

    def apply_gradients(self, learning_rate: float) -> None:
        """SGD step on every module."""
        for module in self.modules:
            module.apply_gradients(learning_rate)  # type: ignore[attr-defined]
