"""Loss functions (with gradients) for the numpy NN substrate."""

from __future__ import annotations

import numpy as np

from ..utils.math import stable_log

__all__ = [
    "binary_cross_entropy",
    "binary_cross_entropy_grad",
    "mse",
    "mse_grad",
]


def binary_cross_entropy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean binary cross-entropy of probabilities against 0/1 targets."""
    predictions = np.asarray(predictions, dtype=float)
    targets = np.asarray(targets, dtype=float)
    losses = -(targets * stable_log(predictions) + (1 - targets) * stable_log(1 - predictions))
    return float(np.mean(losses))


def binary_cross_entropy_grad(predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Gradient of mean BCE with respect to the predicted probabilities."""
    predictions = np.asarray(predictions, dtype=float)
    targets = np.asarray(targets, dtype=float)
    clipped = np.clip(predictions, 1e-12, 1 - 1e-12)
    return (clipped - targets) / (clipped * (1 - clipped)) / predictions.size


def mse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean squared error."""
    predictions = np.asarray(predictions, dtype=float)
    targets = np.asarray(targets, dtype=float)
    return float(np.mean((predictions - targets) ** 2))


def mse_grad(predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Gradient of MSE with respect to the predictions."""
    predictions = np.asarray(predictions, dtype=float)
    targets = np.asarray(targets, dtype=float)
    return 2.0 * (predictions - targets) / predictions.size
