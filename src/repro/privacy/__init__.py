"""Differential-privacy machinery: mechanisms, RDP accounting, amplification."""

from .mechanisms import GaussianMechanism, clip_gradient, clip_rows
from .rdp import (
    gaussian_rdp,
    rdp_to_dp,
    dp_to_rdp_budget,
    compose_rdp,
    DEFAULT_ALPHA_GRID,
)
from .subsampling import subsampled_rdp
from .accountant import RdpAccountant, PrivacySpent
from .ledger import PrivacyLedger, LEDGER_FORMAT, LEDGER_VERSION
from .moments import MomentsAccountant
from .sensitivity import (
    batch_gradient_sensitivity,
    per_example_sensitivity,
    node_level_edge_change_bound,
)

__all__ = [
    "GaussianMechanism",
    "clip_gradient",
    "clip_rows",
    "gaussian_rdp",
    "rdp_to_dp",
    "dp_to_rdp_budget",
    "compose_rdp",
    "DEFAULT_ALPHA_GRID",
    "subsampled_rdp",
    "RdpAccountant",
    "PrivacySpent",
    "PrivacyLedger",
    "LEDGER_FORMAT",
    "LEDGER_VERSION",
    "MomentsAccountant",
    "batch_gradient_sensitivity",
    "per_example_sensitivity",
    "node_level_edge_change_bound",
]
