"""The RDP privacy accountant used by SE-PrivGEmb (Algorithm 2, lines 8-10).

Each private SGD step applies the subsampled Gaussian mechanism with
sampling rate ``γ = B / |GS|``.  The accountant accumulates the per-step RDP
curve over an α grid, converts to (ε, δ)-DP after every step, and reports
when the target budget would be exceeded so training can stop.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..exceptions import PrivacyError
from .rdp import DEFAULT_ALPHA_GRID, rdp_to_dp
from .subsampling import subsampled_gaussian_rdp_curve

__all__ = ["PrivacySpent", "RdpAccountant"]


@dataclass(frozen=True)
class PrivacySpent:
    """A snapshot of the privacy loss after some number of steps."""

    epsilon: float
    delta: float
    best_alpha: float
    steps: int

    def __str__(self) -> str:
        return (
            f"(ε={self.epsilon:.4f}, δ={self.delta:.1e}) after {self.steps} steps "
            f"(best α={self.best_alpha:g})"
        )


class RdpAccountant:
    """Track RDP of repeated subsampled-Gaussian steps and convert to (ε, δ)-DP.

    Parameters
    ----------
    noise_multiplier:
        ``σ`` of the Gaussian mechanism (noise std in sensitivity units).
    sampling_rate:
        ``γ`` of the without-replacement subsample, i.e. ``B / |GS|``.
    alphas:
        Rényi orders to track; defaults to a standard dense grid.
    """

    def __init__(
        self,
        noise_multiplier: float,
        sampling_rate: float,
        alphas: Sequence[float] = DEFAULT_ALPHA_GRID,
    ) -> None:
        if noise_multiplier <= 0:
            raise PrivacyError(f"noise_multiplier must be positive, got {noise_multiplier}")
        if not 0 < sampling_rate <= 1:
            raise PrivacyError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
        self.noise_multiplier = float(noise_multiplier)
        self.sampling_rate = float(sampling_rate)
        self.alphas = np.asarray(list(alphas), dtype=float)
        if np.any(self.alphas <= 1):
            raise PrivacyError("all alpha orders must be > 1")
        self._per_step_curve = subsampled_gaussian_rdp_curve(
            self.noise_multiplier, self.sampling_rate, self.alphas
        )
        self._total_curve = np.zeros_like(self._per_step_curve)
        self._steps = 0
        #: set by PrivacyLedger.attach — a ledger-bound accountant must
        #: never forget spent budget (the ledger is the durable record)
        self._ledger_attached = False

    # ------------------------------------------------------------------ #
    @property
    def steps(self) -> int:
        """Number of accounted steps so far."""
        return self._steps

    @property
    def per_step_rdp(self) -> np.ndarray:
        """The (amplified) RDP curve of a single step."""
        return self._per_step_curve.copy()

    @property
    def total_rdp(self) -> np.ndarray:
        """The composed RDP curve after all accounted steps."""
        return self._total_curve.copy()

    def step(self, count: int = 1) -> None:
        """Account for ``count`` additional private steps.

        The composed curve is maintained as ``steps * per_step_curve`` rather
        than by accumulation, so it is bit-for-bit independent of how the
        steps were batched — stepping 1-by-1, in one ``step(T)`` call, or as
        per-shard counts via :meth:`step_shards` all land on the identical
        curve (and therefore the identical reported ε).  This also keeps
        :meth:`get_privacy_spent` exactly consistent with the hypothetical
        projections (:meth:`epsilon_after`, :meth:`max_steps`), which always
        used the multiplicative form.
        """
        if count < 0:
            raise PrivacyError(f"count must be non-negative, got {count}")
        self._steps += count
        self._total_curve = self._steps * self._per_step_curve

    def step_shards(self, counts: Sequence[int]) -> None:
        """Account for sharded training: ``counts[i]`` steps ran on shard ``i``.

        RDP composition of the subsampled Gaussian is *linear* in the step
        count at a fixed sampling rate, so a run split across K hogwild
        workers spends exactly what one worker running ``sum(counts)``
        steps spends — every shard samples its batches from the same
        subgraph set at the same rate γ, and each sampled batch is one
        invocation of the mechanism regardless of which process ran it.
        This method is that argument made executable (and testable): the
        per-shard counts are validated and composed into the single total
        the serial accountant would have accumulated.
        """
        total = 0
        for count in counts:
            if count < 0:
                raise PrivacyError(f"shard step counts must be non-negative, got {count}")
            total += int(count)
        self.step(total)

    def get_privacy_spent(self, delta: float) -> PrivacySpent:
        """Return the (ε, δ)-DP guarantee implied by the steps so far."""
        if self._steps == 0:
            return PrivacySpent(epsilon=0.0, delta=delta, best_alpha=float("nan"), steps=0)
        epsilon, best_alpha = rdp_to_dp(self._total_curve, self.alphas, delta)
        return PrivacySpent(
            epsilon=epsilon, delta=delta, best_alpha=best_alpha, steps=self._steps
        )

    def epsilon_after(self, steps: int, delta: float) -> float:
        """ε after a hypothetical total of ``steps`` steps (without mutating state)."""
        if steps < 0:
            raise PrivacyError(f"steps must be non-negative, got {steps}")
        if steps == 0:
            return 0.0
        curve = steps * self._per_step_curve
        epsilon, _ = rdp_to_dp(curve, self.alphas, delta)
        return epsilon

    def delta_after(self, steps: int, target_epsilon: float) -> float:
        """Smallest δ certifiable for ``target_epsilon`` after ``steps`` steps.

        This is the ``get privacy spent given the target ε`` operation of
        Algorithm 2 line 9: training stops once this δ exceeds the configured
        failure probability.  Uses the conversion
        ``δ(α) = exp((α-1)(ε_RDP(α) - ε_target))`` minimised over α.
        """
        if target_epsilon <= 0:
            raise PrivacyError(f"target_epsilon must be positive, got {target_epsilon}")
        if steps < 0:
            raise PrivacyError(f"steps must be non-negative, got {steps}")
        if steps == 0:
            return 0.0
        curve = steps * self._per_step_curve
        log_deltas = (self.alphas - 1.0) * (curve - target_epsilon)
        return float(np.exp(np.min(log_deltas)))

    def max_steps(self, target_epsilon: float, delta: float, limit: int = 1_000_000) -> int:
        """Largest number of steps whose ε stays at or below ``target_epsilon``.

        Uses binary search over the step count; ``limit`` bounds the search.
        """
        if self.epsilon_after(1, delta) > target_epsilon:
            return 0
        lo, hi = 1, 1
        while hi < limit and self.epsilon_after(hi, delta) <= target_epsilon:
            lo, hi = hi, hi * 2
        hi = min(hi, limit)
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.epsilon_after(mid, delta) <= target_epsilon:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def would_exceed(self, target_epsilon: float, delta: float) -> bool:
        """Return ``True`` if accounting one more step would exceed the target ε."""
        return self.epsilon_after(self._steps + 1, delta) > target_epsilon

    def reset(self) -> None:
        """Forget all accounted steps.

        The mechanism invocations already happened — resetting the counter
        does not un-spend the privacy loss, it only stops *reporting* it.
        Discarding a non-zero count therefore warns, and an accountant
        attached to a :class:`~repro.privacy.ledger.PrivacyLedger` refuses
        outright: the ledger is the durable record of spend and must never
        diverge from the live accountant underneath it.
        """
        if self._ledger_attached:
            raise PrivacyError(
                "this accountant is attached to a persistent privacy ledger; "
                "resetting would discard budget the ledger is recording — refusing"
            )
        if self._steps:
            warnings.warn(
                f"RdpAccountant.reset() discards {self._steps} accounted steps; "
                "the privacy loss already incurred does not reset",
                RuntimeWarning,
                stacklevel=2,
            )
        self._total_curve = np.zeros_like(self._per_step_curve)
        self._steps = 0

    def __repr__(self) -> str:
        return (
            f"RdpAccountant(noise_multiplier={self.noise_multiplier}, "
            f"sampling_rate={self.sampling_rate:.4g}, steps={self._steps})"
        )
