"""Persistent privacy ledger: durable (ε, δ) accounting across a lineage.

The in-process :class:`RdpAccountant` dies with the process, which makes
"retrain nightly on the updated graph" silently reset ε to zero.  The
ledger is the durable record: a per-dataset append-only JSONL file — a
canonical-JSON header line followed by one canonical-JSON record per line
— holding two kinds of entries:

* ``delta`` — the dataset lineage: *old graph fingerprint → new graph
  fingerprint* through an :class:`~repro.streaming.EdgeDelta` fingerprint.
  The chain pins exactly which sequence of graphs the spent budget refers
  to; a fit against a graph that is not the current lineage head is
  refused (it would be accounting against the wrong neighbouring-database
  relation).
* ``fit`` — one private training run: mechanism parameters
  ``(noise_multiplier, sampling_rate)``, the step count, and the (ε, δ)
  reported at completion.

Entries are hash-chained (each carries the hash of its predecessor), so a
truncated, reordered, or edited ledger fails verification at load time.

Durability (PR 10).  Appends are O(1): one line is appended and fsync'd by
the OS rather than rewriting the whole document, so the ledger scales to
long lineages.  The failure modes are typed: a process killed mid-append
leaves a *torn tail* — a final line that is not valid JSON while the chain
before it verifies — which loading reports as
:class:`~repro.exceptions.LedgerTornError`; re-opening with
``PrivacyLedger(path, repair=True)`` truncates the torn tail (atomic full
rewrite) under a :class:`LedgerRepairWarning`.  Corruption anywhere *else*
stays a hard :class:`~repro.exceptions.PrivacyError` — only the
last-line-torn signature is recoverable, because only there can "killed
mid-append" be distinguished from tampering.  Version-1 whole-document
ledgers load transparently and are migrated to the JSONL form on their
next append.

Composition is exact, not additive-in-ε: the cumulative guarantee is
recomputed from the raw entries by summing RDP curves on a shared α grid
— ``total_steps(σ, γ) × per_step_curve(σ, γ)`` per parameter group,
composed with :func:`~repro.privacy.rdp.compose_rdp` — which makes the
ledger total over K refits of T steps *bit-identical* to one
:class:`RdpAccountant` stepped K·T times.  ``would_exceed`` /
``remaining_steps`` answer the admission question **before** a refit
spends anything, and :meth:`attach` marks a live accountant as
ledger-bound so its ``reset()`` (which would fork the record) is refused.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from collections.abc import Sequence
from pathlib import Path
from typing import Any

import numpy as np

from ..exceptions import LedgerTornError, PrivacyBudgetExhausted, PrivacyError
from ..robustness.faults import get_active_plan
from ..utils.fileio import atomic_write_path
from .accountant import PrivacySpent, RdpAccountant
from .rdp import DEFAULT_ALPHA_GRID, compose_rdp, rdp_to_dp
from .subsampling import subsampled_gaussian_rdp_curve

__all__ = [
    "LEDGER_FORMAT",
    "LEDGER_VERSION",
    "LedgerRepairWarning",
    "PrivacyLedger",
]

LEDGER_FORMAT = "repro.privacy.ledger"
LEDGER_VERSION = 2

#: parent pointer of the first entry in a chain
_GENESIS = "genesis"


class LedgerRepairWarning(UserWarning):
    """A torn ledger tail was truncated under explicit ``repair=True``."""


def _canonical(payload: dict[str, Any]) -> str:
    """One canonical-JSON line (sorted keys, no whitespace, no newline)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _fingerprint_of(dataset: object) -> str:
    """Resolve a dataset argument to a content fingerprint string.

    Accepts a fingerprint directly or anything with a
    ``content_fingerprint()`` method (e.g. :class:`repro.Graph` — duck
    typed so the typed privacy core does not depend on the graph stack).
    """
    if isinstance(dataset, str):
        return dataset
    method = getattr(dataset, "content_fingerprint", None)
    if callable(method):
        return str(method())
    raise PrivacyError(
        "dataset must be a fingerprint string or an object with a "
        f"content_fingerprint() method, got {type(dataset).__name__}"
    )


def _entry_hash(entry: dict[str, Any]) -> str:
    """Content hash of one entry (excluding its own ``entry_hash`` field)."""
    payload = {key: value for key, value in entry.items() if key != "entry_hash"}
    digest = hashlib.sha256()
    digest.update(b"repro-ledger-entry-v1")
    digest.update(json.dumps(payload, sort_keys=True, separators=(",", ":")).encode())
    return digest.hexdigest()[:32]


class PrivacyLedger:
    """Append-only, hash-chained record of privacy spend for one lineage.

    Parameters
    ----------
    path:
        The ledger file.  A missing file is an empty ledger; the file is
        created on the first append.
    alphas:
        Rényi orders of the shared composition grid.  Every accountant
        attached to (or recorded into) this ledger must use the identical
        grid — curve addition across grids would be meaningless.
    repair:
        Opt-in recovery of a *torn tail* (the file's final record line is
        incomplete — the signature of a writer killed mid-append): the
        torn tail is truncated with a :class:`LedgerRepairWarning` and the
        verified prefix is kept.  ``False`` (default) raises
        :class:`~repro.exceptions.LedgerTornError` instead, so silent data
        loss needs an explicit decision.  Corruption that is not a torn
        tail always raises, regardless of ``repair``.
    """

    def __init__(
        self,
        path: str | Path,
        alphas: Sequence[float] = DEFAULT_ALPHA_GRID,
        *,
        repair: bool = False,
    ) -> None:
        self.path = Path(path)
        self.alphas = np.asarray(list(alphas), dtype=float)
        if self.alphas.size == 0 or np.any(self.alphas <= 1.0):
            raise PrivacyError("all alpha orders must be > 1")
        self.repair = bool(repair)
        self._entries: list[dict[str, Any]] = []
        self._loaded_version = LEDGER_VERSION
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        try:
            raw = self.path.read_text()
        except OSError as exc:  # repro-lint: disable=RETRY001 -- load is a read-only startup path; the caller decides whether opening the ledger again is meaningful, a blind retry here would just mask a dead disk
            raise PrivacyError(f"cannot read privacy ledger {self.path}: {exc}") from exc
        # a v1 ledger (or a v2 header-only file) is one whole JSON document;
        # anything multi-line lands in the JSONL path below
        try:
            document = json.loads(raw)
        except json.JSONDecodeError:
            document = None
        if document is not None:
            if not isinstance(document, dict) or document.get("format") != LEDGER_FORMAT:
                raise PrivacyError(
                    f"{self.path} is not a privacy ledger (missing format marker)"
                )
            version = document.get("version")
            if version == LEDGER_VERSION:
                self._entries = []  # a freshly-written v2 header, no records yet
                return
            if version != 1:
                raise PrivacyError(
                    f"unsupported ledger version {version!r} in {self.path}"
                )
            entries = document.get("entries")
            if not isinstance(entries, list):
                raise PrivacyError(
                    f"malformed ledger {self.path}: entries must be a list"
                )
            self._entries = self._verify_chain(entries)
            self._loaded_version = 1  # migrated to JSONL on the next append
            return
        self._load_jsonl(raw)

    def _load_jsonl(self, raw: str) -> None:
        lines = [
            (number, line)
            for number, line in enumerate(raw.splitlines(), start=1)
            if line.strip()
        ]
        try:
            header = json.loads(lines[0][1])
        except json.JSONDecodeError:
            header = None
        if not isinstance(header, dict) or header.get("format") != LEDGER_FORMAT:
            raise PrivacyError(
                f"{self.path} is not a privacy ledger (missing format marker)"
            )
        if header.get("version") != LEDGER_VERSION:
            raise PrivacyError(
                f"unsupported ledger version {header.get('version')!r} in {self.path}"
            )
        entries: list[dict[str, Any]] = []
        torn: tuple[int, str] | None = None
        for position, (number, line) in enumerate(lines[1:]):
            try:
                entry = json.loads(line)
                if not isinstance(entry, dict):
                    raise ValueError("record is not a JSON object")
            except (json.JSONDecodeError, ValueError) as exc:
                if position == len(lines) - 2:  # the file's final record line
                    torn = (number, line)
                    break
                raise PrivacyError(
                    f"malformed ledger {self.path}: line {number} is not a "
                    f"valid record ({exc})"
                ) from exc
            entries.append(entry)
        # the prefix must verify even when the tail is torn: a torn tail is
        # recoverable precisely because everything before it is provably
        # intact — a broken chain is tampering, not a crash signature
        verified = self._verify_chain(entries)
        if torn is not None:
            if not self.repair:
                raise LedgerTornError(
                    f"torn write detected in {self.path}: line {torn[0]} is an "
                    f"incomplete record ({len(torn[1])} bytes) — the writer was "
                    "likely killed mid-append. The chain before it is intact; "
                    "re-open with PrivacyLedger(path, repair=True) to truncate "
                    "the torn tail."
                )
            warnings.warn(
                LedgerRepairWarning(
                    f"truncating torn tail of {self.path} (line {torn[0]}, "
                    f"{len(torn[1])} bytes); {len(verified)} verified entries kept"
                ),
                stacklevel=3,
            )
            self._entries = verified
            self._rewrite()
            return
        self._entries = verified

    def _verify_chain(self, entries: list[Any]) -> list[dict[str, Any]]:
        expected_parent = _GENESIS
        verified: list[dict[str, Any]] = []
        for position, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise PrivacyError(
                    f"malformed ledger {self.path}: entry {position} is not an object"
                )
            if entry.get("parent") != expected_parent:
                raise PrivacyError(
                    f"broken hash chain in {self.path} at entry {position}: "
                    f"parent {entry.get('parent')!r} != expected {expected_parent!r} "
                    "(truncated, reordered, or edited ledger)"
                )
            recomputed = _entry_hash(entry)
            if entry.get("entry_hash") != recomputed:
                raise PrivacyError(
                    f"tampered ledger {self.path}: entry {position} hash "
                    f"{entry.get('entry_hash')!r} does not match its content"
                )
            expected_parent = recomputed
            verified.append(entry)
        return verified

    def _rewrite(self) -> None:
        """Atomic full rewrite in the JSONL form (migration / repair)."""
        lines = [_canonical({"format": LEDGER_FORMAT, "version": LEDGER_VERSION})]
        lines.extend(_canonical(entry) for entry in self._entries)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with atomic_write_path(self.path) as tmp_path:
            tmp_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        self._loaded_version = LEDGER_VERSION

    def _append(self, entry: dict[str, Any]) -> dict[str, Any]:
        entry = dict(entry)
        entry["parent"] = self.head_hash
        entry["entry_hash"] = _entry_hash(entry)
        if self._loaded_version != LEDGER_VERSION or not self.path.exists():
            # first write of a new ledger, or the one-time migration of a
            # v1 whole-document file: atomic full rewrite
            self._entries.append(entry)
            self._rewrite()
            return entry
        line = _canonical(entry)
        with self.path.open("a", encoding="utf-8") as fh:
            half = len(line) // 2
            fh.write(line[:half])
            # the ledger.append fault point sits mid-record: a crash rule
            # here provably tears the line on disk (the head is flushed
            # first), which is what the torn-tail recovery drill relies on.
            # Without an active plan the byte stream is identical.
            plan = get_active_plan()
            if plan is not None:
                fh.flush()
                plan.hit("ledger.append", path=str(self.path))
            fh.write(line[half:])
            fh.write("\n")
        self._entries.append(entry)
        return entry

    # ------------------------------------------------------------------ #
    # chain / lineage state
    # ------------------------------------------------------------------ #
    @property
    def entries(self) -> list[dict[str, Any]]:
        """A copy of all verified entries, oldest first."""
        return [dict(entry) for entry in self._entries]

    @property
    def head_hash(self) -> str:
        """Hash of the newest entry (``"genesis"`` for an empty ledger)."""
        if not self._entries:
            return _GENESIS
        return str(self._entries[-1]["entry_hash"])

    @property
    def dataset_fingerprint(self) -> str | None:
        """Fingerprint of the current lineage head (``None`` when empty)."""
        for entry in reversed(self._entries):
            fingerprint = entry.get("dataset_fingerprint")
            if fingerprint is not None:
                return str(fingerprint)
        return None

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # appends
    # ------------------------------------------------------------------ #
    def record_delta(
        self, old_dataset: object, new_dataset: object, delta: object
    ) -> dict[str, Any]:
        """Advance the lineage: ``old_dataset`` evolved into ``new_dataset``.

        ``delta`` may be an :class:`~repro.streaming.EdgeDelta` (its
        fingerprint and batch sizes are recorded) or a fingerprint string.
        The old fingerprint must match the current lineage head.
        """
        old_fp = _fingerprint_of(old_dataset)
        new_fp = _fingerprint_of(new_dataset)
        current = self.dataset_fingerprint
        if current is not None and old_fp != current:
            raise PrivacyError(
                f"lineage break: delta starts from {old_fp} but the ledger head "
                f"is {current}; record intermediate deltas in order"
            )
        entry: dict[str, Any] = {
            "kind": "delta",
            "parent_dataset_fingerprint": old_fp,
            "dataset_fingerprint": new_fp,
        }
        if isinstance(delta, str):
            entry["delta_fingerprint"] = delta
        else:
            fingerprint = getattr(delta, "fingerprint", None)
            if not callable(fingerprint):
                raise PrivacyError(
                    "delta must be an EdgeDelta or a fingerprint string, got "
                    f"{type(delta).__name__}"
                )
            entry["delta_fingerprint"] = str(fingerprint())
            for attribute in ("num_inserts", "num_deletes", "num_nodes"):
                value = getattr(delta, attribute, None)
                if value is not None:
                    entry[attribute] = int(value)
        return self._append(entry)

    def record_fit(
        self,
        dataset: object,
        *,
        method: str,
        noise_multiplier: float,
        sampling_rate: float,
        steps: int,
        delta: float,
        epsilon: float,
        target_epsilon: float | None = None,
    ) -> dict[str, Any]:
        """Record one completed private fit/refit against the lineage head."""
        fingerprint = _fingerprint_of(dataset)
        current = self.dataset_fingerprint
        if current is not None and fingerprint != current:
            raise PrivacyError(
                f"fit against dataset {fingerprint} but the ledger lineage head is "
                f"{current}; record the connecting delta(s) first"
            )
        if noise_multiplier <= 0:
            raise PrivacyError(
                f"noise_multiplier must be positive, got {noise_multiplier}"
            )
        if not 0 < sampling_rate <= 1:
            raise PrivacyError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
        if steps < 0:
            raise PrivacyError(f"steps must be non-negative, got {steps}")
        if not 0 < delta < 1:
            raise PrivacyError(f"delta must be in (0, 1), got {delta}")
        entry: dict[str, Any] = {
            "kind": "fit",
            "dataset_fingerprint": fingerprint,
            "method": str(method),
            "noise_multiplier": float(noise_multiplier),
            "sampling_rate": float(sampling_rate),
            "steps": int(steps),
            "delta": float(delta),
            "epsilon": float(epsilon),
        }
        if target_epsilon is not None:
            entry["target_epsilon"] = float(target_epsilon)
        return self._append(entry)

    def record_accountant(
        self,
        dataset: object,
        accountant: RdpAccountant,
        *,
        method: str,
        delta: float,
        target_epsilon: float | None = None,
    ) -> dict[str, Any]:
        """Record a fit straight from a live accountant's state."""
        self._check_grid(accountant)
        spent = accountant.get_privacy_spent(delta)
        return self.record_fit(
            dataset,
            method=method,
            noise_multiplier=accountant.noise_multiplier,
            sampling_rate=accountant.sampling_rate,
            steps=accountant.steps,
            delta=delta,
            epsilon=spent.epsilon,
            target_epsilon=target_epsilon,
        )

    # ------------------------------------------------------------------ #
    # composition
    # ------------------------------------------------------------------ #
    def _fit_groups(self) -> dict[tuple[float, float], int]:
        """Total step count per (noise_multiplier, sampling_rate) group."""
        groups: dict[tuple[float, float], int] = {}
        for entry in self._entries:
            if entry.get("kind") != "fit":
                continue
            key = (float(entry["noise_multiplier"]), float(entry["sampling_rate"]))
            groups[key] = groups.get(key, 0) + int(entry["steps"])
        return groups

    def total_rdp(self) -> np.ndarray:
        """The composed RDP curve of every recorded fit, on ``self.alphas``.

        Composition is linear in the step count at fixed mechanism
        parameters, so each parameter group contributes
        ``total_steps × per_step_curve`` — exactly the multiplicative form
        :meth:`RdpAccountant.step` maintains, which is what makes ledger
        totals bit-identical to a single long-lived accountant.
        """
        groups = self._fit_groups()
        curves = [
            steps * subsampled_gaussian_rdp_curve(nm, rate, self.alphas)
            for (nm, rate), steps in sorted(groups.items())
            if steps > 0
        ]
        if not curves:
            return np.zeros_like(self.alphas)
        return compose_rdp(curves)

    def total_steps(self) -> int:
        """Total recorded private steps across all fits."""
        return sum(self._fit_groups().values())

    def total_spent(self, delta: float | None = None) -> PrivacySpent:
        """Cumulative (ε, δ) over the whole ledger.

        ``delta`` defaults to the δ of the most recent fit entry; a ledger
        with no fits reports ε = 0.
        """
        if delta is None:
            delta = self._default_delta()
        steps = self.total_steps()
        if steps == 0:
            target = float(delta) if delta is not None else float("nan")
            return PrivacySpent(epsilon=0.0, delta=target, best_alpha=float("nan"), steps=0)
        if delta is None:
            raise PrivacyError("delta is required: the ledger has no fit to take it from")
        epsilon, best_alpha = rdp_to_dp(self.total_rdp(), self.alphas, delta)
        return PrivacySpent(
            epsilon=epsilon, delta=float(delta), best_alpha=best_alpha, steps=steps
        )

    def _default_delta(self) -> float | None:
        for entry in reversed(self._entries):
            if entry.get("kind") == "fit":
                return float(entry["delta"])
        return None

    # ------------------------------------------------------------------ #
    # admission control
    # ------------------------------------------------------------------ #
    def epsilon_with(
        self,
        delta: float,
        *,
        noise_multiplier: float,
        sampling_rate: float,
        steps: int,
    ) -> float:
        """ε if ``steps`` more steps of the given mechanism were recorded."""
        if steps < 0:
            raise PrivacyError(f"steps must be non-negative, got {steps}")
        curve = self.total_rdp()
        if steps > 0:
            curve = curve + steps * subsampled_gaussian_rdp_curve(
                noise_multiplier, sampling_rate, self.alphas
            )
        if not curve.any():
            return 0.0
        epsilon, _ = rdp_to_dp(curve, self.alphas, delta)
        return epsilon

    def would_exceed(
        self,
        target_epsilon: float,
        delta: float,
        *,
        noise_multiplier: float,
        sampling_rate: float,
        steps: int = 1,
    ) -> bool:
        """``True`` if recording ``steps`` more steps would break the target ε."""
        projected = self.epsilon_with(
            delta,
            noise_multiplier=noise_multiplier,
            sampling_rate=sampling_rate,
            steps=steps,
        )
        return projected > target_epsilon

    def remaining_steps(
        self,
        target_epsilon: float,
        delta: float,
        *,
        noise_multiplier: float,
        sampling_rate: float,
        limit: int = 1_000_000,
    ) -> int:
        """Largest additional step count that keeps cumulative ε ≤ target."""
        if target_epsilon <= 0:
            raise PrivacyError(f"target_epsilon must be positive, got {target_epsilon}")

        def fits(steps: int) -> bool:
            return (
                self.epsilon_with(
                    delta,
                    noise_multiplier=noise_multiplier,
                    sampling_rate=sampling_rate,
                    steps=steps,
                )
                <= target_epsilon
            )

        if not fits(1):
            return 0
        lo, hi = 1, 1
        while hi < limit and fits(hi):
            lo, hi = hi, hi * 2
        hi = min(hi, limit)
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if fits(mid):
                lo = mid
            else:
                hi = mid - 1
        return lo

    def check_admission(
        self,
        target_epsilon: float,
        delta: float,
        *,
        noise_multiplier: float,
        sampling_rate: float,
    ) -> int:
        """Refuse (raise) a refit whose very first step would break the budget.

        Returns the admissible step count when the refit may proceed.
        """
        remaining = self.remaining_steps(
            target_epsilon,
            delta,
            noise_multiplier=noise_multiplier,
            sampling_rate=sampling_rate,
        )
        if remaining == 0:
            spent = self.total_spent(delta)
            raise PrivacyBudgetExhausted(
                f"privacy ledger {self.path.name} refuses the refit: cumulative "
                f"spend is already {spent} and one more step at "
                f"σ={noise_multiplier}, γ={sampling_rate:.4g} would exceed "
                f"ε={target_epsilon}"
            )
        return remaining

    # ------------------------------------------------------------------ #
    # live accountant binding
    # ------------------------------------------------------------------ #
    def _check_grid(self, accountant: RdpAccountant) -> None:
        if not np.array_equal(accountant.alphas, self.alphas):
            raise PrivacyError(
                "accountant alpha grid differs from the ledger's; RDP curves on "
                "different grids cannot be composed"
            )

    def attach(self, accountant: RdpAccountant) -> None:
        """Bind a live accountant to this ledger.

        An attached accountant refuses ``reset()``: the ledger is the
        durable record and a mid-lineage reset would fork it.
        """
        self._check_grid(accountant)
        accountant._ledger_attached = True

    # ------------------------------------------------------------------ #
    def summary(self, delta: float | None = None) -> dict[str, Any]:
        """Human/CLI-facing digest of the ledger state."""
        fits = [entry for entry in self._entries if entry.get("kind") == "fit"]
        deltas = [entry for entry in self._entries if entry.get("kind") == "delta"]
        spent = self.total_spent(delta)
        return {
            "path": str(self.path),
            "entries": len(self._entries),
            "fits": len(fits),
            "deltas": len(deltas),
            "dataset_fingerprint": self.dataset_fingerprint,
            "head_hash": self.head_hash,
            "total_steps": spent.steps,
            "epsilon": spent.epsilon,
            "delta": spent.delta,
            "best_alpha": spent.best_alpha,
        }

    def __repr__(self) -> str:
        return (
            f"PrivacyLedger(path={str(self.path)!r}, entries={len(self._entries)}, "
            f"head={self.head_hash[:12]})"
        )
