"""Noise mechanisms and gradient clipping.

The Gaussian mechanism adds ``N(0, σ² S_f² I)`` noise to a function with
ℓ2-sensitivity ``S_f``; under RDP it satisfies ``(α, α S_f² / (2σ²))``-RDP
for every ``α > 1`` (Corollary 3 of Mironov 2017, restated in Section II-B
of the paper).

Clipping follows DPSGD (Eq. 3): each per-example gradient is scaled to ℓ2
norm at most ``C``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import PrivacyError
from ..utils.rng import ensure_rng

__all__ = ["GaussianMechanism", "clip_gradient", "clip_rows"]


def clip_gradient(gradient: np.ndarray, threshold: float) -> np.ndarray:
    """Clip a per-example gradient to ℓ2 norm at most ``threshold``.

    Implements ``Clip(g) = g / max(1, ||g||_2 / C)``.
    """
    if threshold <= 0:
        raise PrivacyError(f"clipping threshold must be positive, got {threshold}")
    gradient = np.asarray(gradient, dtype=float)
    norm = float(np.linalg.norm(gradient))
    return gradient / max(1.0, norm / threshold)


def clip_rows(matrix: np.ndarray, threshold: float) -> np.ndarray:
    """Clip each row of ``matrix`` independently to ℓ2 norm at most ``threshold``."""
    if threshold <= 0:
        raise PrivacyError(f"clipping threshold must be positive, got {threshold}")
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise PrivacyError(f"clip_rows expects a 2-D array, got shape {matrix.shape}")
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    scales = np.maximum(1.0, norms / threshold)
    return matrix / scales


class GaussianMechanism:
    """Add calibrated Gaussian noise to vectors or matrices.

    Parameters
    ----------
    noise_multiplier:
        The multiplier ``σ``; the actual noise standard deviation applied to
        an output with sensitivity ``S`` is ``σ · S``.
    sensitivity:
        The ℓ2 sensitivity ``S_f`` of the protected quantity.
    seed:
        Seed or generator for the noise draws.
    """

    def __init__(
        self,
        noise_multiplier: float,
        sensitivity: float = 1.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if noise_multiplier <= 0:
            raise PrivacyError(f"noise_multiplier must be positive, got {noise_multiplier}")
        if sensitivity <= 0:
            raise PrivacyError(f"sensitivity must be positive, got {sensitivity}")
        self.noise_multiplier = float(noise_multiplier)
        self.sensitivity = float(sensitivity)
        self._rng = ensure_rng(seed)

    @property
    def noise_std(self) -> float:
        """The standard deviation ``σ · S_f`` of the injected noise."""
        return self.noise_multiplier * self.sensitivity

    def add_noise(self, values: np.ndarray) -> np.ndarray:
        """Return ``values + N(0, (σ S_f)² I)`` with the same shape as ``values``."""
        values = np.asarray(values, dtype=float)
        noise = self._rng.normal(0.0, self.noise_std, size=values.shape)
        return values + noise

    def add_noise_to_rows(self, values: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Add noise only to the listed rows of a 2-D array (Eq. 9's Ñ operator).

        This is the "perturb non-zero vectors" mechanism: gradients of
        skip-gram are zero outside the rows touched by the batch, and noise
        is injected only into those rows.  Rows may repeat; each unique row
        receives exactly one noise draw.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise PrivacyError(
                f"add_noise_to_rows expects a 2-D array, got shape {values.shape}"
            )
        unique_rows = np.unique(np.asarray(rows, dtype=np.int64))
        if unique_rows.size and (unique_rows.min() < 0 or unique_rows.max() >= values.shape[0]):
            raise PrivacyError("row index outside the matrix")
        noisy = values.copy()
        if unique_rows.size:
            noise = self._rng.normal(
                0.0, self.noise_std, size=(unique_rows.size, values.shape[1])
            )
            noisy[unique_rows] += noise
        return noisy

    def rdp_epsilon(self, alpha: float) -> float:
        """Per-application RDP cost: ``ε(α) = α S_f² / (2 σ² S_f²) = α / (2σ²)``.

        Note the sensitivity cancels because the noise std already scales
        with it; this is the standard Gaussian-mechanism RDP curve.
        """
        if alpha <= 1:
            raise PrivacyError(f"alpha must be > 1, got {alpha}")
        return alpha / (2.0 * self.noise_multiplier**2)

    def __repr__(self) -> str:
        return (
            f"GaussianMechanism(noise_multiplier={self.noise_multiplier}, "
            f"sensitivity={self.sensitivity})"
        )
