"""Moments-Accountant-style tracking for the DPGGAN / DPGVAE baselines.

Abadi et al. (2016) track the log moments of the privacy loss of the
sampled Gaussian mechanism.  A widely used closed-form upper bound on the
λ-th log moment for Poisson sampling rate ``q`` and noise multiplier ``σ``
is ``α(λ) ≤ q² λ (λ + 1) / ((1 - q) σ²)`` (valid for small ``q`` and
``σ ≥ 1``); composition adds moments and the conversion to (ε, δ)-DP is
``δ = min_λ exp(α(λ) - λ ε)`` / ``ε = min_λ (α(λ) + log(1/δ)) / λ``.

The bound is looser than the RDP accountant (which is exactly the point the
paper makes when its baselines "converge prematurely" under MA), but it is
faithful to what DPGGAN/DPGVAE used.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..exceptions import PrivacyError

__all__ = ["MomentsAccountant"]


class MomentsAccountant:
    """Track log moments of the sampled Gaussian mechanism (Abadi et al. 2016).

    Parameters
    ----------
    noise_multiplier:
        Noise multiplier ``σ``.
    sampling_rate:
        Per-step sampling probability ``q``.
    max_lambda:
        Largest moment order λ tracked (default 32, as in the original code).
    """

    def __init__(
        self,
        noise_multiplier: float,
        sampling_rate: float,
        max_lambda: int = 32,
    ) -> None:
        if noise_multiplier <= 0:
            raise PrivacyError(f"noise_multiplier must be positive, got {noise_multiplier}")
        if not 0 < sampling_rate <= 1:
            raise PrivacyError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
        if max_lambda < 1:
            raise PrivacyError(f"max_lambda must be >= 1, got {max_lambda}")
        self.noise_multiplier = float(noise_multiplier)
        self.sampling_rate = float(sampling_rate)
        self.lambdas = np.arange(1, int(max_lambda) + 1, dtype=float)
        self._log_moments = np.zeros_like(self.lambdas)
        self._steps = 0
        self._per_step = self._per_step_log_moments()

    def _per_step_log_moments(self) -> np.ndarray:
        q = self.sampling_rate
        sigma = self.noise_multiplier
        if q >= 1.0:
            # No subsampling: the moment of the plain Gaussian mechanism.
            return self.lambdas * (self.lambdas + 1) / (2.0 * sigma**2)
        return (q**2) * self.lambdas * (self.lambdas + 1) / ((1.0 - q) * sigma**2)

    @property
    def steps(self) -> int:
        """Number of accounted steps."""
        return self._steps

    def step(self, count: int = 1) -> None:
        """Account for ``count`` additional sampled-Gaussian steps."""
        if count < 0:
            raise PrivacyError(f"count must be non-negative, got {count}")
        self._log_moments = self._log_moments + count * self._per_step
        self._steps += count

    def get_epsilon(self, delta: float) -> float:
        """Smallest ε certifiable at the given δ."""
        if not 0 < delta < 1:
            raise PrivacyError(f"delta must be in (0, 1), got {delta}")
        if self._steps == 0:
            return 0.0
        eps = (self._log_moments + np.log(1.0 / delta)) / self.lambdas
        return float(np.min(eps))

    def get_delta(self, epsilon: float) -> float:
        """Smallest δ certifiable at the given ε."""
        if epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive, got {epsilon}")
        if self._steps == 0:
            return 0.0
        log_delta = self._log_moments - self.lambdas * epsilon
        return float(min(1.0, np.exp(np.min(log_delta))))

    def max_steps(self, target_epsilon: float, delta: float, limit: int = 1_000_000) -> int:
        """Largest number of steps keeping ε at or below the target."""
        if not 0 < delta < 1:
            raise PrivacyError(f"delta must be in (0, 1), got {delta}")
        if target_epsilon <= 0:
            raise PrivacyError(f"target_epsilon must be positive, got {target_epsilon}")

        def eps_after(steps: int) -> float:
            if steps == 0:
                return 0.0
            moments = steps * self._per_step
            return float(np.min((moments + np.log(1.0 / delta)) / self.lambdas))
        if eps_after(1) > target_epsilon:
            return 0
        lo, hi = 1, 1
        while hi < limit and eps_after(hi) <= target_epsilon:
            lo, hi = hi, hi * 2
        hi = min(hi, limit)
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if eps_after(mid) <= target_epsilon:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def __repr__(self) -> str:
        return (
            f"MomentsAccountant(noise_multiplier={self.noise_multiplier}, "
            f"sampling_rate={self.sampling_rate:.4g}, steps={self._steps})"
        )
