"""Rényi differential privacy primitives.

This module implements the RDP quantities the paper relies on:

* the Gaussian-mechanism RDP curve ``ε(α) = α S² / (2σ²)``
  (Mironov 2017, Corollary 3),
* sequential composition (sum of per-step ε at each α),
* the RDP → (ε, δ)-DP conversion of Theorem 1:
  ``ε_DP = ε_RDP + log(1/δ) / (α - 1)``, minimised over the α grid,
* the inverse problem (given a target ε_DP and δ, the admissible per-α RDP
  budget), used to stop training when the budget is exhausted.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..exceptions import PrivacyError

__all__ = [
    "DEFAULT_ALPHA_GRID",
    "gaussian_rdp",
    "compose_rdp",
    "rdp_to_dp",
    "dp_to_rdp_budget",
]

# A standard α grid: dense between 1 and 64, then sparser up to 512.
DEFAULT_ALPHA_GRID: tuple[float, ...] = tuple(
    [*(1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 3.0, 3.5, 4.0, 4.5),
     *range(5, 64),
     *(64, 80, 96, 128, 160, 192, 256, 320, 384, 512)]
)


def _validate_alphas(alphas: Sequence[float]) -> np.ndarray:
    arr = np.asarray(list(alphas), dtype=float)
    if arr.size == 0:
        raise PrivacyError("alpha grid must not be empty")
    if np.any(arr <= 1.0):
        raise PrivacyError("all alpha orders must be > 1")
    return arr


def gaussian_rdp(
    noise_multiplier: float,
    alphas: Sequence[float] = DEFAULT_ALPHA_GRID,
    sensitivity: float = 1.0,
) -> np.ndarray:
    """RDP curve of one Gaussian-mechanism application.

    ``ε(α) = α · S² / (2 σ²)`` where ``σ`` is expressed in units of the
    sensitivity (i.e. the noise std is ``σ · S``).
    """
    if noise_multiplier <= 0:
        raise PrivacyError(f"noise_multiplier must be positive, got {noise_multiplier}")
    if sensitivity <= 0:
        raise PrivacyError(f"sensitivity must be positive, got {sensitivity}")
    arr = _validate_alphas(alphas)
    # Noise std is σ·S, so ε(α) = α S² / (2 (σ S)²) = α / (2 σ²): the
    # sensitivity cancels once the noise is calibrated to it.
    return arr / (2.0 * noise_multiplier**2)


def compose_rdp(curves: Iterable[np.ndarray]) -> np.ndarray:
    """Sequentially compose RDP curves (element-wise sum over the α grid)."""
    total: np.ndarray | None = None
    for curve in curves:
        curve = np.asarray(curve, dtype=float)
        if total is None:
            total = curve.copy()
        else:
            if curve.shape != total.shape:
                raise PrivacyError("all RDP curves must share the same alpha grid")
            total += curve
    if total is None:
        raise PrivacyError("compose_rdp needs at least one curve")
    return total


def rdp_to_dp(
    rdp_curve: Sequence[float],
    alphas: Sequence[float],
    delta: float,
) -> tuple[float, float]:
    """Convert an RDP curve to an (ε, δ)-DP guarantee (Theorem 1).

    Returns the pair ``(epsilon, best_alpha)`` minimising
    ``ε(α) + log(1/δ) / (α - 1)`` over the α grid.
    """
    if not 0 < delta < 1:
        raise PrivacyError(f"delta must be in (0, 1), got {delta}")
    alphas_arr = _validate_alphas(alphas)
    rdp_arr = np.asarray(list(rdp_curve), dtype=float)
    if rdp_arr.shape != alphas_arr.shape:
        raise PrivacyError(
            f"rdp_curve and alphas must align, got {rdp_arr.shape} vs {alphas_arr.shape}"
        )
    eps = rdp_arr + np.log(1.0 / delta) / (alphas_arr - 1.0)
    best = int(np.argmin(eps))
    return float(eps[best]), float(alphas_arr[best])


def dp_to_rdp_budget(
    target_epsilon: float,
    delta: float,
    alphas: Sequence[float] = DEFAULT_ALPHA_GRID,
) -> np.ndarray:
    """Per-α RDP budget implied by a target (ε, δ)-DP guarantee.

    For each α the admissible RDP spend is
    ``ε_RDP(α) = ε_DP - log(1/δ) / (α - 1)`` (negative values mean that α can
    never certify the target and are clamped to 0).  Training may continue as
    long as the accumulated RDP stays below this budget at *some* α.
    """
    if target_epsilon <= 0:
        raise PrivacyError(f"target_epsilon must be positive, got {target_epsilon}")
    if not 0 < delta < 1:
        raise PrivacyError(f"delta must be in (0, 1), got {delta}")
    alphas_arr = _validate_alphas(alphas)
    budget = target_epsilon - np.log(1.0 / delta) / (alphas_arr - 1.0)
    return np.maximum(budget, 0.0)
