"""Sensitivity analysis helpers.

Section III-B of the paper observes that under node-level DP a naive
per-batch gradient sum has sensitivity up to ``B · C`` (every one of the
``B`` clipped per-example gradients can change when one node changes),
whereas the non-zero-row perturbation of Section IV-A works with the
per-example sensitivity ``C``.  These helpers make those bounds explicit so
trainers and tests can reason about them.
"""

from __future__ import annotations

from ..exceptions import PrivacyError
from ..graph import Graph

__all__ = [
    "per_example_sensitivity",
    "batch_gradient_sensitivity",
    "node_level_edge_change_bound",
]


def per_example_sensitivity(clipping_threshold: float) -> float:
    """Sensitivity of a single clipped per-example gradient: exactly ``C``."""
    if clipping_threshold <= 0:
        raise PrivacyError(
            f"clipping_threshold must be positive, got {clipping_threshold}"
        )
    return float(clipping_threshold)


def batch_gradient_sensitivity(
    clipping_threshold: float,
    batch_size: int,
    affected_examples: int | None = None,
) -> float:
    """Worst-case ℓ2 sensitivity of a summed batch gradient under node-level DP.

    Changing one node can change every example that touches it; in the worst
    case that is the whole batch, giving ``S = B · C`` (the paper's
    ``S_{∇v} ≤ B C`` remark for the naive first-cut solution of Eq. 6).
    ``affected_examples`` caps the number of examples a node change can
    influence (``min(B, affected)``).
    """
    if clipping_threshold <= 0:
        raise PrivacyError(
            f"clipping_threshold must be positive, got {clipping_threshold}"
        )
    if batch_size < 1:
        raise PrivacyError(f"batch_size must be >= 1, got {batch_size}")
    affected = batch_size if affected_examples is None else min(batch_size, affected_examples)
    if affected < 1:
        raise PrivacyError(f"affected_examples must be >= 1, got {affected_examples}")
    return float(clipping_threshold * affected)


def node_level_edge_change_bound(graph: Graph) -> int:
    """Maximum number of edges that can change when one node changes.

    Under node-level DP a node replacement can rewire all of its incident
    edges; the worst case over the graph is the maximum degree (and the
    absolute worst case over all graphs is ``|V| - 1``, which the paper
    quotes as the reason node-level DP is hard).
    """
    degrees = graph.degrees()
    return int(degrees.max()) if degrees.size else 0
