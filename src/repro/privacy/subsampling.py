"""Privacy amplification by subsampling without replacement.

Implements the bound of Wang, Balle & Kasiviswanathan (2019) that the paper
restates as Theorem 4: if a mechanism satisfies ``(α, ε(α))``-RDP, then its
composition with without-replacement subsampling at rate ``γ`` satisfies
``(α, ε'(α))``-RDP with

``ε'(α) ≤ 1/(α-1) · log(1 + γ² C(α,2) min{4(e^{ε(2)}-1),
e^{ε(2)} min{2, (e^{ε(∞)}-1)²}} + Σ_{j=3..α} γ^j C(α,j) e^{(j-1)ε(j)}
min{2, (e^{ε(∞)}-1)^j})``

The bound only applies at integer α ≥ 2; for non-integer α we interpolate
linearly between the neighbouring integers (the standard practice in RDP
accountant implementations), and for α below 2 we fall back to the value at
α = 2, which is an upper bound because subsampled RDP is non-decreasing
in α.

``ε(∞)`` is unbounded for the Gaussian mechanism, so the ``min{2, ...}``
terms resolve to 2 — the form actually used by the accountant.
"""

from __future__ import annotations

from math import comb, exp, expm1, inf, log
from collections.abc import Callable, Sequence

import numpy as np

from ..exceptions import PrivacyError

__all__ = ["subsampled_rdp", "subsampled_gaussian_rdp_curve"]


def _log_comb(n: int, k: int) -> float:
    """``log C(n, k)`` computed through lgamma to avoid huge integers."""
    from math import lgamma

    return lgamma(n + 1) - lgamma(k + 1) - lgamma(n - k + 1)


def _subsampled_rdp_integer(
    alpha: int,
    sampling_rate: float,
    rdp_at: Callable[[float], float],
    eps_infinity: float,
) -> float:
    """The Theorem-4 bound at an integer order ``alpha >= 2``.

    All terms are accumulated in log space: at large α (several hundred) the
    raw terms ``C(α,j) e^{(j-1)ε(j)}`` overflow double precision even though
    the final bound is moderate.
    """
    gamma = sampling_rate
    eps2 = rdp_at(2.0)

    if np.isinf(eps_infinity):
        inf_term_sq = 2.0
    else:
        inf_term_sq = min(2.0, expm1(eps_infinity) ** 2)

    second_order = min(4.0 * expm1(eps2), exp(eps2) * inf_term_sq)
    log_terms = []
    if second_order > 0:
        log_terms.append(2.0 * log(gamma) + _log_comb(alpha, 2) + log(second_order))

    for j in range(3, alpha + 1):
        if np.isinf(eps_infinity):
            log_inf_term_j = log(2.0)
        else:
            log_inf_term_j = min(log(2.0), j * log(max(expm1(eps_infinity), 1e-300)))
        log_terms.append(
            j * log(gamma)
            + _log_comb(alpha, j)
            + (j - 1) * rdp_at(float(j))
            + log_inf_term_j
        )

    if not log_terms:
        return 0.0
    # log(1 + Σ exp(t)) computed stably: logaddexp(0, logsumexp(terms)).
    log_sum = float(np.logaddexp.reduce(np.asarray(log_terms, dtype=float)))
    log_one_plus = float(np.logaddexp(0.0, log_sum))
    return log_one_plus / (alpha - 1)


def subsampled_rdp(
    alpha: float,
    sampling_rate: float,
    rdp_at: Callable[[float], float],
    eps_infinity: float = inf,
) -> float:
    """Amplified RDP ``ε'(α)`` of a subsampled mechanism (Theorem 4).

    Parameters
    ----------
    alpha:
        Rényi order (must be > 1).
    sampling_rate:
        ``γ = m / n`` of the without-replacement subsample.
    rdp_at:
        Function returning the *base* mechanism's RDP ``ε(α)`` at any order.
    eps_infinity:
        ``ε(∞)`` of the base mechanism; ``inf`` for the Gaussian mechanism.
    """
    if alpha <= 1:
        raise PrivacyError(f"alpha must be > 1, got {alpha}")
    if not 0 < sampling_rate <= 1:
        raise PrivacyError(f"sampling_rate must be in (0, 1], got {sampling_rate}")

    if sampling_rate == 1.0:
        return rdp_at(alpha)

    lower = max(2, int(np.floor(alpha)))
    upper = max(2, int(np.ceil(alpha)))
    eps_lower = _subsampled_rdp_integer(lower, sampling_rate, rdp_at, eps_infinity)
    if lower == upper:
        amplified = eps_lower
    else:
        eps_upper = _subsampled_rdp_integer(upper, sampling_rate, rdp_at, eps_infinity)
        frac = (alpha - lower) / (upper - lower)
        amplified = (1 - frac) * eps_lower + frac * eps_upper
    # Amplification never hurts: the subsampled mechanism is at least as
    # private as the base mechanism run on the full data.
    return min(amplified, rdp_at(alpha))


def subsampled_gaussian_rdp_curve(
    noise_multiplier: float,
    sampling_rate: float,
    alphas: Sequence[float],
) -> np.ndarray:
    """Per-step RDP curve of the subsampled Gaussian mechanism.

    Convenience wrapper used by the accountant: evaluates
    :func:`subsampled_rdp` over an α grid with the Gaussian base curve
    ``ε(α) = α / (2σ²)``.
    """
    if noise_multiplier <= 0:
        raise PrivacyError(f"noise_multiplier must be positive, got {noise_multiplier}")

    def rdp_at(order: float) -> float:
        return order / (2.0 * noise_multiplier**2)

    return np.array(
        [subsampled_rdp(float(a), sampling_rate, rdp_at) for a in alphas], dtype=float
    )
