"""Node proximity measures (the "structure preference" inputs of SE-PrivGEmb)."""

from .base import ProximityMeasure, ProximityMatrix
from .cache import ProximityCache, default_proximity_cache, graph_fingerprint
from .first_order import (
    CommonNeighborsProximity,
    JaccardProximity,
    PreferentialAttachmentProximity,
)
from .second_order import AdamicAdarProximity, ResourceAllocationProximity
from .high_order import (
    DeepWalkProximity,
    KatzProximity,
    PersonalizedPageRankProximity,
    spectral_radius,
)
from .degree import DegreeProximity
from .registry import available_proximities, compute_proximity, get_proximity

__all__ = [
    "ProximityMeasure",
    "ProximityMatrix",
    "ProximityCache",
    "default_proximity_cache",
    "graph_fingerprint",
    "CommonNeighborsProximity",
    "JaccardProximity",
    "PreferentialAttachmentProximity",
    "AdamicAdarProximity",
    "ResourceAllocationProximity",
    "KatzProximity",
    "PersonalizedPageRankProximity",
    "DeepWalkProximity",
    "DegreeProximity",
    "spectral_radius",
    "available_proximities",
    "compute_proximity",
    "get_proximity",
]
