"""Node proximity measures (the "structure preference" inputs of SE-PrivGEmb)."""

from .base import ProximityMeasure, ProximityMatrix
from .first_order import (
    CommonNeighborsProximity,
    JaccardProximity,
    PreferentialAttachmentProximity,
)
from .second_order import AdamicAdarProximity, ResourceAllocationProximity
from .high_order import KatzProximity, PersonalizedPageRankProximity, DeepWalkProximity
from .degree import DegreeProximity
from .registry import available_proximities, get_proximity

__all__ = [
    "ProximityMeasure",
    "ProximityMatrix",
    "CommonNeighborsProximity",
    "JaccardProximity",
    "PreferentialAttachmentProximity",
    "AdamicAdarProximity",
    "ResourceAllocationProximity",
    "KatzProximity",
    "PersonalizedPageRankProximity",
    "DeepWalkProximity",
    "DegreeProximity",
    "available_proximities",
    "get_proximity",
]
