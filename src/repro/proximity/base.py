"""Base classes for node-proximity measures.

Definition 4 of the paper: a proximity matrix ``P`` is a ``|V| x |V|`` matrix
whose entry ``p_ij`` quantifies the structural closeness of ``v_i`` and
``v_j``.  SE-PrivGEmb accepts *any* such matrix; Theorem 3 shows that with
the right negative-sampling design the learned inner products preserve
``log(p_ij / (k·min(P)))``.

:class:`ProximityMeasure` is the strategy interface (one concrete subclass
per measure).  :class:`ProximityMatrix` wraps the computed dense matrix with
the derived quantities the trainer needs:

* ``min_positive`` — ``min(P) = min{p_ij | p_ij > 0}``,
* ``row_sums`` — ``Σ_j p_ij`` per centre node,
* ``pair_value(i, j)`` — fast lookup of ``p_ij``,
* ``negative_sampling_mass(i)`` — ``min(P)/Σ_j p_ij`` (Theorem 3).
"""

from __future__ import annotations

import abc

import numpy as np
from scipy import sparse

from ..exceptions import ProximityError
from ..graph import Graph

__all__ = ["ProximityMeasure", "ProximityMatrix"]


class ProximityMatrix:
    """A computed node-proximity matrix plus the derived quantities of Theorem 3."""

    def __init__(self, matrix: np.ndarray, name: str = "proximity") -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ProximityError(f"proximity matrix must be square, got shape {matrix.shape}")
        if np.any(~np.isfinite(matrix)):
            raise ProximityError("proximity matrix contains non-finite values")
        if np.any(matrix < 0):
            raise ProximityError("proximity values must be non-negative")
        self._matrix = matrix
        self._name = name
        positive = matrix[matrix > 0]
        self._min_positive = float(positive.min()) if positive.size else 0.0
        self._row_sums = matrix.sum(axis=1)

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Name of the proximity measure that produced this matrix."""
        return self._name

    @property
    def matrix(self) -> np.ndarray:
        """The dense ``|V| x |V|`` proximity matrix."""
        return self._matrix

    @property
    def num_nodes(self) -> int:
        """Number of nodes the matrix covers."""
        return self._matrix.shape[0]

    @property
    def min_positive(self) -> float:
        """``min(P)``: the smallest strictly positive proximity value."""
        return self._min_positive

    @property
    def row_sums(self) -> np.ndarray:
        """``Σ_j p_ij`` for every centre node ``v_i``."""
        return self._row_sums

    def pair_value(self, i: int, j: int) -> float:
        """Return ``p_ij``."""
        return float(self._matrix[int(i), int(j)])

    def pair_values(self, centers: np.ndarray, contexts: np.ndarray) -> np.ndarray:
        """Vectorised ``p_ij`` lookup for parallel index arrays."""
        centers = np.asarray(centers, dtype=np.int64)
        contexts = np.asarray(contexts, dtype=np.int64)
        return self._matrix[centers, contexts]

    def negative_sampling_mass(self, center: int) -> float:
        """Theorem-3 negative-sampling mass ``min(P) / Σ_j p_ij`` for a centre node."""
        row_sum = float(self._row_sums[int(center)])
        if row_sum <= 0:
            return 0.0
        return self._min_positive / row_sum

    def theoretical_optimal_inner_product(self, i: int, j: int, num_negatives: int) -> float:
        """Eq. (10): the optimal ``v_i · v_j`` = ``log(p_ij / (k · min(P)))``.

        Returns ``-inf`` when ``p_ij = 0`` (the optimum pushes the pair apart
        without bound).
        """
        if num_negatives < 1:
            raise ProximityError(f"num_negatives must be >= 1, got {num_negatives}")
        p_ij = self.pair_value(i, j)
        if p_ij <= 0 or self._min_positive <= 0:
            return float("-inf")
        return float(np.log(p_ij / (num_negatives * self._min_positive)))

    def normalized(self) -> "ProximityMatrix":
        """Return a copy scaled so the maximum entry is 1 (zero matrix unchanged)."""
        peak = float(self._matrix.max())
        if peak <= 0:
            return ProximityMatrix(self._matrix.copy(), name=self._name)
        return ProximityMatrix(self._matrix / peak, name=f"{self._name}-normalized")

    def __repr__(self) -> str:
        return (
            f"ProximityMatrix(name={self._name!r}, num_nodes={self.num_nodes}, "
            f"min_positive={self._min_positive:.3g})"
        )


class ProximityMeasure(abc.ABC):
    """Strategy interface: compute a :class:`ProximityMatrix` for a graph."""

    #: registry key; subclasses override.
    name: str = "proximity"

    @abc.abstractmethod
    def compute_matrix(self, graph: Graph) -> np.ndarray:
        """Return the raw dense proximity matrix for ``graph``."""

    def compute(self, graph: Graph) -> ProximityMatrix:
        """Compute and wrap the proximity matrix, zeroing the diagonal.

        The diagonal is irrelevant to skip-gram training (a node is never its
        own context) and zeroing it keeps ``min(P)`` meaningful.
        """
        matrix = np.asarray(self.compute_matrix(graph), dtype=float)
        if matrix.shape != (graph.num_nodes, graph.num_nodes):
            raise ProximityError(
                f"{type(self).__name__}.compute_matrix returned shape {matrix.shape}, "
                f"expected ({graph.num_nodes}, {graph.num_nodes})"
            )
        np.fill_diagonal(matrix, 0.0)
        return ProximityMatrix(matrix, name=self.name)

    # Convenience for subclasses ------------------------------------------------
    @staticmethod
    def _dense_adjacency(graph: Graph) -> np.ndarray:
        adjacency = graph.adjacency_matrix()
        if sparse.issparse(adjacency):
            return np.asarray(adjacency.todense())
        return np.asarray(adjacency)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
