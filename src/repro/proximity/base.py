"""Base classes for node-proximity measures.

Definition 4 of the paper: a proximity matrix ``P`` is a ``|V| x |V|`` matrix
whose entry ``p_ij`` quantifies the structural closeness of ``v_i`` and
``v_j``.  SE-PrivGEmb accepts *any* such matrix; Theorem 3 shows that with
the right negative-sampling design the learned inner products preserve
``log(p_ij / (k·min(P)))``.

:class:`ProximityMeasure` is the strategy interface (one concrete subclass
per measure).  :class:`ProximityMatrix` wraps the computed matrix — **CSR
by default** for the measures whose support is sparse, dense as a fallback —
with the derived quantities the trainer needs:

* ``min_positive`` — ``min(P) = min{p_ij | p_ij > 0}``,
* ``row_sums`` — ``Σ_j p_ij`` per centre node,
* ``pair_value(i, j)`` / ``pair_values`` — fast ``p_ij`` lookup,
* ``negative_sampling_mass(i)`` — ``min(P)/Σ_j p_ij`` (Theorem 3),
* ``theoretical_optimal_inner_product[s]`` — the Eq. (10) optima.

Every derived quantity is computed directly on the CSR arrays; the dense
``|V| x |V|`` view (:attr:`ProximityMatrix.matrix`) is materialised only on
demand and never on the training path, which is what lets proximity
construction scale past graphs where an n×n ndarray no longer fits.
"""

from __future__ import annotations

import abc
import functools
import hashlib
import types

import numpy as np
from scipy import sparse as _sp

from ..exceptions import ProximityError
from ..graph import Graph
from ..utils.sparse import csr_entry_keys, csr_lookup, indices_in_range

__all__ = ["ProximityMeasure", "ProximityMatrix"]


class ProximityMatrix:
    """A computed node-proximity matrix plus the derived quantities of Theorem 3.

    Accepts either a dense ndarray or any scipy sparse matrix; sparse input
    is stored as canonical CSR and all derived quantities are computed
    without densifying.
    """

    def __init__(
        self,
        matrix: np.ndarray | _sp.spmatrix,
        name: str = "proximity",
        owned: bool = False,
    ) -> None:
        """Wrap ``matrix``.

        ``owned=True`` declares that the (dense) array was freshly allocated
        for this wrapper and is not held by any caller — :meth:`freeze` then
        marks it read-only in place instead of defensively copying n×n
        bytes.  Leave ``False`` for arrays of unknown provenance.
        """
        self._name = name
        if _sp.issparse(matrix):
            csr = matrix.tocsr().astype(float)
            if csr.shape[0] != csr.shape[1]:
                raise ProximityError(f"proximity matrix must be square, got shape {csr.shape}")
            csr.sum_duplicates()
            csr.sort_indices()
            if np.any(~np.isfinite(csr.data)):
                raise ProximityError("proximity matrix contains non-finite values")
            if np.any(csr.data < 0):
                raise ProximityError("proximity values must be non-negative")
            csr.eliminate_zeros()
            self._sparse: _sp.csr_matrix | None = csr
            self._dense: np.ndarray | None = None
            self._aliases_input = False  # astype(copy=True) above owns its buffers
            # lookup keys are built lazily on the first pair lookup (the
            # same pattern as Graph._adjacency_keys): they add 8 bytes per
            # stored entry, which analysis-only consumers never need
            self._keys: np.ndarray | None = None
            data = csr.data
            self._min_positive = float(data.min()) if data.size else 0.0
            self._max_value = float(data.max()) if data.size else 0.0
            self._row_sums = np.asarray(csr.sum(axis=1)).ravel()
        else:
            dense = np.asarray(matrix, dtype=float)
            if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
                raise ProximityError(f"proximity matrix must be square, got shape {dense.shape}")
            if np.any(~np.isfinite(dense)):
                raise ProximityError("proximity matrix contains non-finite values")
            if np.any(dense < 0):
                raise ProximityError("proximity values must be non-negative")
            self._sparse = None
            self._dense = dense
            # np.asarray returns the input itself for a float64 ndarray and
            # a memory-sharing base-class view for ndarray subclasses
            # (np.matrix) — either way the caller still holds a writable
            # handle, so freeze() must copy unless the buffer was declared
            # ours
            self._aliases_input = (
                dense is matrix or dense.base is not None
            ) and not owned
            self._keys = None
            positive = dense[dense > 0]
            self._min_positive = float(positive.min()) if positive.size else 0.0
            self._max_value = float(dense.max()) if dense.size else 0.0
            self._row_sums = dense.sum(axis=1)

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Name of the proximity measure that produced this matrix."""
        return self._name

    @property
    def is_sparse(self) -> bool:
        """``True`` when the backing store is CSR (the scale path)."""
        return self._sparse is not None

    @property
    def matrix(self) -> np.ndarray:
        """A dense ``|V| x |V|`` view of the proximity matrix.

        For the CSR backend this **materialises an n×n ndarray on every
        access** — it is the compatibility fallback for analysis code, not
        something the training path ever touches.
        """
        if self._dense is not None:
            return self._dense
        return self._sparse.toarray()

    @property
    def sparse_matrix(self) -> _sp.csr_matrix:
        """The proximity matrix as canonical CSR (converting if dense-backed)."""
        if self._sparse is not None:
            return self._sparse
        return _sp.csr_matrix(self._dense)

    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) proximity entries."""
        if self._sparse is not None:
            return int(self._sparse.nnz)
        return int(np.count_nonzero(self._dense))

    @property
    def num_nodes(self) -> int:
        """Number of nodes the matrix covers."""
        shape = self._sparse.shape if self._sparse is not None else self._dense.shape
        return int(shape[0])

    @property
    def min_positive(self) -> float:
        """``min(P)``: the smallest strictly positive proximity value."""
        return self._min_positive

    @property
    def max_value(self) -> float:
        """``max(P)``: the largest proximity value (0 for an all-zero matrix)."""
        return self._max_value

    @property
    def row_sums(self) -> np.ndarray:
        """``Σ_j p_ij`` for every centre node ``v_i``."""
        return self._row_sums

    def _check_indices(self, *index_arrays: np.ndarray) -> None:
        """Uniform bounds check for both backends.

        The CSR lookup would alias an out-of-range index into another row
        through the ``row*n + col`` key arithmetic, and plain numpy would
        wrap negatives — both silently wrong, so every lookup rejects them.
        """
        if not indices_in_range(self.num_nodes, *index_arrays):
            raise ProximityError(
                f"node index outside [0, {self.num_nodes}) in proximity lookup"
            )

    def pair_value(self, i: int, j: int) -> float:
        """Return ``p_ij``."""
        return float(
            self.pair_values(np.array([int(i)]), np.array([int(j)]))[0]
        )

    def pair_values(self, centers: np.ndarray, contexts: np.ndarray) -> np.ndarray:
        """Vectorised ``p_ij`` lookup for parallel index arrays."""
        centers = np.asarray(centers, dtype=np.int64)
        contexts = np.asarray(contexts, dtype=np.int64)
        self._check_indices(centers, contexts)
        if self._dense is not None:
            return self._dense[centers, contexts]
        if self._keys is None:
            self._keys = csr_entry_keys(self._sparse)
        values, _ = csr_lookup(self._sparse, centers, contexts, keys=self._keys)
        return np.asarray(values, dtype=float)

    def negative_sampling_mass(self, center: int) -> float:
        """Theorem-3 negative-sampling mass ``min(P) / Σ_j p_ij`` for a centre node."""
        center = int(center)
        self._check_indices(np.array([center]))
        row_sum = float(self._row_sums[center])
        if row_sum <= 0:
            return 0.0
        return self._min_positive / row_sum

    def negative_sampling_masses(self, centers: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`negative_sampling_mass` for an array of centres."""
        centers = np.asarray(centers, dtype=np.int64)
        self._check_indices(centers)
        row_sums = self._row_sums[centers]
        with np.errstate(divide="ignore", invalid="ignore"):
            masses = np.where(row_sums > 0, self._min_positive / row_sums, 0.0)
        return masses

    def theoretical_optimal_inner_product(self, i: int, j: int, num_negatives: int) -> float:
        """Eq. (10): the optimal ``v_i · v_j`` = ``log(p_ij / (k · min(P)))``.

        Returns ``-inf`` when ``p_ij = 0`` (the optimum pushes the pair apart
        without bound).
        """
        if num_negatives < 1:
            raise ProximityError(f"num_negatives must be >= 1, got {num_negatives}")
        p_ij = self.pair_value(i, j)
        if p_ij <= 0 or self._min_positive <= 0:
            return float("-inf")
        return float(np.log(p_ij / (num_negatives * self._min_positive)))

    def theoretical_optimal_inner_products(
        self, centers: np.ndarray, contexts: np.ndarray, num_negatives: int
    ) -> np.ndarray:
        """Vectorised Eq. (10) optima for parallel index arrays."""
        if num_negatives < 1:
            raise ProximityError(f"num_negatives must be >= 1, got {num_negatives}")
        values = self.pair_values(centers, contexts)
        out = np.full(values.shape, -np.inf)
        if self._min_positive > 0:
            positive = values > 0
            out[positive] = np.log(
                values[positive] / (num_negatives * self._min_positive)
            )
        return out

    def freeze(self) -> "ProximityMatrix":
        """Mark the backing buffers read-only and return ``self``.

        The proximity cache freezes every stored matrix: cache hits share
        one object, so an in-place edit by one consumer (``prox.matrix /=
        2`` on a dense backend, or scaling ``sparse_matrix.data``) would
        otherwise silently corrupt every later hit.  Frozen matrices raise
        on in-place writes instead; derived copies (``normalized()``,
        ``.toarray()`` views of the CSR backend) stay writable.
        """
        if self._sparse is not None:
            self._sparse.data.flags.writeable = False
            self._sparse.indices.flags.writeable = False
            self._sparse.indptr.flags.writeable = False
        else:
            if self._aliases_input and self._dense.flags.writeable:
                # the buffer is the caller's own array — freeze a copy,
                # never the array they handed in
                self._dense = self._dense.copy()
                self._aliases_input = False
            self._dense.flags.writeable = False
        self._row_sums.flags.writeable = False
        return self

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the backing buffers."""
        if self._sparse is not None:
            total = (
                self._sparse.data.nbytes
                + self._sparse.indices.nbytes
                + self._sparse.indptr.nbytes
                + (self._keys.nbytes if self._keys is not None else 0)
            )
        else:
            total = self._dense.nbytes
        return int(total + self._row_sums.nbytes)

    def normalized(self) -> "ProximityMatrix":
        """Return a copy scaled so the maximum entry is 1 (zero matrix unchanged)."""
        peak = self._max_value
        if self._sparse is not None:
            scaled = self._sparse.copy()
            if peak > 0:
                scaled.data = scaled.data / peak
                return ProximityMatrix(scaled, name=f"{self._name}-normalized")
            return ProximityMatrix(scaled, name=self._name)
        if peak <= 0:
            return ProximityMatrix(self._dense.copy(), name=self._name, owned=True)
        return ProximityMatrix(
            self._dense / peak, name=f"{self._name}-normalized", owned=True
        )

    def __repr__(self) -> str:
        backend = "csr" if self.is_sparse else "dense"
        return (
            f"ProximityMatrix(name={self._name!r}, num_nodes={self.num_nodes}, "
            f"backend={backend!r}, min_positive={self._min_positive:.3g})"
        )


def _param_token(value: object) -> str:
    """Stable cache-key token for one measure parameter.

    ``repr`` truncates large numpy arrays (``[0. 1. ... 0.]``), which would
    let differently-configured custom measures collide on one fingerprint —
    arrays are therefore hashed by content instead, recursing through
    containers so a list- or dict-wrapped array gets the same treatment.
    """
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()[:16]
        return f"ndarray(sha256={digest},shape={value.shape},dtype={value.dtype})"
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        inner = ",".join(_param_token(item) for item in items)
        return f"{type(value).__name__}[{inner}]"
    if isinstance(value, dict):
        inner = ",".join(
            f"{_param_token(k)}:{_param_token(v)}"
            for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
        return f"dict{{{inner}}}"
    if isinstance(value, functools.partial):
        return (
            f"partial(func={_param_token(value.func)},"
            f"args={_param_token(tuple(value.args))},"
            f"kwargs={_param_token(dict(value.keywords))})"
        )
    if callable(value):
        # default reprs embed a memory address — unstable across processes
        # and reusable within one; identify callables by qualified name,
        # bytecode hash, closure cells, and argument defaults (best-effort
        # content key — everything that changes the callable's behaviour)
        token = (
            f"{getattr(value, '__module__', '?')}."
            f"{getattr(value, '__qualname__', type(value).__name__)}"
        )
        code = getattr(value, "__code__", None)
        if code is not None:
            digest = hashlib.sha256()
            _hash_code_object(code, digest)
            token += f",code={digest.hexdigest()[:12]}"
        closure = getattr(value, "__closure__", None)
        if closure:
            cells = []
            for cell in closure:
                try:
                    cells.append(_param_token(cell.cell_contents))
                except ValueError:  # empty cell
                    cells.append("<empty>")
            token += f",closure=[{','.join(cells)}]"
        defaults = getattr(value, "__defaults__", None)
        if defaults:
            token += f",defaults={_param_token(tuple(defaults))}"
        return f"callable({token})"
    return repr(value)


def _hash_code_object(code, digest) -> None:
    """Feed a code object's content (not its ``repr``) into a hash.

    ``repr`` of a constant tuple embeds memory addresses for nested code
    objects (lambdas, comprehensions), which would make the token differ
    per process — recurse into them instead.
    """
    digest.update(code.co_code)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            _hash_code_object(const, digest)
        else:
            digest.update(repr(const).encode())


def _strip_diagonal(matrix: _sp.spmatrix) -> _sp.csr_matrix:
    """Drop the diagonal of a sparse matrix without densifying (no warnings)."""
    coo = matrix.tocoo()
    keep = coo.row != coo.col
    return _sp.csr_matrix(
        (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=coo.shape
    )


class ProximityMeasure(abc.ABC):
    """Strategy interface: compute a :class:`ProximityMatrix` for a graph.

    Subclasses implement :meth:`compute_matrix` (the dense reference) and,
    when their measure has genuinely sparse support, override
    :meth:`compute_sparse_matrix` and set :attr:`supports_sparse` — the two
    paths must agree to 1e-10, the discipline ``tests/test_proximity_sparse``
    pins for every registered measure.
    """

    #: registry key; subclasses override.
    name: str = "proximity"
    #: whether :meth:`compute_sparse_matrix` avoids dense n×n intermediates;
    #: measures that are dense by nature (e.g. preferential attachment) leave
    #: this ``False`` and ``compute`` defaults to the dense backend for them.
    supports_sparse: bool = False
    #: backend picked when ``compute(sparse=None)``: ``None`` follows
    #: :attr:`supports_sparse`; measures whose sparse *result* is
    #: structurally full (Katz/PPR resolvents on connected graphs store
    #: ~n² entries in CSR, costing more than the dense array) set this to
    #: ``False`` so callers must opt in to their CSR path explicitly.
    prefers_sparse: bool | None = None

    @abc.abstractmethod
    def compute_matrix(self, graph: Graph) -> np.ndarray:
        """Return the raw dense proximity matrix for ``graph``."""

    def compute_sparse_matrix(self, graph: Graph) -> _sp.csr_matrix:
        """Return the raw proximity matrix in CSR form.

        The default densifies through :meth:`compute_matrix` — correct for
        every measure, scalable only for those that override it.
        """
        return _sp.csr_matrix(np.asarray(self.compute_matrix(graph), dtype=float))

    def resolve_backend(self, sparse: bool | None = None) -> bool:
        """Resolve a ``sparse`` request to the backend :meth:`compute` will use.

        The single source of truth for backend selection — the proximity
        cache keys entries by this, so it must always match what
        :meth:`compute` actually produces.
        """
        if sparse is not None:
            return bool(sparse)
        if self.prefers_sparse is not None:
            return self.prefers_sparse
        return self.supports_sparse

    def compute(self, graph: Graph, sparse: bool | None = None) -> ProximityMatrix:
        """Compute and wrap the proximity matrix, zeroing the diagonal.

        The diagonal is irrelevant to skip-gram training (a node is never its
        own context) and zeroing it keeps ``min(P)`` meaningful.

        Parameters
        ----------
        graph:
            The graph to measure.
        sparse:
            ``True`` forces the CSR backend, ``False`` the dense one,
            ``None`` (default) picks CSR exactly when the measure declares
            :attr:`supports_sparse`.
        """
        use_sparse = self.resolve_backend(sparse)
        expected = (graph.num_nodes, graph.num_nodes)
        if use_sparse:
            matrix = self.compute_sparse_matrix(graph).tocsr()
            if matrix.shape != expected:
                raise ProximityError(
                    f"{type(self).__name__}.compute_sparse_matrix returned shape "
                    f"{matrix.shape}, expected {expected}"
                )
            return ProximityMatrix(_strip_diagonal(matrix), name=self.name)
        matrix = np.asarray(self.compute_matrix(graph), dtype=float)
        if matrix.shape != expected:
            raise ProximityError(
                f"{type(self).__name__}.compute_matrix returned shape {matrix.shape}, "
                f"expected {expected}"
            )
        np.fill_diagonal(matrix, 0.0)
        # compute_matrix allocated this array for us: freeze() need not copy
        return ProximityMatrix(matrix, name=self.name, owned=True)

    def fingerprint(self) -> str:
        """A stable string identifying this measure configuration.

        Used as part of proximity-cache keys: two measure instances with the
        same class and the same public scalar parameters share cached
        matrices.
        """
        params = [
            (key, value)
            for key, value in sorted(vars(self).items())
            if not key.startswith("_")
        ]
        rendered = ",".join(f"{k}={_param_token(v)}" for k, v in params)
        # module + qualname + registry name: two same-named classes from
        # different modules (or a redefined notebook class) must not share
        # cache entries
        cls = type(self)
        return f"{cls.__module__}.{cls.__qualname__}[{self.name}]({rendered})"

    # Convenience for subclasses ------------------------------------------------
    @staticmethod
    def _dense_adjacency(graph: Graph) -> np.ndarray:
        adjacency = graph.adjacency_matrix()
        if _sp.issparse(adjacency):
            return adjacency.toarray()
        return np.asarray(adjacency)

    @staticmethod
    def _sparse_adjacency(graph: Graph) -> _sp.csr_matrix:
        adjacency = graph.adjacency_matrix()
        if _sp.issparse(adjacency):
            return adjacency.tocsr()
        return _sp.csr_matrix(np.asarray(adjacency, dtype=float))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
