"""Content-addressed caching of computed proximity matrices.

Every proximity measure in this package is a deterministic function of
``(graph, measure parameters, backend)``, so repeated sweeps — the ablation
grids, the table/figure reproductions, repeated evaluation runs — keep
recomputing matrices that cannot have changed.  :class:`ProximityCache`
memoises them behind a content key:

* the **graph fingerprint** — a SHA-256 over the node count and the sorted
  edge array.  Graphs in this package are immutable (mutation helpers like
  ``with_extra_edges`` return new instances), so a changed graph always has
  a different fingerprint and simply misses the cache; stale hits are
  structurally impossible.
* the **measure fingerprint** — class name plus public constructor
  parameters (:meth:`~repro.proximity.base.ProximityMeasure.fingerprint`).
* the **backend** ("sparse" or "dense") actually requested.

The cache has two tiers: a bounded in-memory LRU (for the hot loop of one
process) and an optional on-disk directory of ``.npz`` files (for repeated
experiment invocations).  Disk writes are atomic (tmp file + rename).
"""

from __future__ import annotations

import hashlib
import re
import time
import zipfile
from collections import OrderedDict
from pathlib import Path

import numpy as np
from scipy import sparse as _sp

from ..exceptions import ConfigurationError, ProximityError
from ..graph import Graph
from ..graph.graph import graph_content_fingerprint
from ..utils.fileio import atomic_write_path, tmp_file_pattern
from ..utils.logging import get_logger
from .base import ProximityMatrix, ProximityMeasure

__all__ = [
    "graph_fingerprint",
    "ProximityCache",
    "default_proximity_cache",
    "resolve_cache_policy",
]

_LOGGER = get_logger("proximity.cache")

#: the disk tier's own file naming: <graph fingerprint>-<key digest>.npz
_CACHE_FILE_PATTERN = re.compile(r"[0-9a-f]{32}-[0-9a-f]{32}\.npz")
#: in-flight temp files (.<stem>.<pid>-<hex>.npz) left behind by writers
#: that died between savez and the atomic rename
_TMP_FILE_PATTERN = tmp_file_pattern(r"[0-9a-f]{32}-[0-9a-f]{32}", ".npz")
#: a temp file younger than this may belong to a live concurrent writer
#: (stores take seconds); only older orphans are reaped by clear()
_TMP_REAP_AGE_SECONDS = 3600.0


def graph_fingerprint(graph: Graph) -> str:
    """Content hash of a graph: node count + canonical edge array.

    Delegates to the graph's memoized fingerprint when available so hot
    cache loops never re-hash a large edge array; the fallback covers
    duck-typed graph objects.
    """
    if hasattr(graph, "content_fingerprint"):
        return graph.content_fingerprint()
    return graph_content_fingerprint(graph.num_nodes, graph.edges)


class ProximityCache:
    """Two-tier (memory + optional disk) cache for :class:`ProximityMatrix`.

    Parameters
    ----------
    directory:
        Optional directory for the on-disk tier.  Created on first store;
        ``None`` keeps the cache purely in-memory.
    max_memory_items:
        Entry-count bound of the in-memory LRU tier.
    max_memory_bytes:
        Byte budget of the in-memory tier (default 1 GiB): large dense
        matrices would otherwise stay pinned for the process lifetime once
        cached.  Eviction is LRU; the most recent entry is always kept even
        when it alone exceeds the budget, so a hot loop over one oversized
        graph still hits.  After a one-shot embed of a very large graph,
        call :meth:`clear` on the (default) cache to release that last
        entry early — the next store would evict it anyway.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_memory_items: int = 16,
        max_memory_bytes: int = 1 << 30,
    ) -> None:
        if max_memory_items < 1:
            raise ProximityError(
                f"max_memory_items must be >= 1, got {max_memory_items}"
            )
        if max_memory_bytes < 1:
            raise ProximityError(
                f"max_memory_bytes must be >= 1, got {max_memory_bytes}"
            )
        self.directory = Path(directory) if directory is not None else None
        self.max_memory_items = int(max_memory_items)
        self.max_memory_bytes = int(max_memory_bytes)
        self._memory: OrderedDict[tuple[str, str, str], ProximityMatrix] = OrderedDict()
        # nbytes snapshot per entry at store time: a matrix can grow later
        # (lazy lookup keys), so eviction must subtract what was added
        self._entry_bytes: dict[tuple[str, str, str], int] = {}
        self._memory_bytes = 0
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #
    def cache_key(
        self, measure: ProximityMeasure, graph: Graph, sparse: bool | None = None
    ) -> tuple[str, str, str]:
        """The content key ``(graph hash, measure fingerprint, backend)``.

        The backend label comes from ``measure.resolve_backend`` — the same
        resolution :meth:`ProximityMeasure.compute` applies — so a cached
        entry always has the backend its key claims.
        """
        return (
            graph_fingerprint(graph),
            measure.fingerprint(),
            "sparse" if measure.resolve_backend(sparse) else "dense",
        )

    def _disk_path(self, key: tuple[str, str, str]) -> Path | None:
        if self.directory is None:
            return None
        digest = hashlib.sha256("|".join(key).encode()).hexdigest()[:32]
        # the graph hash prefixes the filename so invalidate() can glob it
        return self.directory / f"{key[0]}-{digest}.npz"

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #
    def get(
        self, measure: ProximityMeasure, graph: Graph, sparse: bool | None = None
    ) -> ProximityMatrix | None:
        """Return the cached matrix or ``None`` (counts a hit/miss)."""
        return self._get_by_key(self.cache_key(measure, graph, sparse))

    def put(
        self,
        measure: ProximityMeasure,
        graph: Graph,
        matrix: ProximityMatrix,
        sparse: bool | None = None,
    ) -> None:
        """Store a computed matrix under its content key (memory + disk)."""
        self._put_by_key(self.cache_key(measure, graph, sparse), matrix)

    def get_or_compute(
        self, measure: ProximityMeasure, graph: Graph, sparse: bool | None = None
    ) -> ProximityMatrix:
        """Return the cached matrix, computing and storing it on a miss."""
        # one key computation per call: hashing every graph edge twice per
        # miss (get + put) would be pure wasted work on large graphs
        key = self.cache_key(measure, graph, sparse)
        cached = self._get_by_key(key)
        if cached is not None:
            return cached
        matrix = measure.compute(graph, sparse=sparse)
        self._put_by_key(key, matrix)
        return matrix

    def _get_by_key(self, key: tuple[str, str, str]) -> ProximityMatrix | None:
        if key in self._memory:
            self._memory.move_to_end(key)
            self.hits += 1
            return self._memory[key]
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                matrix = _load_proximity(path)
            except FileNotFoundError:
                # another process invalidated/cleared between the existence
                # check and the read — degrade to a miss, don't crash
                matrix = None
            except (OSError, ValueError, KeyError, zipfile.BadZipFile, ProximityError):  # repro-lint: disable=RETRY001 -- a cache read that fails is a miss by design: the matrix is recomputed, which is strictly more reliable than re-reading a payload that just proved unreadable
                # corrupt/foreign/incompatible payload: drop it (best
                # effort) and recompute rather than killing the sweep
                matrix = None
                try:
                    path.unlink(missing_ok=True)
                except OSError:  # repro-lint: disable=RETRY001 -- best-effort eviction on e.g. a read-only volume: leaving the corrupt file behind is harmless (it re-misses), retrying the unlink is not
                    pass
            if matrix is not None:
                self._remember(key, matrix)
                self.hits += 1
                return matrix
        self.misses += 1
        return None

    def _put_by_key(self, key: tuple[str, str, str], matrix: ProximityMatrix) -> None:
        self._remember(key, matrix)
        path = self._disk_path(key)
        if path is not None:
            try:
                self.directory.mkdir(parents=True, exist_ok=True)
                _save_proximity(path, matrix)
            except OSError as exc:  # repro-lint: disable=RETRY001 -- the disk tier is best-effort by contract: the matrix is already served from memory, so a full/read-only volume degrades to a warning; retrying would stall the fit for a cache
                # full or read-only volume: the disk tier is best-effort —
                # the matrix is already served from memory, so log and go on
                _LOGGER.warning("proximity cache disk store failed for %s: %s", path, exc)
        self.stores += 1

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def invalidate(self, graph: Graph) -> int:
        """Drop every cached matrix of ``graph`` (any measure, any backend)."""
        fingerprint = graph_fingerprint(graph)
        stale = [key for key in self._memory if key[0] == fingerprint]
        for key in stale:
            self._memory.pop(key)
            self._memory_bytes -= self._entry_bytes.pop(key, 0)
        removed = len(stale)
        if self.directory is not None and self.directory.exists():
            for path in self.directory.glob(f"{fingerprint}-*.npz"):
                try:
                    path.unlink()
                    removed += 1
                except FileNotFoundError:  # concurrent invalidate/clear won
                    pass
        return removed

    def clear(self) -> None:
        """Empty both tiers and reset the statistics.

        Only files matching this cache's own ``<graph>-<digest>.npz``
        naming are removed — a directory shared with other ``.npz``
        artifacts (saved embeddings, experiment outputs) is left alone.
        Orphaned temp files from crashed writers are reaped too, but only
        once they are old enough that no live writer can still own them.
        """
        self._memory.clear()
        self._entry_bytes.clear()
        self._memory_bytes = 0
        if self.directory is not None and self.directory.exists():
            now = time.time()
            for path in self.directory.glob("*.npz"):
                if _CACHE_FILE_PATTERN.fullmatch(path.name):
                    path.unlink(missing_ok=True)
                elif _TMP_FILE_PATTERN.fullmatch(path.name):
                    try:
                        if now - path.stat().st_mtime > _TMP_REAP_AGE_SECONDS:
                            path.unlink(missing_ok=True)
                    except FileNotFoundError:
                        pass
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def __len__(self) -> int:
        return len(self._memory)

    def __repr__(self) -> str:
        return (
            f"ProximityCache(items={len(self._memory)}, hits={self.hits}, "
            f"misses={self.misses}, directory={str(self.directory) if self.directory else None!r})"
        )

    # ------------------------------------------------------------------ #
    def _remember(self, key: tuple[str, str, str], matrix: ProximityMatrix) -> None:
        if self._memory.pop(key, None) is not None:
            self._memory_bytes -= self._entry_bytes.pop(key, 0)
        # hits share this one object, so freeze its buffers: an in-place
        # edit by one consumer must fail loudly, not corrupt later hits
        self._memory[key] = matrix.freeze()
        self._entry_bytes[key] = matrix.nbytes
        self._memory_bytes += self._entry_bytes[key]
        while len(self._memory) > 1 and (
            len(self._memory) > self.max_memory_items
            or self._memory_bytes > self.max_memory_bytes
        ):
            evicted_key, _ = self._memory.popitem(last=False)
            self._memory_bytes -= self._entry_bytes.pop(evicted_key, 0)


# ---------------------------------------------------------------------- #
# serialization
# ---------------------------------------------------------------------- #
def _save_proximity(path: Path, matrix: ProximityMatrix) -> None:
    # concurrent writers of the same key must not interleave into one file;
    # the shared helper writes a unique temp and publishes atomically
    with atomic_write_path(path) as tmp_path:
        if matrix.is_sparse:
            csr = matrix.sparse_matrix
            np.savez_compressed(
                tmp_path,
                kind="sparse",
                name=matrix.name,
                data=csr.data,
                indices=csr.indices,
                indptr=csr.indptr,
                shape=np.asarray(csr.shape, dtype=np.int64),
            )
        else:
            np.savez_compressed(tmp_path, kind="dense", name=matrix.name, matrix=matrix.matrix)


def _load_proximity(path: Path) -> ProximityMatrix:
    with np.load(path, allow_pickle=False) as payload:
        kind = str(payload["kind"])
        name = str(payload["name"])
        if kind == "sparse":
            shape = tuple(int(x) for x in payload["shape"])
            csr = _sp.csr_matrix(
                (payload["data"], payload["indices"], payload["indptr"]), shape=shape
            )
            return ProximityMatrix(csr, name=name)
        if kind == "dense":
            # np.load hands us a fresh array: freeze() need not copy it
            return ProximityMatrix(payload["matrix"], name=name, owned=True)
    raise ProximityError(f"unrecognised proximity cache payload kind {kind!r} in {path}")


# ---------------------------------------------------------------------- #
# process-wide default (used by the experiment runner)
# ---------------------------------------------------------------------- #
_DEFAULT_CACHE: ProximityCache | None = None


def default_proximity_cache() -> ProximityCache:
    """The process-wide in-memory cache shared by the experiment runner."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = ProximityCache()
    return _DEFAULT_CACHE


def resolve_cache_policy(policy) -> ProximityCache | None:
    """Resolve an explicit proximity-cache policy to a cache (or bypass).

    The contract is three-valued: ``"default"`` routes through the
    process-wide cache, ``"off"`` bypasses caching entirely (returns
    ``None``), and a :class:`ProximityCache` instance is used as-is.
    Anything else — including the pre-redesign ``None``/``False``/``True``
    overloads, which only the experiment runner shims (they never existed
    on the trainer constructors) — is rejected with
    :class:`~repro.exceptions.ConfigurationError`.
    """
    if isinstance(policy, ProximityCache):
        return policy
    if not isinstance(policy, str):  # bool/None must not match the str branches
        raise ConfigurationError(
            "proximity_cache must be 'default', 'off', or a ProximityCache instance; "
            f"got {policy!r}"
        )
    if policy == "default":
        return default_proximity_cache()
    if policy == "off":
        return None
    raise ConfigurationError(
        "proximity_cache must be 'default', 'off', or a ProximityCache instance; "
        f"got {policy!r}"
    )
