"""Node-degree proximity (the SE-PrivGEmb\\ :sub:`Deg` variant).

The paper's second experimental variant uses "node degree proximity": the
structural preference of a pair is driven by the degrees of its endpoints.
We use the normalised geometric combination ``p_ij = sqrt(d_i · d_j) /
max(d)`` for connected pairs, which ranks pairs exactly as preferential
attachment does but keeps values bounded in ``(0, 1]``, and 0 for
unconnected pairs (degree proximity is a first-order feature computed on
observed edges).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .base import ProximityMeasure

__all__ = ["DegreeProximity"]


class DegreeProximity(ProximityMeasure):
    """Degree-based structure preference for observed edges.

    Parameters
    ----------
    connected_only:
        If ``True`` (default, matching the paper's training objective where
        only observed edges carry a preference weight) the proximity is
        non-zero only for adjacent pairs.  If ``False`` every pair gets a
        degree-product score, which is useful for analysis.
    """

    name = "degree"

    def __init__(self, connected_only: bool = True) -> None:
        self.connected_only = bool(connected_only)

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        degrees = graph.degrees().astype(float)
        peak = float(degrees.max()) if degrees.size else 0.0
        if peak <= 0:
            return np.zeros((graph.num_nodes, graph.num_nodes))
        scores = np.sqrt(np.outer(degrees, degrees)) / peak
        if self.connected_only:
            adjacency = self._dense_adjacency(graph)
            scores = scores * adjacency
        return scores

    def __repr__(self) -> str:
        return f"DegreeProximity(connected_only={self.connected_only})"
