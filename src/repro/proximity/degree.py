"""Node-degree proximity (the SE-PrivGEmb\\ :sub:`Deg` variant).

The paper's second experimental variant uses "node degree proximity": the
structural preference of a pair is driven by the degrees of its endpoints.
We use the normalised geometric combination ``p_ij = sqrt(d_i · d_j) /
max(d)`` for connected pairs, which ranks pairs exactly as preferential
attachment does but keeps values bounded in ``(0, 1]``, and 0 for
unconnected pairs (degree proximity is a first-order feature computed on
observed edges).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..graph import Graph
from .base import ProximityMeasure

__all__ = ["DegreeProximity"]


class DegreeProximity(ProximityMeasure):
    """Degree-based structure preference for observed edges.

    Parameters
    ----------
    connected_only:
        If ``True`` (default, matching the paper's training objective where
        only observed edges carry a preference weight) the proximity is
        non-zero only for adjacent pairs — exactly the adjacency pattern, so
        the measure is sparse-first.  If ``False`` every pair gets a degree
        product score, which is useful for analysis but dense by nature.
    """

    name = "degree"

    def __init__(self, connected_only: bool = True) -> None:
        self.connected_only = bool(connected_only)
        # Sparse support is exactly the adjacency pattern — but only when
        # restricted to observed edges.
        self.supports_sparse = self.connected_only

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        degrees = graph.degrees().astype(float)
        peak = float(degrees.max()) if degrees.size else 0.0
        if peak <= 0:
            return np.zeros((graph.num_nodes, graph.num_nodes))
        scores = np.sqrt(np.outer(degrees, degrees)) / peak
        if self.connected_only:
            adjacency = self._dense_adjacency(graph)
            scores = scores * adjacency
        return scores

    def compute_sparse_matrix(self, graph: Graph) -> _sp.csr_matrix:
        if not self.connected_only:
            return super().compute_sparse_matrix(graph)
        degrees = graph.degrees().astype(float)
        peak = float(degrees.max()) if degrees.size else 0.0
        n = graph.num_nodes
        if peak <= 0:
            return _sp.csr_matrix((n, n))
        adjacency = self._sparse_adjacency(graph).tocoo()
        data = np.sqrt(degrees[adjacency.row] * degrees[adjacency.col]) / peak
        return _sp.csr_matrix((data, (adjacency.row, adjacency.col)), shape=(n, n))

    def __repr__(self) -> str:
        return f"DegreeProximity(connected_only={self.connected_only})"
