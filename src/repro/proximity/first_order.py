"""First-order proximity measures (one-hop neighbourhood heuristics).

The paper's Definition 4 cites common neighbours and preferential attachment
as first-order structural features; Jaccard similarity is included as a
normalised variant commonly used alongside them.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .base import ProximityMeasure

__all__ = [
    "CommonNeighborsProximity",
    "PreferentialAttachmentProximity",
    "JaccardProximity",
]


class CommonNeighborsProximity(ProximityMeasure):
    """``p_ij = |N(v_i) ∩ N(v_j)|`` — the number of shared neighbours."""

    name = "common_neighbors"

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        adjacency = self._dense_adjacency(graph)
        return adjacency @ adjacency


class PreferentialAttachmentProximity(ProximityMeasure):
    """``p_ij = d_i · d_j`` — the Barabási–Albert preferential attachment score."""

    name = "preferential_attachment"

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        degrees = graph.degrees().astype(float)
        return np.outer(degrees, degrees)


class JaccardProximity(ProximityMeasure):
    """``p_ij = |N(i) ∩ N(j)| / |N(i) ∪ N(j)|`` — normalised neighbourhood overlap."""

    name = "jaccard"

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        adjacency = self._dense_adjacency(graph)
        intersection = adjacency @ adjacency
        degrees = adjacency.sum(axis=1)
        union = degrees[:, None] + degrees[None, :] - intersection
        with np.errstate(divide="ignore", invalid="ignore"):
            jaccard = np.where(union > 0, intersection / union, 0.0)
        return jaccard
