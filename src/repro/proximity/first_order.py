"""First-order proximity measures (one-hop neighbourhood heuristics).

The paper's Definition 4 cites common neighbours and preferential attachment
as first-order structural features; Jaccard similarity is included as a
normalised variant commonly used alongside them.

Common neighbours and Jaccard have genuinely sparse support (the pattern of
``A @ A``) and provide CSR paths; preferential attachment is a dense outer
product by nature and keeps the dense backend.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..graph import Graph
from .base import ProximityMeasure

__all__ = [
    "CommonNeighborsProximity",
    "PreferentialAttachmentProximity",
    "JaccardProximity",
]


class CommonNeighborsProximity(ProximityMeasure):
    """``p_ij = |N(v_i) ∩ N(v_j)|`` — the number of shared neighbours."""

    name = "common_neighbors"
    supports_sparse = True

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        adjacency = self._dense_adjacency(graph)
        return adjacency @ adjacency

    def compute_sparse_matrix(self, graph: Graph) -> _sp.csr_matrix:
        adjacency = self._sparse_adjacency(graph)
        return (adjacency @ adjacency).tocsr()


class PreferentialAttachmentProximity(ProximityMeasure):
    """``p_ij = d_i · d_j`` — the Barabási–Albert preferential attachment score.

    Non-zero for every pair of non-isolated nodes, so there is no sparse
    structure to exploit: the measure keeps the dense backend.
    """

    name = "preferential_attachment"

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        degrees = graph.degrees().astype(float)
        return np.outer(degrees, degrees)


class JaccardProximity(ProximityMeasure):
    """``p_ij = |N(i) ∩ N(j)| / |N(i) ∪ N(j)|`` — normalised neighbourhood overlap."""

    name = "jaccard"
    supports_sparse = True

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        adjacency = self._dense_adjacency(graph)
        intersection = adjacency @ adjacency
        degrees = adjacency.sum(axis=1)
        union = degrees[:, None] + degrees[None, :] - intersection
        with np.errstate(divide="ignore", invalid="ignore"):
            jaccard = np.where(union > 0, intersection / union, 0.0)
        return jaccard

    def compute_sparse_matrix(self, graph: Graph) -> _sp.csr_matrix:
        # The Jaccard score is non-zero exactly where the intersection count
        # is, so only the stored entries of A @ A ever need a union size.
        adjacency = self._sparse_adjacency(graph)
        intersection = (adjacency @ adjacency).tocoo()
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        union = degrees[intersection.row] + degrees[intersection.col] - intersection.data
        with np.errstate(divide="ignore", invalid="ignore"):
            data = np.where(union > 0, intersection.data / union, 0.0)
        return _sp.csr_matrix(
            (data, (intersection.row, intersection.col)), shape=intersection.shape
        )
