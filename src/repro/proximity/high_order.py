"""High-order proximity measures: Katz, personalised PageRank, DeepWalk.

The DeepWalk proximity is the one used by the paper's headline variant
SE-PrivGEmb\ :sub:`DW`.  Following the NetMF/TADW formulation the paper
cites ([22], [24]), the DeepWalk proximity of a graph is the windowed
transition-matrix average ``(1/T) Σ_{t=1..T} (D^{-1} A)^t`` scaled by the
graph volume — the expected random-walk co-occurrence between node pairs.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ProximityError
from ..graph import Graph
from .base import ProximityMeasure

__all__ = ["KatzProximity", "PersonalizedPageRankProximity", "DeepWalkProximity"]


class KatzProximity(ProximityMeasure):
    """Katz index: ``P = Σ_{t>=1} β^t A^t = (I - βA)^{-1} - I``.

    ``beta`` must be smaller than the reciprocal of the spectral radius of
    ``A`` for the series to converge; the constructor checks this lazily at
    compute time.
    """

    name = "katz"

    def __init__(self, beta: float = 0.05) -> None:
        if beta <= 0:
            raise ProximityError(f"beta must be positive, got {beta}")
        self.beta = float(beta)

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        adjacency = self._dense_adjacency(graph)
        n = adjacency.shape[0]
        eigenvalues = np.linalg.eigvalsh(adjacency)
        radius = float(np.max(np.abs(eigenvalues))) if n else 0.0
        if radius > 0 and self.beta >= 1.0 / radius:
            raise ProximityError(
                f"beta={self.beta} does not converge: spectral radius is {radius:.4f}, "
                f"beta must be < {1.0 / radius:.4f}"
            )
        katz = np.linalg.inv(np.eye(n) - self.beta * adjacency) - np.eye(n)
        # numerical noise can yield tiny negatives; the series is non-negative
        np.maximum(katz, 0.0, out=katz)
        return katz

    def __repr__(self) -> str:
        return f"KatzProximity(beta={self.beta})"


class PersonalizedPageRankProximity(ProximityMeasure):
    """Personalised PageRank matrix ``P = (1-α) (I - α D^{-1} A)^{-1}``.

    Row ``i`` is the PPR vector of node ``i``; entry ``(i, j)`` is the
    stationary probability of a random walk with restart at ``i`` visiting
    ``j``.
    """

    name = "ppr"

    def __init__(self, damping: float = 0.85) -> None:
        if not 0 < damping < 1:
            raise ProximityError(f"damping must be in (0, 1), got {damping}")
        self.damping = float(damping)

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        adjacency = self._dense_adjacency(graph)
        n = adjacency.shape[0]
        degrees = adjacency.sum(axis=1)
        inv_degrees = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1e-12), 0.0)
        transition = adjacency * inv_degrees[:, None]
        ppr = (1.0 - self.damping) * np.linalg.inv(np.eye(n) - self.damping * transition)
        np.maximum(ppr, 0.0, out=ppr)
        return ppr

    def __repr__(self) -> str:
        return f"PersonalizedPageRankProximity(damping={self.damping})"


class DeepWalkProximity(ProximityMeasure):
    """Random-walk co-occurrence (DeepWalk) proximity.

    ``P = (vol(G) / T) · Σ_{t=1..T} (D^{-1} A)^t D^{-1}`` — the expected
    windowed co-occurrence of node pairs under uniform random walks with
    window size ``T`` (the NetMF closed form the paper builds on).  This is
    the proximity behind SE-PrivGEmb\\ :sub:`DW`.

    Parameters
    ----------
    window_size:
        The random-walk window ``T``.
    use_volume_scaling:
        If ``True`` (default) the matrix is scaled by ``vol(G) = Σ_v d_v``;
        scaling does not change the structure preference (Theorem 3 only
        depends on ratios ``p_ij / min(P)``), but keeps values in the
        range the NetMF literature reports.
    """

    name = "deepwalk"

    def __init__(self, window_size: int = 5, use_volume_scaling: bool = True) -> None:
        if window_size < 1:
            raise ProximityError(f"window_size must be >= 1, got {window_size}")
        self.window_size = int(window_size)
        self.use_volume_scaling = bool(use_volume_scaling)

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        adjacency = self._dense_adjacency(graph)
        degrees = adjacency.sum(axis=1)
        inv_degrees = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1e-12), 0.0)
        transition = adjacency * inv_degrees[:, None]

        accumulated = np.zeros_like(adjacency)
        power = np.eye(adjacency.shape[0])
        for _ in range(self.window_size):
            power = power @ transition
            accumulated += power
        accumulated /= self.window_size
        proximity = accumulated * inv_degrees[None, :]
        if self.use_volume_scaling:
            proximity *= float(degrees.sum())
        np.maximum(proximity, 0.0, out=proximity)
        return proximity

    def __repr__(self) -> str:
        return (
            f"DeepWalkProximity(window_size={self.window_size}, "
            f"use_volume_scaling={self.use_volume_scaling})"
        )
