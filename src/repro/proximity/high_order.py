"""High-order proximity measures: Katz, personalised PageRank, DeepWalk.

The DeepWalk proximity is the one used by the paper's headline variant
SE-PrivGEmb\\ :sub:`DW`.  Following the NetMF/TADW formulation the paper
cites ([22], [24]), the DeepWalk proximity of a graph is the windowed
transition-matrix average ``(1/T) Σ_{t=1..T} (D^{-1} A)^t`` scaled by the
graph volume — the expected random-walk co-occurrence between node pairs.

All three measures are sparse-first: the spectral-radius convergence check
runs as sparse Lanczos iteration on the CSR adjacency (no dense
``eigvalsh``), Katz and PPR solve their resolvent systems with
:func:`scipy.sparse.linalg.spsolve`, and DeepWalk accumulates CSR
transition powers with an optional truncation threshold that bounds
fill-in on large graphs.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp
from scipy.sparse import linalg as _spla

from ..exceptions import ProximityError
from ..graph import Graph
from ..utils.logging import get_logger
from .base import ProximityMeasure

_LOGGER = get_logger("proximity.high_order")

__all__ = [
    "spectral_radius",
    "KatzProximity",
    "PersonalizedPageRankProximity",
    "DeepWalkProximity",
]


def spectral_radius(
    adjacency: _sp.spmatrix | np.ndarray,
    iterations: int = 200,
    tolerance: float = 1e-10,
) -> float:
    """Spectral radius of a symmetric matrix, without a dense workspace.

    Uses sparse Lanczos (``eigsh``, accurate to machine precision even for
    near-degenerate leading eigenvalues) with a power-iteration fallback —
    the dense ``eigvalsh`` the seed used allocated an n×n workspace just to
    read off one number.  The Katz convergence guard relies on this value,
    so a plain power iteration alone would be too weak: it can stall below
    the true radius when the two leading eigenvalues nearly coincide and
    silently accept a divergent ``beta``.

    ``iterations`` and ``tolerance`` only govern the power-iteration
    fallback, which engages when ARPACK itself fails (rare).
    """
    n = adjacency.shape[0]
    if n == 0:
        return 0.0
    matrix = adjacency if _sp.issparse(adjacency) else np.asarray(adjacency, dtype=float)
    if _sp.issparse(matrix):
        if matrix.nnz == 0:
            return 0.0
    elif not np.any(matrix):
        return 0.0
    if n <= 2:
        dense = matrix.toarray() if _sp.issparse(matrix) else matrix
        return float(np.max(np.abs(np.linalg.eigvalsh(dense))))
    try:
        extreme = _spla.eigsh(
            matrix.astype(float), k=1, which="LM", return_eigenvectors=False
        )
        return float(np.max(np.abs(extreme)))
    except _spla.ArpackNoConvergence as exc:
        # ARPACK hands back the eigenvalues it *did* converge — still far
        # more accurate than the power-iteration fallback below
        if exc.eigenvalues is not None and len(exc.eigenvalues):
            return float(np.max(np.abs(exc.eigenvalues)))
    except _spla.ArpackError:  # pragma: no cover - exotic ARPACK breakage
        # only ARPACK-internal failures may degrade to power iteration;
        # anything else (dtype bugs, scipy regressions) must surface
        pass
    # Deterministic, non-degenerate start vector: all-ones plus a slope so
    # it is not orthogonal to sign-alternating eigenvectors.
    x = np.ones(n) + np.linspace(0.0, 1.0, n)
    x /= np.linalg.norm(x)
    radius = 0.0
    for _ in range(iterations):
        y = matrix @ x
        norm = float(np.linalg.norm(y))
        if norm == 0.0:
            return 0.0
        if abs(norm - radius) <= tolerance * max(1.0, norm):
            return norm
        radius = norm
        x = y / norm
    return radius


def _transition_and_inv_degrees(
    adjacency: _sp.csr_matrix,
) -> tuple[_sp.csr_matrix, np.ndarray, np.ndarray]:
    """Row-stochastic ``D^{-1} A`` plus the degree vectors, all sparse."""
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    inv_degrees = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1e-12), 0.0)
    transition = _sp.diags(inv_degrees) @ adjacency
    return transition.tocsr(), degrees, inv_degrees


def _clamp_nonnegative(matrix: _sp.spmatrix) -> _sp.csr_matrix:
    """Zero out tiny numerical negatives in a sparse result."""
    csr = matrix.tocsr()
    np.maximum(csr.data, 0.0, out=csr.data)
    csr.eliminate_zeros()
    return csr


class KatzProximity(ProximityMeasure):
    """Katz index: ``P = Σ_{t>=1} β^t A^t = (I - βA)^{-1} - I``.

    ``beta`` must be smaller than the reciprocal of the spectral radius of
    ``A`` for the series to converge; the check runs lazily at compute time
    via :func:`spectral_radius` (sparse Lanczos).  The sparse path solves
    ``(I - βA) X = I`` with a sparse LU factorisation instead of forming
    the dense inverse.
    """

    name = "katz"
    supports_sparse = True
    # the resolvent is structurally full on a connected graph: CSR storage
    # of ~n² entries costs *more* than the dense array, so the CSR path is
    # opt-in (compute(..., sparse=True)) rather than the default
    prefers_sparse = False

    def __init__(self, beta: float = 0.05) -> None:
        if beta <= 0:
            raise ProximityError(f"beta must be positive, got {beta}")
        self.beta = float(beta)

    def _check_convergence(self, adjacency: _sp.spmatrix | np.ndarray) -> None:
        radius = spectral_radius(adjacency)
        if radius > 0 and self.beta >= 1.0 / radius:
            raise ProximityError(
                f"beta={self.beta} does not converge: spectral radius is {radius:.4f}, "
                f"beta must be < {1.0 / radius:.4f}"
            )

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        adjacency = self._sparse_adjacency(graph)
        self._check_convergence(adjacency)
        n = adjacency.shape[0]
        dense = adjacency.toarray()
        katz = np.linalg.inv(np.eye(n) - self.beta * dense) - np.eye(n)
        # numerical noise can yield tiny negatives; the series is non-negative
        np.maximum(katz, 0.0, out=katz)
        return katz

    def compute_sparse_matrix(self, graph: Graph) -> _sp.csr_matrix:
        adjacency = self._sparse_adjacency(graph)
        self._check_convergence(adjacency)
        n = adjacency.shape[0]
        identity = _sp.identity(n, format="csc")
        system = (identity - self.beta * adjacency).tocsc()
        solution = _spla.spsolve(system, identity)
        katz = _sp.csr_matrix(solution) - _sp.identity(n, format="csr")
        return _clamp_nonnegative(katz)

    def __repr__(self) -> str:
        return f"KatzProximity(beta={self.beta})"


class PersonalizedPageRankProximity(ProximityMeasure):
    """Personalised PageRank matrix ``P = (1-α) (I - α D^{-1} A)^{-1}``.

    Row ``i`` is the PPR vector of node ``i``; entry ``(i, j)`` is the
    stationary probability of a random walk with restart at ``i`` visiting
    ``j``.  The sparse path solves ``(I - αT) X = (1-α) I`` with a sparse
    LU factorisation.
    """

    name = "ppr"
    supports_sparse = True
    # same structurally-full resolvent as Katz: CSR is opt-in, not default
    prefers_sparse = False

    def __init__(self, damping: float = 0.85) -> None:
        if not 0 < damping < 1:
            raise ProximityError(f"damping must be in (0, 1), got {damping}")
        self.damping = float(damping)

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        adjacency = self._dense_adjacency(graph)
        n = adjacency.shape[0]
        degrees = adjacency.sum(axis=1)
        inv_degrees = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1e-12), 0.0)
        transition = adjacency * inv_degrees[:, None]
        ppr = (1.0 - self.damping) * np.linalg.inv(np.eye(n) - self.damping * transition)
        np.maximum(ppr, 0.0, out=ppr)
        return ppr

    def compute_sparse_matrix(self, graph: Graph) -> _sp.csr_matrix:
        adjacency = self._sparse_adjacency(graph)
        transition, _, _ = _transition_and_inv_degrees(adjacency)
        n = adjacency.shape[0]
        identity = _sp.identity(n, format="csc")
        system = (identity - self.damping * transition).tocsc()
        solution = _spla.spsolve(system, identity)
        ppr = (1.0 - self.damping) * _sp.csr_matrix(solution)
        return _clamp_nonnegative(ppr)

    def __repr__(self) -> str:
        return f"PersonalizedPageRankProximity(damping={self.damping})"


class DeepWalkProximity(ProximityMeasure):
    """Random-walk co-occurrence (DeepWalk) proximity.

    ``P = (vol(G) / T) · Σ_{t=1..T} (D^{-1} A)^t D^{-1}`` — the expected
    windowed co-occurrence of node pairs under uniform random walks with
    window size ``T`` (the NetMF closed form the paper builds on).  This is
    the proximity behind SE-PrivGEmb\\ :sub:`DW`.

    Parameters
    ----------
    window_size:
        The random-walk window ``T``.
    use_volume_scaling:
        If ``True`` (default) the matrix is scaled by ``vol(G) = Σ_v d_v``;
        scaling does not change the structure preference (Theorem 3 only
        depends on ratios ``p_ij / min(P)``), but keeps values in the
        range the NetMF literature reports.
    truncation_threshold:
        Sparse path only: after each transition power, entries whose walk
        probability falls below this threshold are dropped.  ``0`` (default)
        keeps the computation exact — bit-for-bit the same series as the
        dense path — while a small positive value (e.g. ``1e-2``) bounds
        the fill-in of ``(D^{-1}A)^t`` so the proximity of a large sparse
        graph never approaches n×n storage.  The dense path ignores it.
        A positive threshold also flips the default backend to CSR (the
        scale path); with ``0`` the default stays dense because exact
        powers are structurally near-full.
    """

    name = "deepwalk"
    supports_sparse = True

    def __init__(
        self,
        window_size: int = 5,
        use_volume_scaling: bool = True,
        truncation_threshold: float = 0.0,
    ) -> None:
        if window_size < 1:
            raise ProximityError(f"window_size must be >= 1, got {window_size}")
        if truncation_threshold < 0:
            raise ProximityError(
                f"truncation_threshold must be non-negative, got {truncation_threshold}"
            )
        self.window_size = int(window_size)
        self.use_volume_scaling = bool(use_volume_scaling)
        self.truncation_threshold = float(truncation_threshold)
        # Exact transition powers fill toward n² on small-world graphs, and
        # a structurally-full CSR costs more than the dense array (same
        # reasoning as Katz/PPR): CSR is the default only when truncation
        # bounds the fill-in; the exact CSR path stays available via
        # compute(graph, sparse=True).
        self.prefers_sparse = self.truncation_threshold > 0

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        adjacency = self._dense_adjacency(graph)
        degrees = adjacency.sum(axis=1)
        inv_degrees = np.where(degrees > 0, 1.0 / np.maximum(degrees, 1e-12), 0.0)
        transition = adjacency * inv_degrees[:, None]

        accumulated = np.zeros_like(adjacency)
        power = np.eye(adjacency.shape[0])
        for _ in range(self.window_size):
            power = power @ transition
            accumulated += power
        accumulated /= self.window_size
        proximity = accumulated * inv_degrees[None, :]
        if self.use_volume_scaling:
            proximity *= float(degrees.sum())
        np.maximum(proximity, 0.0, out=proximity)
        return proximity

    def compute_sparse_matrix(self, graph: Graph) -> _sp.csr_matrix:
        adjacency = self._sparse_adjacency(graph)
        transition, degrees, inv_degrees = _transition_and_inv_degrees(adjacency)

        n = adjacency.shape[0]
        power = transition.copy()
        accumulated = self._truncate(power).copy()
        fill_warned = False
        for _ in range(self.window_size - 1):
            power = self._truncate((power @ transition).tocsr())
            accumulated = (accumulated + power).tocsr()
            if (
                not fill_warned
                and self.truncation_threshold <= 0
                and n >= 4096  # below this, a filled matrix is a few MB of noise
                and accumulated.nnz > 0.5 * n * n
            ):
                # exact powers on a small-world graph fill toward n² —
                # correct, but then CSR costs *more* than dense storage
                _LOGGER.warning(
                    "exact DeepWalk CSR powers filled to %.0f%% of n^2 on %d "
                    "nodes; set truncation_threshold > 0 to bound memory on "
                    "large graphs",
                    100.0 * accumulated.nnz / (n * n),
                    n,
                )
                fill_warned = True
        accumulated = accumulated / self.window_size
        proximity = accumulated @ _sp.diags(inv_degrees)
        if self.use_volume_scaling:
            proximity = proximity * float(degrees.sum())
        return _clamp_nonnegative(proximity)

    def _truncate(self, power: _sp.csr_matrix) -> _sp.csr_matrix:
        """Drop walk probabilities below the threshold to bound fill-in."""
        if self.truncation_threshold <= 0:
            return power
        power.data[power.data < self.truncation_threshold] = 0.0
        power.eliminate_zeros()
        return power

    def __repr__(self) -> str:
        return (
            f"DeepWalkProximity(window_size={self.window_size}, "
            f"use_volume_scaling={self.use_volume_scaling}, "
            f"truncation_threshold={self.truncation_threshold})"
        )
