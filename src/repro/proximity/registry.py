"""Name-based registry of proximity measures.

Experiments reference proximities by name ("deepwalk", "degree", ...); this
registry maps those names to configured :class:`ProximityMeasure` instances.
"""

from __future__ import annotations

from typing import Any, Callable

from ..exceptions import ProximityError
from .base import ProximityMeasure
from .degree import DegreeProximity
from .first_order import (
    CommonNeighborsProximity,
    JaccardProximity,
    PreferentialAttachmentProximity,
)
from .high_order import DeepWalkProximity, KatzProximity, PersonalizedPageRankProximity
from .second_order import AdamicAdarProximity, ResourceAllocationProximity

__all__ = ["available_proximities", "get_proximity", "register_proximity"]

_REGISTRY: dict[str, Callable[..., ProximityMeasure]] = {
    "common_neighbors": CommonNeighborsProximity,
    "preferential_attachment": PreferentialAttachmentProximity,
    "jaccard": JaccardProximity,
    "adamic_adar": AdamicAdarProximity,
    "resource_allocation": ResourceAllocationProximity,
    "katz": KatzProximity,
    "ppr": PersonalizedPageRankProximity,
    "deepwalk": DeepWalkProximity,
    "degree": DegreeProximity,
}


def available_proximities() -> list[str]:
    """Return the sorted list of registered proximity names."""
    return sorted(_REGISTRY)


def get_proximity(name: str, **kwargs: Any) -> ProximityMeasure:
    """Instantiate a proximity measure by registry name.

    Extra keyword arguments are forwarded to the measure's constructor, e.g.
    ``get_proximity("deepwalk", window_size=10)``.
    """
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise ProximityError(
            f"unknown proximity {name!r}; available: {', '.join(available_proximities())}"
        )
    return _REGISTRY[key](**kwargs)


def register_proximity(name: str, factory: Callable[..., ProximityMeasure]) -> None:
    """Register a custom proximity measure under ``name`` (overwrites existing)."""
    _REGISTRY[name.strip().lower()] = factory
