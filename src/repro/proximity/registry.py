"""Name-based registry of proximity measures.

Experiments reference proximities by name ("deepwalk", "degree", ...); this
registry maps those names to configured :class:`ProximityMeasure` instances.
:func:`compute_proximity` is the cached front door: it instantiates (or
accepts) a measure and routes the computation through a
:class:`~repro.proximity.cache.ProximityCache`, so sweeps that revisit the
same graph/measure combination never recompute the matrix.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from ..exceptions import ProximityError
from ..graph import Graph
from .base import ProximityMatrix, ProximityMeasure
from .cache import ProximityCache, default_proximity_cache
from .degree import DegreeProximity
from .first_order import (
    CommonNeighborsProximity,
    JaccardProximity,
    PreferentialAttachmentProximity,
)
from .high_order import DeepWalkProximity, KatzProximity, PersonalizedPageRankProximity
from .second_order import AdamicAdarProximity, ResourceAllocationProximity

__all__ = [
    "available_proximities",
    "get_proximity",
    "register_proximity",
    "compute_proximity",
]

_REGISTRY: dict[str, Callable[..., ProximityMeasure]] = {
    "common_neighbors": CommonNeighborsProximity,
    "preferential_attachment": PreferentialAttachmentProximity,
    "jaccard": JaccardProximity,
    "adamic_adar": AdamicAdarProximity,
    "resource_allocation": ResourceAllocationProximity,
    "katz": KatzProximity,
    "ppr": PersonalizedPageRankProximity,
    "deepwalk": DeepWalkProximity,
    "degree": DegreeProximity,
}


def available_proximities() -> list[str]:
    """Return the sorted list of registered proximity names."""
    return sorted(_REGISTRY)


def get_proximity(name: str, **kwargs: Any) -> ProximityMeasure:
    """Instantiate a proximity measure by registry name.

    Extra keyword arguments are forwarded to the measure's constructor, e.g.
    ``get_proximity("deepwalk", window_size=10)``.
    """
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise ProximityError(
            f"unknown proximity {name!r}; available: {', '.join(available_proximities())}"
        )
    return _REGISTRY[key](**kwargs)


def register_proximity(name: str, factory: Callable[..., ProximityMeasure]) -> None:
    """Register a custom proximity measure under ``name`` (overwrites existing)."""
    _REGISTRY[name.strip().lower()] = factory


def compute_proximity(
    measure: str | ProximityMeasure,
    graph: Graph,
    *,
    cache: ProximityCache | None = None,
    sparse: bool | None = None,
    **kwargs: Any,
) -> ProximityMatrix:
    """Compute a proximity matrix through the cache.

    ``measure`` is either a registry name (extra ``kwargs`` configure the
    measure, e.g. ``compute_proximity("deepwalk", g, window_size=10)``) or a
    ready :class:`ProximityMeasure` instance.  ``cache=None`` uses the
    process-wide default cache; pass an explicit :class:`ProximityCache` for
    disk persistence or isolation.
    """
    if isinstance(measure, ProximityMeasure):
        if kwargs:
            raise ProximityError(
                "keyword arguments are only accepted when measure is a registry name"
            )
    else:
        measure = get_proximity(measure, **kwargs)
    cache = default_proximity_cache() if cache is None else cache
    return cache.get_or_compute(measure, graph, sparse=sparse)
