"""Second-order proximity measures (two-hop neighbourhood heuristics).

Adamic–Adar and resource allocation both down-weight common neighbours by
(a function of) their degree; the paper lists them as the canonical
second-order structural features.  Both are weighted two-hop counts
``A diag(w) A`` and therefore share the sparse pattern of ``A @ A``.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..graph import Graph
from .base import ProximityMeasure

__all__ = ["AdamicAdarProximity", "ResourceAllocationProximity"]


class _DegreeWeightedTwoHop(ProximityMeasure):
    """Shared machinery for ``p_ij = Σ_{w ∈ N(i) ∩ N(j)} weight(d_w)``."""

    supports_sparse = True

    def _weights(self, degrees: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        adjacency = self._dense_adjacency(graph)
        weights = self._weights(adjacency.sum(axis=1))
        return (adjacency * weights[None, :]) @ adjacency

    def compute_sparse_matrix(self, graph: Graph) -> _sp.csr_matrix:
        adjacency = self._sparse_adjacency(graph)
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        weights = self._weights(degrees)
        return (adjacency @ _sp.diags(weights) @ adjacency).tocsr()


class AdamicAdarProximity(_DegreeWeightedTwoHop):
    """``p_ij = Σ_{w ∈ N(i) ∩ N(j)} 1 / log d_w``.

    Common neighbours with degree 1 contribute nothing (their ``log`` weight
    would be infinite); they are excluded, matching the standard convention.
    """

    name = "adamic_adar"

    def _weights(self, degrees: np.ndarray) -> np.ndarray:
        weights = np.zeros_like(degrees, dtype=float)
        mask = degrees > 1
        weights[mask] = 1.0 / np.log(degrees[mask])
        return weights


class ResourceAllocationProximity(_DegreeWeightedTwoHop):
    """``p_ij = Σ_{w ∈ N(i) ∩ N(j)} 1 / d_w`` (Zhou, Lü & Zhang 2009)."""

    name = "resource_allocation"

    def _weights(self, degrees: np.ndarray) -> np.ndarray:
        weights = np.zeros_like(degrees, dtype=float)
        mask = degrees > 0
        weights[mask] = 1.0 / degrees[mask]
        return weights
