"""Second-order proximity measures (two-hop neighbourhood heuristics).

Adamic–Adar and resource allocation both down-weight common neighbours by
(a function of) their degree; the paper lists them as the canonical
second-order structural features.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .base import ProximityMeasure

__all__ = ["AdamicAdarProximity", "ResourceAllocationProximity"]


class AdamicAdarProximity(ProximityMeasure):
    """``p_ij = Σ_{w ∈ N(i) ∩ N(j)} 1 / log d_w``.

    Common neighbours with degree 1 contribute nothing (their ``log`` weight
    would be infinite); they are excluded, matching the standard convention.
    """

    name = "adamic_adar"

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        adjacency = self._dense_adjacency(graph)
        degrees = adjacency.sum(axis=1)
        weights = np.zeros_like(degrees)
        mask = degrees > 1
        weights[mask] = 1.0 / np.log(degrees[mask])
        return (adjacency * weights[None, :]) @ adjacency


class ResourceAllocationProximity(ProximityMeasure):
    """``p_ij = Σ_{w ∈ N(i) ∩ N(j)} 1 / d_w`` (Zhou, Lü & Zhang 2009)."""

    name = "resource_allocation"

    def compute_matrix(self, graph: Graph) -> np.ndarray:
        adjacency = self._dense_adjacency(graph)
        degrees = adjacency.sum(axis=1)
        weights = np.zeros_like(degrees)
        mask = degrees > 0
        weights[mask] = 1.0 / degrees[mask]
        return (adjacency * weights[None, :]) @ adjacency
