"""Robustness layer: fault injection, retries, checkpoints, supervision.

Production-scale serving and training must degrade, not disintegrate, when
a worker dies, a disk hiccups, or an engine call wedges.  This package
holds the cross-cutting pieces:

* :mod:`repro.robustness.faults` — deterministic, seeded fault injection
  (:class:`FaultPlan` / ``REPRO_FAULTS``) behind named points instrumented
  in the hogwild workers, :func:`~repro.utils.fileio.atomic_write_path`,
  the serving engine, orchestrator cells, and the privacy ledger; a single
  inert branch when no plan is active.
* :mod:`repro.robustness.retry` — the shared :class:`RetryPolicy`
  (jittered exponential backoff from a seeded stream) used by the
  orchestrator's cell quarantine and the atomic-write publish step.
* :mod:`repro.robustness.checkpoint` — per-shard hogwild checkpoints and
  the :class:`SupervisorPolicy` that drives crash-restart supervision in
  :func:`~repro.engine.hogwild.run_hogwild`.

``faults`` and ``retry`` are dependency-light and imported eagerly;
``checkpoint`` (which needs the fileio layer) loads lazily so the fault
registry can be imported from anywhere — including ``utils.fileio`` itself
— without a cycle.
"""

from __future__ import annotations

from typing import Any

from .faults import (
    FAULT_POINTS,
    FaultPlan,
    FaultRule,
    get_active_plan,
    maybe_hit,
    parse_fault_spec,
    register_fault_point,
)
from .retry import RetryPolicy

__all__ = [
    "FAULT_POINTS",
    "CheckpointStore",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "ShardCheckpoint",
    "SupervisorPolicy",
    "get_active_plan",
    "maybe_hit",
    "parse_fault_spec",
    "register_fault_point",
]

_LAZY = {"CheckpointStore", "ShardCheckpoint", "SupervisorPolicy"}


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        from . import checkpoint as _checkpoint

        return getattr(_checkpoint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
