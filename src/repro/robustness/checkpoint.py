"""Per-shard hogwild checkpoints + the supervisor's restart policy.

The hogwild supervisor (:func:`~repro.engine.hogwild.run_hogwild` with a
:class:`SupervisorPolicy`) survives worker death by restarting the dead
shard from its last checkpoint.  A checkpoint is deliberately tiny — the
model weights live in the *parent's* shared-memory pages and survive the
worker; what a restarted incarnation needs is only:

* ``steps`` — how many of its shard-target steps the shard had completed
  (the resume offset, and the floor of any conservative privacy charge);
* ``rng_state`` — the worker's root ``bit_generator.state`` at the
  checkpoint, so the restarted incarnation continues a *deterministic*
  stream (a continuation, not a bit-replay of the lost steps — hogwild is
  reproducible in distribution, not bitwise);
* ``losses`` — the cumulative loss trace up to the checkpoint, so the
  merged run-level curve keeps its shape;
* ``accountant_steps`` — the mechanism-invocation count the checkpoint
  vouches for (equals ``steps``; recorded explicitly because privacy
  accounting must never be inferred from a field with looser semantics).

Checkpoints are written with :func:`~repro.utils.fileio.atomic_write_path`
— a crash mid-checkpoint leaves the previous checkpoint intact, never a
torn one — and a checkpoint that fails verification on load is treated as
absent (the supervisor then conservatively resumes from the older state and
over-charges the privacy accountant, which is the safe direction).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..exceptions import ConfigurationError
from ..utils.fileio import atomic_write_path, tmp_file_pattern
from ..utils.logging import get_logger

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointStore",
    "ShardCheckpoint",
    "SupervisorPolicy",
]

_LOGGER = get_logger("robustness.checkpoint")

CHECKPOINT_FORMAT = "repro.hogwild.checkpoint"
CHECKPOINT_VERSION = 1


@dataclass
class ShardCheckpoint:
    """Resume state of one hogwild shard at a step boundary."""

    shard: int
    steps: int
    incarnation: int
    rng_state: dict[str, Any]
    losses: list[float] = field(default_factory=list)
    accountant_steps: int = -1

    def __post_init__(self) -> None:
        if self.accountant_steps < 0:
            self.accountant_steps = self.steps

    def to_payload(self) -> dict[str, Any]:
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "shard": int(self.shard),
            "steps": int(self.steps),
            "incarnation": int(self.incarnation),
            "rng_state": self.rng_state,
            "losses": [float(loss) for loss in self.losses],
            "accountant_steps": int(self.accountant_steps),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ShardCheckpoint":
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise ValueError("not a hogwild checkpoint (missing format marker)")
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version {payload.get('version')!r}")
        return cls(
            shard=int(payload["shard"]),
            steps=int(payload["steps"]),
            incarnation=int(payload["incarnation"]),
            rng_state=dict(payload["rng_state"]),
            losses=[float(loss) for loss in payload.get("losses", [])],
            accountant_steps=int(payload.get("accountant_steps", payload["steps"])),
        )


class CheckpointStore:
    """One directory of ``shard-NNNN.json`` checkpoints for a single run.

    Checkpoints are intra-run crash recovery, not cross-run state: the
    supervisor clears the directory at run start so a stale file from an
    earlier run can never masquerade as progress.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, shard: int) -> Path:
        return self.directory / f"shard-{int(shard):04d}.json"

    def save(self, checkpoint: ShardCheckpoint) -> Path:
        path = self.path_for(checkpoint.shard)
        with atomic_write_path(path) as tmp_path:
            tmp_path.write_text(json.dumps(checkpoint.to_payload(), sort_keys=True))
        return path

    def load(self, shard: int) -> ShardCheckpoint | None:
        """The shard's checkpoint, or ``None`` (missing *or* unreadable).

        Corruption degrades to "no checkpoint": the supervisor restarts
        from older state and over-charges the accountant — conservative,
        never silently optimistic.
        """
        path = self.path_for(shard)
        try:
            payload = json.loads(path.read_text())
            return ShardCheckpoint.from_payload(payload)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:  # repro-lint: disable=RETRY001 -- a checkpoint that cannot be read is treated as absent by design: the supervisor resumes from older state and over-charges the accountant, which is the conservative direction; retrying would delay the restart for no safety gain
            _LOGGER.warning(
                "ignoring unreadable checkpoint %s (%s); resuming conservatively",
                path,
                exc,
            )
            return None

    def clear(self) -> None:
        """Remove every checkpoint (and orphaned temp file) in the directory."""
        orphan = tmp_file_pattern(r"shard-\d{4}", ".json")
        for path in self.directory.glob("*.json"):
            if path.name.startswith("shard-") or orphan.fullmatch(path.name):
                path.unlink(missing_ok=True)
        for path in self.directory.glob(".shard-*.json"):
            path.unlink(missing_ok=True)


@dataclass(frozen=True)
class SupervisorPolicy:
    """How :func:`~repro.engine.hogwild.run_hogwild` supervises its workers.

    Parameters
    ----------
    max_restarts:
        Restarts allowed *per shard* before the shard is declared lost and
        the run degrades to a partial-result
        :class:`~repro.exceptions.HogwildDegradedError`.
    backoff_base / backoff_max:
        Exponential restart backoff per shard: the first restart waits
        ``backoff_base`` seconds, each further one doubles, capped.
    checkpoint_every:
        Steps between per-shard checkpoints (``0`` disables checkpointing;
        dead shards then restart from step 0 and the whole shard target is
        re-charged).
    checkpoint_dir:
        Directory for the checkpoint files.  ``None`` (default) uses a
        private temporary directory removed when the run ends.
    worker_timeout:
        Seconds a worker may run without completing before the supervisor
        declares it stalled, kills it, and treats it as a crash.  ``None``
        disables stall detection.
    """

    max_restarts: int = 2
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    checkpoint_every: int = 25
    checkpoint_dir: str | Path | None = None
    worker_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.worker_timeout is not None and self.worker_timeout <= 0:
            raise ConfigurationError(
                f"worker_timeout must be positive, got {self.worker_timeout}"
            )
