"""Deterministic, seeded fault injection for chaos testing.

Every long-running subsystem (hogwild workers, the file-publication path,
the serving engine, orchestrator cells, the privacy ledger) carries a named
*fault point*: a single ``plan.hit(point, **context)`` call that is reached
on the normal code path but does nothing unless a :class:`FaultPlan` is
active.  The PR-5 profiler idiom applies — when no plan is active the check
is one ``is None`` branch (or, on the hogwild hot path, an engine hook that
is never even installed), so the instrumented paths stay bit-identical to
the uninstrumented ones.

A plan is a list of :class:`FaultRule` records.  Each rule names the point
it arms, the ``action`` to take (``"crash"`` — ``os._exit``; ``"stall"`` /
``"slow"`` — sleep ``delay`` seconds; ``"raise"`` — raise ``exception``),
a ``where`` filter matched against the hit's context (string values match
by substring — handy for paths — everything else by equality), and
``times``: how often the rule may fire in this process (``-1`` =
unlimited).  Activation is either lexical::

    plan = FaultPlan([FaultRule("hogwild.worker.step", "crash",
                                where={"shard": 0, "step": 3, "incarnation": 0})])
    with plan:
        trainer.fit(graph)
    assert plan.fired_total == 1

or environmental, for subprocess drills — ``REPRO_FAULTS`` holds
``;``-separated rules of the form ``point:action[:key=value,key=value...]``
(the reserved keys ``times``, ``delay`` and ``exception`` configure the
rule itself; everything else goes into ``where``)::

    REPRO_FAULTS="ledger.append:crash" python append_entries.py

Forked children inherit the active plan (both forms), with *fresh-by-copy*
per-rule counters: a worker that crashes at step 3 would crash again after
a supervisor restart, which is why crash rules should pin
``incarnation=0``.  Rules are deterministic by construction — they fire on
exact counts and context matches, never on coin flips — so every chaos
test replays identically.
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Any

from ..exceptions import ConfigurationError

__all__ = [
    "FAULT_POINTS",
    "FaultPlan",
    "FaultRule",
    "get_active_plan",
    "maybe_hit",
    "parse_fault_spec",
    "register_fault_point",
]

#: exit code used by the ``crash`` action, distinct from common failures
CRASH_EXIT_CODE = 70

#: registry of instrumented fault points: name -> human description.
#: The chaos suite iterates this to prove every point both fires and stays
#: inert, so adding a point without test coverage fails a completeness pin.
FAULT_POINTS: dict[str, str] = {}

_ACTIONS = ("crash", "stall", "slow", "raise")

#: exceptions the ``raise`` action may produce, by name (an allowlist keeps
#: the env spec from becoming an arbitrary-code channel)
_EXCEPTIONS: dict[str, type[BaseException]] = {
    "OSError": OSError,
    "ConnectionError": ConnectionError,
    "TimeoutError": TimeoutError,
    "MemoryError": MemoryError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
}


def register_fault_point(name: str, description: str) -> str:
    """Declare an instrumented fault point (idempotent; returns ``name``)."""
    FAULT_POINTS[name] = description
    return name


@dataclass(frozen=True)
class FaultRule:
    """One armed fault: where it triggers and what it does."""

    point: str
    action: str
    where: tuple[tuple[str, Any], ...] = ()
    #: times the rule may fire in this process; -1 = unlimited
    times: int = 1
    #: stall/slow sleep in seconds
    delay: float = 0.05
    #: exception name for the ``raise`` action (see the module allowlist)
    exception: str = "OSError"

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; known: {_ACTIONS}"
            )
        if self.action == "raise" and self.exception not in _EXCEPTIONS:
            raise ConfigurationError(
                f"unknown fault exception {self.exception!r}; known: "
                f"{sorted(_EXCEPTIONS)}"
            )
        if self.delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {self.delay}")
        if isinstance(self.where, Mapping):  # accept dicts at construction
            object.__setattr__(self, "where", tuple(sorted(self.where.items())))

    def matches(self, point: str, context: Mapping[str, Any]) -> bool:
        if point != self.point:
            return False
        for key, expected in self.where:
            if key not in context:
                return False
            actual = context[key]
            if isinstance(expected, str) and isinstance(actual, str):
                if expected not in actual:  # substring: paths, metric names
                    return False
            elif actual != expected:
                return False
        return True

    def execute(self, point: str) -> None:
        if self.action == "crash":
            os._exit(CRASH_EXIT_CODE)
        if self.action in ("stall", "slow"):
            time.sleep(self.delay)
            return
        raise _EXCEPTIONS[self.exception](
            f"injected fault at {point} ({self.exception})"
        )


class FaultPlan:
    """An activatable set of fault rules with per-rule firing counters."""

    def __init__(self, rules: Iterable[FaultRule | Mapping[str, Any]] = ()) -> None:
        self.rules: list[FaultRule] = []
        for rule in rules:
            if isinstance(rule, Mapping):
                rule = FaultRule(**rule)
            self.rules.append(rule)
        self.fired: list[int] = [0] * len(self.rules)

    # ------------------------------------------------------------------ #
    @property
    def fired_total(self) -> int:
        return sum(self.fired)

    def hit(self, point: str, **context: Any) -> None:
        """Evaluate one fault point crossing; may sleep, raise, or exit."""
        for index, rule in enumerate(self.rules):
            if rule.times >= 0 and self.fired[index] >= rule.times:
                continue
            if not rule.matches(point, context):
                continue
            self.fired[index] += 1
            rule.execute(point)

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "FaultPlan":
        global _ACTIVE
        if get_active_plan() is not None:
            raise ConfigurationError(
                "a fault plan is already active; plans do not nest"
            )
        _ACTIVE = self
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        _ACTIVE = None

    def __repr__(self) -> str:
        return f"FaultPlan(rules={len(self.rules)}, fired={self.fired_total})"


# --------------------------------------------------------------------- #
# activation
# --------------------------------------------------------------------- #
_ACTIVE: FaultPlan | None = None
_ENV_CHECKED = False


def _coerce(value: str) -> Any:
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` rule string into a :class:`FaultPlan`."""
    rules: list[FaultRule] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":", 2)
        if len(parts) < 2:
            raise ConfigurationError(
                f"malformed fault rule {chunk!r}; expected "
                "'point:action[:key=value,...]'"
            )
        point, action = parts[0].strip(), parts[1].strip()
        where: dict[str, Any] = {}
        extras: dict[str, Any] = {}
        if len(parts) == 3 and parts[2].strip():
            for pair in parts[2].split(","):
                if "=" not in pair:
                    raise ConfigurationError(
                        f"malformed fault rule field {pair!r} in {chunk!r}"
                    )
                key, value = pair.split("=", 1)
                key = key.strip()
                if key == "times":
                    extras["times"] = int(value)
                elif key == "delay":
                    extras["delay"] = float(value)
                elif key == "exception":
                    extras["exception"] = value.strip()
                else:
                    where[key] = _coerce(value.strip())
        rules.append(FaultRule(point=point, action=action, where=where, **extras))
    return FaultPlan(rules)


def get_active_plan() -> FaultPlan | None:
    """The currently active plan, if any (env spec parsed lazily, once)."""
    global _ACTIVE, _ENV_CHECKED
    if _ACTIVE is not None:
        return _ACTIVE
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        spec = os.environ.get("REPRO_FAULTS", "").strip()
        if spec:
            _ACTIVE = parse_fault_spec(spec)
    return _ACTIVE


def maybe_hit(point: str, **context: Any) -> None:
    """One-branch fault check for non-hot-path call sites."""
    plan = get_active_plan()
    if plan is not None:
        plan.hit(point, **context)


# --------------------------------------------------------------------- #
# the instrumented points (declared centrally so the chaos suite can pin
# that every one of them both fires under a plan and stays inert without)
# --------------------------------------------------------------------- #
register_fault_point(
    "hogwild.worker.step",
    "before each hogwild worker step; context: shard, step (global, "
    "resume-offset included), incarnation",
)
register_fault_point(
    "fileio.atomic_write",
    "at atomic_write_path's publish (os.replace); context: path",
)
register_fault_point(
    "serving.engine.query",
    "at QueryEngine.top_k entry after validation; context: k, metric, batch",
)
register_fault_point(
    "orchestrator.cell",
    "at run_spec cell execution; context: kind, method, dataset",
)
register_fault_point(
    "ledger.append",
    "mid-append, after the head of the record line is flushed; context: path",
)
