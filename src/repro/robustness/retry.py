"""Shared retry policy: jittered exponential backoff from a seeded stream.

Transient faults (a disk hiccup during :func:`~repro.utils.fileio.atomic_write_path`'s
publish, an OOM-killed orchestrator child) deserve a bounded number of
re-attempts; deterministic faults deserve to fail fast.  :class:`RetryPolicy`
is the one definition of that split used across the codebase — the
orchestrator quarantines poison cells through it, and the file-publication
path retries its ``os.replace`` through it.

The backoff jitter is drawn from a *seeded* numpy stream, so a retried run
is reproducible: the same policy retries the same failure with the same
pauses every time.  The policy is a frozen, picklable dataclass — it can
ride a ``ProcessPoolExecutor`` dispatch unchanged.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any, TypeVar

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["RetryPolicy"]

_T = TypeVar("_T")


@dataclass(frozen=True)
class RetryPolicy:
    """Classify retryable failures and pace the re-attempts.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (``1`` disables retrying).
    base_delay / multiplier / max_delay:
        Exponential backoff: attempt ``i`` waits about
        ``base_delay * multiplier**(i-1)``, capped at ``max_delay``.
    jitter:
        Each pause is scaled by a uniform draw from
        ``[1 - jitter, 1 + jitter]`` (``0`` = fully deterministic pacing).
    retryable:
        Exception classes worth re-attempting.  Anything else propagates
        immediately.
    seed:
        Seed of the jitter stream (reproducible backoff sequences).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    retryable: tuple[type[BaseException], ...] = (OSError,)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be >= 0")
        if self.multiplier < 1:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0 <= self.jitter <= 1:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    # ------------------------------------------------------------------ #
    def is_retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is one of the transient classes worth retrying."""
        return isinstance(exc, self.retryable)

    def delays(self) -> Iterator[float]:
        """The jittered pause before each re-attempt, in order."""
        rng = np.random.default_rng(self.seed)
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            scale = 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
            yield min(delay * scale, self.max_delay)
            delay = min(delay * self.multiplier, self.max_delay)

    def call(
        self,
        fn: Callable[[], _T],
        *,
        sleep: Callable[[float], Any] = time.sleep,
        on_retry: Callable[[int, BaseException, float], None] | None = None,
    ) -> _T:
        """Run ``fn`` under the policy; raises the final failure unchanged.

        ``on_retry(attempt, exc, pause)`` is invoked before each backoff
        sleep (logging, counters); ``sleep`` is injectable for tests.
        """
        pauses = self.delays()
        attempt = 1
        while True:
            try:
                return fn()
            except BaseException as exc:
                if not self.is_retryable(exc) or attempt >= self.max_attempts:
                    raise
                pause = next(pauses)
                if on_retry is not None:
                    on_retry(attempt, exc, pause)
                sleep(pause)
                attempt += 1
