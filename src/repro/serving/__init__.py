"""Online serving layer: zero-copy model store + batched query engine.

Training produces an archival ``.npz`` artifact; serving wants the same
model as a read-only, query-optimized object.  This package is that
split (the ensmallen/embiggen training-vs-serving shape):

* :mod:`repro.serving.store` — export a fitted model once
  (:func:`export_servable`), then :meth:`ServableModel.open` maps the
  embedding blocks with ``mmap_mode="r"`` so N readers share one
  page-cache copy and opening allocates O(metadata), not O(|V| · r);
* :mod:`repro.serving.engine` — :class:`QueryEngine` answers batched
  ``top_k`` / ``score_links`` queries through a preallocated float32
  :class:`QueryWorkspace` (blocked matmul + packed-key partition,
  deterministic tie-break);
* :mod:`repro.serving.server` — :class:`BatchingServer` coalesces
  concurrent single-node asyncio requests into vectorized engine calls
  under a max-latency / max-batch window;
* :mod:`repro.serving.profiler` — :class:`QueryProfiler` records
  gather / matmul / partition phase time per query.

>>> from repro.serving import ServableModel, BatchingServer, export_servable
>>> export_servable("model.npz", "model.servable")
>>> servable = ServableModel.open("model.servable")
>>> engine = servable.query_engine()
>>> engine.top_k([42], k=10).ids
"""

from .engine import METRICS, QueryEngine, QueryWorkspace, TopKResult
from .profiler import QUERY_PHASES, QueryProfiler
from .server import BatchingServer, ServerStats
from .store import (
    SERVABLE_FORMAT,
    SERVABLE_VERSION,
    ServableModel,
    export_servable,
    write_servable,
)

__all__ = [
    "BatchingServer",
    "METRICS",
    "QUERY_PHASES",
    "QueryEngine",
    "QueryProfiler",
    "QueryWorkspace",
    "SERVABLE_FORMAT",
    "SERVABLE_VERSION",
    "ServableModel",
    "ServerStats",
    "TopKResult",
    "export_servable",
    "write_servable",
]
