"""Vectorized batched top-k queries over a (possibly memory-mapped) matrix.

The serving counterpart of the training fast path: where
:class:`~repro.engine.workspace.StepWorkspace` preallocates every per-step
training array, :class:`QueryWorkspace` preallocates every per-query array —
the gather staging block, the float32 query block, the candidate-block
staging buffer, the score block and the packed ranking keys — so a steady
stream of ``top_k`` calls performs no array-sized allocations proportional
to the corpus.  The scan is *blocked*: candidates are scored
``block_rows`` at a time through one ``matmul`` into a reused score
buffer, so a 1M × 128 corpus never materializes more than a fixed-size
score block regardless of the batch size.

Ranking is done on packed 64-bit keys.  A finite float32 score maps to a
monotone 32-bit pattern (the classic sign-flip trick: flip the sign bit of
non-negative floats, complement negative ones), which is complemented into
a *descending* rank and packed with the candidate node id::

    key = (0xFFFFFFFF - ordered(score)) << 32 | node_id

Ascending ``argpartition`` over keys is then exactly "descending score,
ties broken by ascending node id" — the tie-break is deterministic *by
construction*, chunking cannot change it, and both the score and the id
are recovered from the key afterwards (the mapping is a bijection on
float32 bit patterns).  ``compute_dtype="float64"`` selects a chunked
reference path (stable argsort merge, same tie-break contract) used to pin
float32 score parity at rtol ≤ 1e-4, mirroring the PR-5 training-dtype
policy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..analysis.markers import zero_alloc
from ..engine.workspace import resolve_compute_dtype
from ..exceptions import ConfigurationError
from ..robustness.faults import maybe_hit

__all__ = ["QueryEngine", "QueryWorkspace", "TopKResult"]

#: metrics top_k understands; "dot" is what skip-gram optimises (and what
#: Theorem 3 aligns with the proximity), "cosine" normalises away row norms.
METRICS = ("cosine", "dot")

#: sentinel ranking key, greater than every real packed key (real keys top
#: out at inv=0xFFFFFFFF with id <= num_nodes - 1 < 2**32 - 1)
_KEY_SENTINEL = np.uint64(0xFFFFFFFFFFFFFFFF)
_U32_MAX = np.uint32(0xFFFFFFFF)
_U32_SIGN = np.uint32(0x80000000)
_U32_LOW = np.uint32(0x7FFFFFFF)

#: floor applied to row norms so cosine never divides by zero
_NORM_FLOOR = 1e-12


@dataclass(frozen=True)
class TopKResult:
    """Batched top-k answer: row ``i`` answers query node ``nodes[i]``.

    ``ids[i]`` holds the ``k`` best candidate node ids in descending score
    order (ties: ascending id); ``scores[i]`` the matching similarity
    scores.  Both arrays are freshly allocated — they stay valid after the
    engine's workspace is reused by the next call.
    """

    ids: np.ndarray
    scores: np.ndarray

    @property
    def k(self) -> int:
        """Neighbours returned per query (may be less than requested ``k``)."""
        return int(self.ids.shape[1])


@zero_alloc
def _pack_keys_inplace(scores_u32: np.ndarray, mask: np.ndarray, keys: np.ndarray,
                       block_ids: np.ndarray) -> None:
    """Pack a float32 score block (viewed as uint32) into ranking keys.

    Everything runs through ``out=`` ufuncs into the workspace buffers:
    ``mask`` is clobbered as scratch, ``keys`` receives the packed result.
    """
    np.right_shift(scores_u32, np.uint32(31), out=mask)
    np.multiply(mask, _U32_LOW, out=mask)
    np.add(mask, _U32_SIGN, out=mask)
    np.bitwise_xor(scores_u32, mask, out=mask)      # ascending with the float
    np.subtract(_U32_MAX, mask, out=mask)           # descending rank
    np.copyto(keys, mask, casting="safe")
    np.left_shift(keys, np.uint64(32), out=keys)
    np.bitwise_or(keys, block_ids, out=keys)


def _unpack_keys(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Recover ``(ids, float32 scores)`` from packed ranking keys."""
    ids = (keys & np.uint64(0xFFFFFFFF)).astype(np.int64)
    inv = (keys >> np.uint64(32)).astype(np.uint32)
    ordered = _U32_MAX - inv
    xor_mask = np.where(ordered < _U32_SIGN, _U32_MAX, _U32_SIGN)
    scores = (ordered ^ xor_mask).view(np.float32)
    return ids, scores


class QueryWorkspace:
    """Every per-query array of the serving fast path, allocated once.

    Mirrors :class:`~repro.engine.workspace.StepWorkspace`: buffers are
    sized by the engine geometry (``max_batch`` queries × ``block_rows``
    candidates × ``max_k`` results) and reused by every ``top_k`` /
    ``score_links`` call.  Float32 geometry adds the uint32/uint64 key
    buffers of the packed ranking path; the float64 reference path only
    needs the staging and score blocks.
    """

    def __init__(self, *, max_batch: int, max_k: int, block_rows: int, dim: int,
                 source_dtype, dtype=np.float32) -> None:
        self.max_batch = int(max_batch)
        self.max_k = int(max_k)
        self.block_rows = int(block_rows)
        self.dim = int(dim)
        self.dtype = resolve_compute_dtype(dtype)
        B, K, W, d = self.max_batch, self.max_k, self.block_rows, self.dim

        # ---- query gather + cast staging ----
        self.gather = np.zeros((B, d), dtype=source_dtype)
        self.queries = np.zeros((B, d), dtype=self.dtype)
        self.query_norms = np.ones((B, 1), dtype=self.dtype)

        # ---- blocked candidate scan ----
        # zero-initialised: the tail of the last (partial) block is still
        # fed through the matmul, so stale bits must at least be finite
        self.block = np.zeros((W, d), dtype=self.dtype)
        self.scores = np.zeros((B, W), dtype=self.dtype)

        if self.dtype == np.dtype(np.float32):
            # ---- packed-key ranking buffers (float32 fast path only) ----
            self.scores_u32 = self.scores.view(np.uint32)
            self.mask_u32 = np.empty((B, W), dtype=np.uint32)
            self.keys = np.empty((B, W), dtype=np.uint64)
            self.top = np.empty((B, K), dtype=np.uint64)
            self.combined = np.empty((B, K + W), dtype=np.uint64)
            self.block_ids = np.empty(W, dtype=np.uint64)
            self.arange = np.arange(W, dtype=np.uint64)

        # ---- link-scoring buffers ----
        self.link_left_raw = np.zeros((B, d), dtype=source_dtype)
        self.link_right_raw = np.zeros((B, d), dtype=source_dtype)
        self.link_left = np.zeros((B, d), dtype=self.dtype)
        self.link_right = np.zeros((B, d), dtype=self.dtype)
        self.link_scores = np.zeros(B, dtype=self.dtype)

    def __repr__(self) -> str:
        return (
            f"QueryWorkspace(max_batch={self.max_batch}, max_k={self.max_k}, "
            f"block_rows={self.block_rows}, dim={self.dim}, dtype={self.dtype.name})"
        )


class QueryEngine:
    """Batched nearest-neighbour and link-scoring queries over embeddings.

    Parameters
    ----------
    embeddings:
        ``|V| × r`` matrix — an in-memory array or the ``np.memmap`` a
        :class:`~repro.serving.store.ServableModel` hands out (the engine
        never copies it; blocks are staged through the workspace).
    context_embeddings:
        Optional ``W_out`` matrix, kept for completeness (same shape).
    max_batch:
        Most queries scored per internal scan; longer batches are served
        in ``max_batch`` slices through the same workspace.
    max_k:
        Largest ``k`` a ``top_k`` call may request (bounds the merge
        buffers).  Defaults to ``min(|V|, 128)``.
    block_rows:
        Candidate rows scored per matmul block.  Bounds peak memory at
        ``O(max_batch × block_rows)`` independent of ``|V|``.  Defaults to
        ``min(|V|, 8192)``.
    compute_dtype:
        ``"float32"`` (default, packed-key fast path) or ``"float64"``
        (chunked reference path with identical tie-break semantics).
    profiler:
        Optional :class:`~repro.serving.profiler.QueryProfiler`; when
        installed, ``top_k`` records gather / matmul / partition phase
        wall time (one ``is None`` branch otherwise).
    """

    def __init__(self, embeddings, *, context_embeddings=None, max_batch: int = 64,
                 max_k: int | None = None, block_rows: int | None = None,
                 compute_dtype="float32", profiler=None) -> None:
        if not hasattr(embeddings, "ndim") or embeddings.ndim != 2:
            raise ConfigurationError(
                "QueryEngine expects a 2-D embedding matrix, got "
                f"{getattr(embeddings, 'shape', type(embeddings).__name__)}"
            )
        n, dim = embeddings.shape
        if n < 1 or dim < 1:
            raise ConfigurationError(f"embedding matrix must be non-empty, got shape {(n, dim)}")
        if embeddings.dtype.kind != "f":
            raise ConfigurationError(
                f"embeddings must be a float matrix, got dtype {embeddings.dtype}"
            )
        if n >= 2**32 - 1:
            raise ConfigurationError(
                "packed ranking keys address at most 2**32 - 2 nodes; "
                f"got {n} rows"
            )
        if context_embeddings is not None and context_embeddings.shape != embeddings.shape:
            raise ConfigurationError(
                f"context embeddings shape {context_embeddings.shape} does not match "
                f"embeddings {embeddings.shape}"
            )
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        self._emb = embeddings
        self._context = context_embeddings
        self.num_nodes = int(n)
        self.embedding_dim = int(dim)
        self.max_batch = int(max_batch)
        self.max_k = int(max_k) if max_k is not None else min(self.num_nodes, 128)
        if self.max_k < 1:
            raise ConfigurationError(f"max_k must be >= 1, got {self.max_k}")
        self.max_k = min(self.max_k, self.num_nodes)
        self.block_rows = int(block_rows) if block_rows is not None else min(self.num_nodes, 8192)
        if self.block_rows < 1:
            raise ConfigurationError(f"block_rows must be >= 1, got {self.block_rows}")
        self.compute_dtype = resolve_compute_dtype(compute_dtype)
        self.profiler = profiler
        self._norms: np.ndarray | None = None
        self.workspace = QueryWorkspace(
            max_batch=self.max_batch, max_k=self.max_k, block_rows=self.block_rows,
            dim=self.embedding_dim, source_dtype=self._emb.dtype, dtype=self.compute_dtype,
        )

    # ------------------------------------------------------------------ #
    @property
    def embeddings(self) -> np.ndarray:
        """The served matrix (zero-copy view of whatever was handed in)."""
        return self._emb

    def _ensure_norms(self) -> np.ndarray:
        """Precompute (once) the clamped row L2 norms in the compute dtype.

        Computed blockwise through the staging buffer so the scan never
        materializes more than one candidate block, even on a memmapped
        million-row matrix.
        """
        if self._norms is None:
            norms = np.empty(self.num_nodes, dtype=self.compute_dtype)
            block = self.workspace.block
            for start in range(0, self.num_nodes, self.block_rows):
                stop = min(start + self.block_rows, self.num_nodes)
                nb = stop - start
                np.copyto(block[:nb], self._emb[start:stop], casting="same_kind")
                np.einsum("ij,ij->i", block[:nb], block[:nb], out=norms[start:stop])
            np.sqrt(norms, out=norms)
            np.maximum(norms, self.compute_dtype.type(_NORM_FLOOR), out=norms)
            self._norms = norms
        return self._norms

    def _validate_nodes(self, nodes, *, name: str = "nodes") -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.ndim != 1:
            raise ConfigurationError(f"{name} must be a 1-D sequence of node ids")
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise ConfigurationError(
                f"{name} contains ids outside [0, {self.num_nodes}): "
                f"min={nodes.min()}, max={nodes.max()}"
            )
        return nodes

    # ------------------------------------------------------------------ #
    def top_k(self, nodes, k: int, *, metric: str = "cosine",
              exclude_self: bool = True) -> TopKResult:
        """Best ``k`` candidates for each query node, by descending score.

        ``k`` is clamped to the number of eligible candidates
        (``|V| - 1`` when ``exclude_self``), so ``k >= |V|`` asks for the
        full ranking.  Ties are broken by ascending node id — the order is
        identical whatever ``block_rows`` or batch slicing is in effect.
        Duplicate query ids are answered independently.
        """
        nodes = self._validate_nodes(nodes)
        if int(k) < 0:
            raise ConfigurationError(f"k must be >= 0, got {k}")
        if metric not in METRICS:
            raise ConfigurationError(f"unknown metric {metric!r}; available: {METRICS}")
        maybe_hit(
            "serving.engine.query", k=int(k), metric=metric, batch=int(nodes.size)
        )
        k_eff = min(int(k), self.num_nodes - 1 if exclude_self else self.num_nodes)
        k_eff = max(k_eff, 0)
        if k_eff == 0 or nodes.size == 0:
            return TopKResult(
                ids=np.empty((nodes.size, k_eff), dtype=np.int64),
                scores=np.empty((nodes.size, k_eff), dtype=self.compute_dtype),
            )
        if k_eff > self.max_k:
            raise ConfigurationError(
                f"k={k} needs {k_eff} results but this engine was built with "
                f"max_k={self.max_k}; construct QueryEngine(..., max_k={k_eff})"
            )
        chunks = []
        for start in range(0, nodes.size, self.max_batch):
            batch = nodes[start:start + self.max_batch]
            if self.compute_dtype == np.dtype(np.float32):
                chunks.append(self._topk_batch_f32(batch, k_eff, metric, exclude_self))
            else:
                chunks.append(self._topk_batch_f64(batch, k_eff, metric, exclude_self))
        if self.profiler is not None:
            self.profiler.add_queries(nodes.size)
        if len(chunks) == 1:
            ids, scores = chunks[0]
        else:
            ids = np.concatenate([c[0] for c in chunks], axis=0)
            scores = np.concatenate([c[1] for c in chunks], axis=0)
        return TopKResult(ids=ids, scores=scores)

    # ------------------------------------------------------------------ #
    def _topk_batch_f32(self, nodes: np.ndarray, k: int, metric: str,
                        exclude_self: bool) -> tuple[np.ndarray, np.ndarray]:
        ws = self.workspace
        prof = self.profiler
        B = nodes.size
        W = self.block_rows

        tick = time.perf_counter() if prof is not None else 0.0
        norms = self._ensure_norms() if metric == "cosine" else None
        np.take(self._emb, nodes, axis=0, out=ws.gather[:B])
        np.copyto(ws.queries[:B], ws.gather[:B], casting="same_kind")
        if norms is not None:
            np.take(norms, nodes, out=ws.query_norms[:B, 0])
        if prof is not None:
            prof.record("gather", time.perf_counter() - tick)

        matmul_seconds = 0.0
        partition_seconds = 0.0
        top = ws.top[:B, :k]
        top.fill(_KEY_SENTINEL)
        combined = ws.combined[:B, :k + W]
        for start in range(0, self.num_nodes, W):
            stop = min(start + W, self.num_nodes)
            nb = stop - start

            tick = time.perf_counter() if prof is not None else 0.0
            np.copyto(ws.block[:nb], self._emb[start:stop], casting="same_kind")
            np.matmul(ws.queries[:B], ws.block.T, out=ws.scores[:B])
            if norms is not None:
                np.divide(ws.scores[:B, :nb], norms[start:stop], out=ws.scores[:B, :nb])
                np.divide(ws.scores[:B, :nb], ws.query_norms[:B], out=ws.scores[:B, :nb])
            if prof is not None:
                now = time.perf_counter()
                matmul_seconds += now - tick
                tick = now

            np.add(ws.arange, np.uint64(start), out=ws.block_ids)
            keys = ws.keys[:B]
            _pack_keys_inplace(ws.scores_u32[:B], ws.mask_u32[:B], keys, ws.block_ids)
            if nb < W:
                keys[:, nb:] = _KEY_SENTINEL
            if exclude_self:
                here = np.flatnonzero((nodes >= start) & (nodes < stop))
                if here.size:
                    keys[here, nodes[here] - start] = _KEY_SENTINEL
            combined[:, :k] = top
            combined[:, k:] = keys
            part = np.argpartition(combined, k - 1, axis=1)[:, :k]
            top[:, :] = np.take_along_axis(combined, part, axis=1)
            if prof is not None:
                partition_seconds += time.perf_counter() - tick

        tick = time.perf_counter() if prof is not None else 0.0
        ids, scores = _unpack_keys(np.sort(top, axis=1))
        if prof is not None:
            partition_seconds += time.perf_counter() - tick
            prof.record("matmul", matmul_seconds)
            prof.record("partition", partition_seconds)
        return ids, scores

    def _topk_batch_f64(self, nodes: np.ndarray, k: int, metric: str,
                        exclude_self: bool) -> tuple[np.ndarray, np.ndarray]:
        """Chunked float64 reference ranking (same tie-break contract).

        Blocks are scanned in ascending id order and merged with a *stable*
        argsort on the negated scores: every id in the running top list
        precedes every id of the current block and (inductively) ties
        within the list are already id-ascending, so stable appearance
        order equals "descending score, ascending id" — the same contract
        the packed keys enforce, without the 32-bit packing.
        """
        prof = self.profiler
        B = nodes.size

        tick = time.perf_counter() if prof is not None else 0.0
        norms = self._ensure_norms() if metric == "cosine" else None
        queries = np.asarray(self._emb[nodes], dtype=np.float64)
        query_norms = norms[nodes][:, None] if norms is not None else None
        if prof is not None:
            prof.record("gather", time.perf_counter() - tick)

        matmul_seconds = 0.0
        partition_seconds = 0.0
        top_scores = np.empty((B, 0), dtype=np.float64)
        top_ids = np.empty((B, 0), dtype=np.int64)
        for start in range(0, self.num_nodes, self.block_rows):
            stop = min(start + self.block_rows, self.num_nodes)

            tick = time.perf_counter() if prof is not None else 0.0
            block = np.asarray(self._emb[start:stop], dtype=np.float64)
            scores = queries @ block.T
            if norms is not None:
                scores /= norms[start:stop]
                scores /= query_norms
            if exclude_self:
                here = np.flatnonzero((nodes >= start) & (nodes < stop))
                if here.size:
                    scores[here, nodes[here] - start] = -np.inf
            if prof is not None:
                now = time.perf_counter()
                matmul_seconds += now - tick
                tick = now

            ids = np.broadcast_to(np.arange(start, stop, dtype=np.int64), scores.shape)
            merged_scores = np.concatenate([top_scores, scores], axis=1)
            merged_ids = np.concatenate([top_ids, ids], axis=1)
            order = np.argsort(-merged_scores, axis=1, kind="stable")[:, :k]
            top_scores = np.take_along_axis(merged_scores, order, axis=1)
            top_ids = np.take_along_axis(merged_ids, order, axis=1)
            if prof is not None:
                partition_seconds += time.perf_counter() - tick
        if prof is not None:
            prof.record("matmul", matmul_seconds)
            prof.record("partition", partition_seconds)
        return top_ids, top_scores

    # ------------------------------------------------------------------ #
    @zero_alloc
    def score_links(self, u, v, *, raw: bool = False) -> np.ndarray:
        """Eq.-aligned link scores ``σ(w_u · w_v)`` for node pairs.

        The skip-gram objective drives the inner product ``w_u · w_v``
        toward the structure preference (Theorem 3), so the sigmoid of the
        dot product is the model's link probability — the same quantity
        the Eq. (5) positive term maximises.  ``raw=True`` returns the raw
        inner products (what :func:`repro.evaluation.score_edges` ranks by
        with the default ``"dot"`` scorer).
        """
        u = self._validate_nodes(u, name="u")
        v = self._validate_nodes(v, name="v")
        if u.shape != v.shape:
            raise ConfigurationError(
                f"u and v must have the same length, got {u.size} and {v.size}"
            )
        ws = self.workspace
        # the answer itself is the one legitimate allocation: O(batch), and
        # it must outlive the next call's workspace reuse
        out = np.empty(u.size, dtype=self.compute_dtype)  # repro-lint: disable=ALLOC001 -- O(batch) result buffer returned to the caller
        for start in range(0, u.size, self.max_batch):
            stop = min(start + self.max_batch, u.size)
            B = stop - start
            np.take(self._emb, u[start:stop], axis=0, out=ws.link_left_raw[:B])
            np.take(self._emb, v[start:stop], axis=0, out=ws.link_right_raw[:B])
            np.copyto(ws.link_left[:B], ws.link_left_raw[:B], casting="same_kind")
            np.copyto(ws.link_right[:B], ws.link_right_raw[:B], casting="same_kind")
            scores = ws.link_scores[:B]
            np.einsum("ij,ij->i", ws.link_left[:B], ws.link_right[:B], out=scores)
            if not raw:
                # stable in-place sigmoid (same clamp as utils.math.sigmoid)
                np.clip(scores, -35.0, 35.0, out=scores)
                np.negative(scores, out=scores)
                np.exp(scores, out=scores)
                np.add(scores, self.compute_dtype.type(1.0), out=scores)
                np.reciprocal(scores, out=scores)
            out[start:stop] = scores
        return out

    def __repr__(self) -> str:
        return (
            f"QueryEngine(num_nodes={self.num_nodes}, dim={self.embedding_dim}, "
            f"max_batch={self.max_batch}, max_k={self.max_k}, "
            f"block_rows={self.block_rows}, dtype={self.compute_dtype.name})"
        )
