"""Query-phase wall-time profiling for the serving layer.

A ``top_k`` call has three phases — ``gather`` (pull + cast the query
vectors and their norms), ``matmul`` (stage each candidate block and score
it) and ``partition`` (pack ranking keys, merge the running top-k, final
sort + decode).  :class:`QueryProfiler` times them exactly like the
training :class:`~repro.engine.profiler.StepProfiler` times engine steps,
and publishes the same :class:`~repro.engine.profiler.StepProfile` shape —
one profile vocabulary for both benchmark surfaces (steps/sec and
queries/sec)::

    profiler = QueryProfiler()
    engine = QueryEngine(servable.embeddings, profiler=profiler)
    engine.top_k(nodes, k=10)
    profiler.profile().mean_seconds("matmul")   # seconds per *query*

Profiling is strictly opt-in: an engine without a profiler takes a single
``is None`` branch per call and never touches the clock.
"""

from __future__ import annotations

from ..engine.profiler import StepProfile

__all__ = ["QUERY_PHASES", "QueryProfiler"]

#: canonical phase order of one top_k scan
QUERY_PHASES = ("gather", "matmul", "partition")


class QueryProfiler:
    """Accumulates per-phase wall time across ``top_k`` calls.

    The published profile counts *queries* (batch rows served), not calls,
    as its ``steps`` — so ``mean_seconds(phase)`` is per-query cost and a
    batched call amortising a scan over 64 rows shows up as 64 cheap
    "steps", directly comparable across batch sizes.
    """

    def __init__(self) -> None:
        self._phase_seconds: dict[str, float] = {}
        self._queries = 0
        self._calls = 0

    # ------------------------------------------------------------------ #
    def record(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall time into ``phase``."""
        self._phase_seconds[phase] = self._phase_seconds.get(phase, 0.0) + seconds

    def add_queries(self, count: int) -> None:
        """Count ``count`` served query rows (one engine call)."""
        self._queries += int(count)
        self._calls += 1

    @property
    def calls(self) -> int:
        """Number of engine calls profiled (a batch is one call)."""
        return self._calls

    def profile(self) -> StepProfile:
        """Snapshot the totals (``steps`` = query rows served)."""
        return StepProfile(phase_seconds=dict(self._phase_seconds), steps=self._queries)

    def reset(self) -> None:
        """Clear the accumulated totals (e.g. between benchmark rounds)."""
        self._phase_seconds = {}
        self._queries = 0
        self._calls = 0
