"""Async micro-batching front end over a :class:`QueryEngine`.

Thousands of concurrent "who is similar to node v?" requests are
individually tiny — a single-row matmul plus Python call overhead — but
the engine's batched scan amortises one corpus pass over the whole batch.
:class:`BatchingServer` bridges the two: concurrent single-node awaits are
coalesced into one vectorized ``top_k`` call under a max-latency /
max-batch window:

* the first request to arrive opens a window of ``max_delay`` seconds,
* requests landing inside the window join the batch,
* the batch is flushed early the moment it reaches ``max_batch`` rows,
* the vectorized call runs in the default executor, so the event loop
  keeps accepting (and queueing) new requests while numpy works.

Requests that ask for a different ``(k, metric)`` than the batch being
assembled stay queued and flush as their own group — every engine call
serves one homogeneous batch.  The engine (and its preallocated
workspace) is owned by the server's single flush loop; never share one
engine between a running server and direct callers.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from .engine import QueryEngine

__all__ = ["BatchingServer", "ServerStats"]


@dataclass
class ServerStats:
    """Counters of one server lifetime (reset on ``start``)."""

    requests: int = 0
    batches: int = 0
    #: requests that shared their engine call with at least one other
    coalesced_requests: int = 0
    max_batch_size: int = 0
    batch_sizes: list[int] = field(default_factory=list)

    @property
    def mean_batch_size(self) -> float:
        """Average rows per engine call (0.0 before the first flush)."""
        return self.requests / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        """JSON-able summary (used by the serving benchmark artifacts)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "coalesced_requests": self.coalesced_requests,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": self.mean_batch_size,
        }


class BatchingServer:
    """Coalesce concurrent top-k requests into vectorized engine calls.

    Parameters
    ----------
    engine:
        The :class:`QueryEngine` to serve from (exclusively owned while
        the server runs).
    max_batch:
        Flush as soon as this many compatible requests are pending.
        Defaults to the engine's ``max_batch``.
    max_delay:
        Seconds the first request of a batch waits for company before the
        batch is flushed anyway — the latency ceiling added by batching.
    default_k / metric / exclude_self:
        Per-request defaults; ``top_k`` callers may override ``k`` and
        ``metric`` per request.

    Use as an async context manager, or call ``start`` / ``stop``::

        async with BatchingServer(engine, max_delay=0.002) as server:
            ids, scores = await server.top_k(42, k=10)
    """

    def __init__(self, engine: QueryEngine, *, max_batch: int | None = None,
                 max_delay: float = 0.002, default_k: int = 10,
                 metric: str = "cosine", exclude_self: bool = True) -> None:
        if max_delay < 0:
            raise ConfigurationError(f"max_delay must be >= 0, got {max_delay}")
        self.engine = engine
        self.max_batch = int(max_batch) if max_batch is not None else engine.max_batch
        if self.max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {self.max_batch}")
        self.max_delay = float(max_delay)
        self.default_k = int(default_k)
        self.metric = metric
        self.exclude_self = bool(exclude_self)
        self.stats = ServerStats()
        self._pending: deque = deque()
        self._wakeup: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._closing = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "BatchingServer":
        """Start the flush loop (idempotent start is an error)."""
        if self._task is not None:
            raise RuntimeError("BatchingServer is already running")
        self._closing = False
        self.stats = ServerStats()
        self._wakeup = asyncio.Event()
        self._task = asyncio.create_task(self._run())
        return self

    async def stop(self) -> None:
        """Drain every pending request, then stop the flush loop."""
        if self._task is None:
            return
        self._closing = True
        self._wakeup.set()
        try:
            await self._task
        finally:
            self._task = None
            self._wakeup = None

    async def __aenter__(self) -> "BatchingServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def is_running(self) -> bool:
        return self._task is not None and not self._closing

    # ------------------------------------------------------------------ #
    # the request surface
    # ------------------------------------------------------------------ #
    async def top_k(self, node: int, k: int | None = None, *,
                    metric: str | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Await the top-k neighbours of one node: ``(ids, scores)`` 1-D."""
        if not self.is_running:
            raise RuntimeError("BatchingServer is not running; use 'async with' or start()")
        request_k = self.default_k if k is None else int(k)
        request_metric = self.metric if metric is None else metric
        future = asyncio.get_running_loop().create_future()
        self._pending.append((int(node), request_k, request_metric, future))
        self._wakeup.set()
        ids, scores = await future
        return ids, scores

    # ------------------------------------------------------------------ #
    # the flush loop
    # ------------------------------------------------------------------ #
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._pending:
                if self._closing:
                    return
                await self._wakeup.wait()
                self._wakeup.clear()
                continue
            # first pending request opens the coalescing window
            deadline = loop.time() + self.max_delay
            while len(self._pending) < self.max_batch and not self._closing:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    await asyncio.wait_for(self._wakeup.wait(), remaining)
                except asyncio.TimeoutError:
                    break
                self._wakeup.clear()
            await self._flush_one_group(loop)

    async def _flush_one_group(self, loop: asyncio.AbstractEventLoop) -> None:
        """Serve the head-of-queue group of compatible requests."""
        head_k, head_metric = self._pending[0][1], self._pending[0][2]
        batch = []
        skipped: deque = deque()
        while self._pending and len(batch) < self.max_batch:
            item = self._pending.popleft()
            if (item[1], item[2]) == (head_k, head_metric):
                batch.append(item)
            else:
                skipped.append(item)
        skipped.extend(self._pending)
        self._pending = skipped

        nodes = np.array([node for node, *_ in batch], dtype=np.int64)
        try:
            result = await loop.run_in_executor(
                None,
                lambda: self.engine.top_k(
                    nodes, head_k, metric=head_metric, exclude_self=self.exclude_self
                ),
            )
        except Exception as exc:  # deliver the failure to every waiter
            for *_, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        self.stats.requests += len(batch)
        self.stats.batches += 1
        self.stats.batch_sizes.append(len(batch))
        self.stats.max_batch_size = max(self.stats.max_batch_size, len(batch))
        if len(batch) > 1:
            self.stats.coalesced_requests += len(batch)
        for row, (*_, future) in enumerate(batch):
            if not future.done():
                future.set_result((result.ids[row], result.scores[row]))
