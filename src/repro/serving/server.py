"""Async micro-batching front end over a :class:`QueryEngine`.

Thousands of concurrent "who is similar to node v?" requests are
individually tiny — a single-row matmul plus Python call overhead — but
the engine's batched scan amortises one corpus pass over the whole batch.
:class:`BatchingServer` bridges the two: concurrent single-node awaits are
coalesced into one vectorized ``top_k`` call under a max-latency /
max-batch window:

* the first request to arrive opens a window of ``max_delay`` seconds,
* requests landing inside the window join the batch,
* the batch is flushed early the moment it reaches ``max_batch`` rows,
* the vectorized call runs in the default executor, so the event loop
  keeps accepting (and queueing) new requests while numpy works.

Requests that ask for a different ``(k, metric)`` than the batch being
assembled stay queued and flush as their own group — every engine call
serves one homogeneous batch.  The engine (and its preallocated
workspace) is owned by the server's single flush loop; never share one
engine between a running server and direct callers.

Failure envelope (PR 10).  A production front end must bound every bad
outcome, so the server carries three opt-in guards, each a typed error:

* **deadlines** — ``request_timeout`` (or a per-call ``timeout=``) bounds
  how long one request may wait end-to-end; an expired waiter raises
  :class:`~repro.exceptions.ServerTimeoutError` and is dropped from any
  batch still being assembled (its row is never computed);
* **backpressure** — ``max_pending`` bounds the queue; requests beyond it
  fast-fail with :class:`~repro.exceptions.ServerOverloadedError` instead
  of growing an unbounded backlog;
* **circuit breaker** — ``breaker_threshold`` consecutive engine failures
  open the breaker: new requests fast-fail with
  :class:`~repro.exceptions.CircuitOpenError` until ``breaker_reset``
  seconds pass, after which the breaker half-opens and the next batch
  probes the engine (success closes it, failure re-opens it).

``stop(drain_timeout=...)`` bounds shutdown: waiters that cannot be
served in time receive :class:`~repro.exceptions.ServerClosedError`
rather than hanging forever.  All guards default to off — the unhardened
behaviour is bit-identical to the previous server.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..exceptions import (
    CircuitOpenError,
    ConfigurationError,
    ServerClosedError,
    ServerOverloadedError,
    ServerTimeoutError,
)
from .engine import QueryEngine

__all__ = ["BatchingServer", "ServerStats"]

#: distinguishes "argument omitted" from an explicit ``None`` override
_UNSET: Any = object()


@dataclass
class ServerStats:
    """Counters of one server lifetime (reset on ``start``)."""

    requests: int = 0
    batches: int = 0
    #: requests that shared their engine call with at least one other
    coalesced_requests: int = 0
    max_batch_size: int = 0
    batch_sizes: list[int] = field(default_factory=list)
    #: requests whose deadline expired before their batch was served
    timeouts: int = 0
    #: requests fast-failed because the pending queue was full
    rejected_overload: int = 0
    #: requests fast-failed because the circuit breaker was open
    rejected_open: int = 0
    #: engine calls that raised (each fails its whole batch)
    engine_failures: int = 0
    #: closed/half-open -> open breaker transitions
    breaker_opened: int = 0
    #: waiters abandoned by a deadline-bounded ``stop``
    abandoned: int = 0
    breaker_state: str = "closed"

    @property
    def mean_batch_size(self) -> float:
        """Average rows per engine call (0.0 before the first flush)."""
        return self.requests / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        """JSON-able summary (used by the serving benchmark artifacts)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "coalesced_requests": self.coalesced_requests,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": self.mean_batch_size,
        }

    def health(self) -> dict:
        """The full operational snapshot: throughput + failure counters."""
        return {
            **self.to_dict(),
            "timeouts": self.timeouts,
            "rejected_overload": self.rejected_overload,
            "rejected_open": self.rejected_open,
            "engine_failures": self.engine_failures,
            "breaker_opened": self.breaker_opened,
            "abandoned": self.abandoned,
            "breaker_state": self.breaker_state,
        }


class _CircuitBreaker:
    """Consecutive-failure breaker; state transitions mirrored into stats.

    ``open -> half_open`` happens lazily when the state is next observed
    after ``reset_after`` seconds — no timer task to manage.  In
    ``half_open`` requests are admitted so the next batch probes the
    engine: one success closes the breaker, one failure re-opens it.
    """

    def __init__(
        self, threshold: int | None, reset_after: float, stats: ServerStats
    ) -> None:
        self.threshold = threshold
        self.reset_after = reset_after
        self._stats = stats
        self._state = "closed"
        self._consecutive = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        if (
            self._state == "open"
            and time.monotonic() - self._opened_at >= self.reset_after
        ):
            self._set("half_open")
        return self._state

    def _set(self, state: str) -> None:
        self._state = state
        self._stats.breaker_state = state

    def allows(self) -> bool:
        return self.threshold is None or self.state != "open"

    def record_success(self) -> None:
        self._consecutive = 0
        if self.threshold is not None and self._state != "closed":
            self._set("closed")

    def record_failure(self) -> None:
        if self.threshold is None:
            return
        self._consecutive += 1
        if self.state == "half_open" or self._consecutive >= self.threshold:
            if self._state != "open":
                self._stats.breaker_opened += 1
            self._set("open")
            self._opened_at = time.monotonic()


class BatchingServer:
    """Coalesce concurrent top-k requests into vectorized engine calls.

    Parameters
    ----------
    engine:
        The :class:`QueryEngine` to serve from (exclusively owned while
        the server runs).
    max_batch:
        Flush as soon as this many compatible requests are pending.
        Defaults to the engine's ``max_batch``.
    max_delay:
        Seconds the first request of a batch waits for company before the
        batch is flushed anyway — the latency ceiling added by batching.
    default_k / metric / exclude_self:
        Per-request defaults; ``top_k`` callers may override ``k`` and
        ``metric`` per request.
    request_timeout:
        Default end-to-end deadline per request in seconds (``None`` =
        no deadline); ``top_k(..., timeout=...)`` overrides per call.
    max_pending:
        Pending-queue bound; beyond it requests raise
        :class:`~repro.exceptions.ServerOverloadedError` immediately.
    breaker_threshold / breaker_reset:
        Consecutive engine failures that open the circuit breaker, and
        seconds before an open breaker half-opens for a probe.
        ``breaker_threshold=None`` disables the breaker.
    drain_timeout:
        Default bound on ``stop``'s drain in seconds (``None`` = drain
        fully, however long it takes).

    Use as an async context manager, or call ``start`` / ``stop``::

        async with BatchingServer(engine, max_delay=0.002) as server:
            ids, scores = await server.top_k(42, k=10)
    """

    def __init__(self, engine: QueryEngine, *, max_batch: int | None = None,
                 max_delay: float = 0.002, default_k: int = 10,
                 metric: str = "cosine", exclude_self: bool = True,
                 request_timeout: float | None = None,
                 max_pending: int | None = None,
                 breaker_threshold: int | None = None,
                 breaker_reset: float = 1.0,
                 drain_timeout: float | None = None) -> None:
        if max_delay < 0:
            raise ConfigurationError(f"max_delay must be >= 0, got {max_delay}")
        self.engine = engine
        self.max_batch = int(max_batch) if max_batch is not None else engine.max_batch
        if self.max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {self.max_batch}")
        self.max_delay = float(max_delay)
        self.default_k = int(default_k)
        self.metric = metric
        self.exclude_self = bool(exclude_self)
        if request_timeout is not None and request_timeout <= 0:
            raise ConfigurationError(
                f"request_timeout must be positive, got {request_timeout}"
            )
        if max_pending is not None and int(max_pending) < 1:
            raise ConfigurationError(f"max_pending must be >= 1, got {max_pending}")
        if breaker_threshold is not None and int(breaker_threshold) < 1:
            raise ConfigurationError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        if breaker_reset <= 0:
            raise ConfigurationError(
                f"breaker_reset must be positive, got {breaker_reset}"
            )
        if drain_timeout is not None and drain_timeout < 0:
            raise ConfigurationError(
                f"drain_timeout must be >= 0, got {drain_timeout}"
            )
        self.request_timeout = request_timeout
        self.max_pending = int(max_pending) if max_pending is not None else None
        self.breaker_threshold = (
            int(breaker_threshold) if breaker_threshold is not None else None
        )
        self.breaker_reset = float(breaker_reset)
        self.drain_timeout = drain_timeout
        self.stats = ServerStats()
        self._breaker = _CircuitBreaker(
            self.breaker_threshold, self.breaker_reset, self.stats
        )
        self._pending: deque = deque()
        self._in_flight: list[asyncio.Future] = []
        self._wakeup: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._closing = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "BatchingServer":
        """Start the flush loop (idempotent start is an error)."""
        if self._task is not None:
            raise RuntimeError("BatchingServer is already running")
        self._closing = False
        self.stats = ServerStats()
        self._breaker = _CircuitBreaker(
            self.breaker_threshold, self.breaker_reset, self.stats
        )
        self._wakeup = asyncio.Event()
        self._task = asyncio.create_task(self._run())
        return self

    async def stop(self, drain_timeout: float | None = _UNSET) -> None:
        """Drain pending requests, then stop the flush loop.

        With a ``drain_timeout`` (argument, or the constructor default)
        the drain is bounded: when the deadline passes, the loop is
        cancelled and every unserved waiter — in flight or still queued —
        receives :class:`~repro.exceptions.ServerClosedError` instead of
        hanging on a future nobody will complete.
        """
        if self._task is None:
            return
        limit = self.drain_timeout if drain_timeout is _UNSET else drain_timeout
        self._closing = True
        self._wakeup.set()
        task = self._task
        try:
            if limit is None:
                await task
            else:
                try:
                    await asyncio.wait_for(asyncio.shield(task), limit)
                except asyncio.TimeoutError:
                    task.cancel()
                    try:
                        await task
                    except (asyncio.CancelledError, Exception):
                        pass
                    self._abandon_waiters()
        finally:
            self._task = None
            self._wakeup = None

    def _abandon_waiters(self) -> None:
        """Fail every unserved waiter with ``ServerClosedError``."""
        exc = ServerClosedError(
            "server stopped before the request could be served"
        )
        for future in list(self._in_flight):
            if not future.done():
                future.set_exception(exc)
                self.stats.abandoned += 1
        self._in_flight = []
        while self._pending:
            *_, future = self._pending.popleft()
            if not future.done():
                future.set_exception(exc)
                self.stats.abandoned += 1

    async def __aenter__(self) -> "BatchingServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def is_running(self) -> bool:
        return self._task is not None and not self._closing

    # ------------------------------------------------------------------ #
    # the request surface
    # ------------------------------------------------------------------ #
    async def top_k(self, node: int, k: int | None = None, *,
                    metric: str | None = None,
                    timeout: float | None = _UNSET) -> tuple[np.ndarray, np.ndarray]:
        """Await the top-k neighbours of one node: ``(ids, scores)`` 1-D.

        ``timeout`` overrides the server's ``request_timeout`` for this
        call (``None`` = wait without a deadline).
        """
        if not self.is_running:
            raise RuntimeError("BatchingServer is not running; use 'async with' or start()")
        if not self._breaker.allows():
            self.stats.rejected_open += 1
            raise CircuitOpenError(
                "circuit breaker is open after repeated engine failures; "
                f"retry after {self.breaker_reset}s"
            )
        if self.max_pending is not None:
            backlog = sum(1 for *_, f in self._pending if not f.done())
            if backlog >= self.max_pending:
                self.stats.rejected_overload += 1
                raise ServerOverloadedError(
                    f"pending queue is full ({backlog} waiting >= "
                    f"max_pending={self.max_pending}); retry later"
                )
        request_k = self.default_k if k is None else int(k)
        request_metric = self.metric if metric is None else metric
        future = asyncio.get_running_loop().create_future()
        self._pending.append((int(node), request_k, request_metric, future))
        self._wakeup.set()
        limit = self.request_timeout if timeout is _UNSET else timeout
        if limit is None:
            ids, scores = await future
            return ids, scores
        try:
            # wait_for cancels the future on expiry, which is exactly the
            # removal protocol: the flush loop skips done futures, so the
            # expired waiter's row is never computed nor delivered
            ids, scores = await asyncio.wait_for(future, limit)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            raise ServerTimeoutError(
                f"top_k deadline of {limit}s expired before the batch was served"
            ) from None
        return ids, scores

    # ------------------------------------------------------------------ #
    # the flush loop
    # ------------------------------------------------------------------ #
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._pending:
                if self._closing:
                    return
                await self._wakeup.wait()
                self._wakeup.clear()
                continue
            # first pending request opens the coalescing window
            deadline = loop.time() + self.max_delay
            while len(self._pending) < self.max_batch and not self._closing:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    await asyncio.wait_for(self._wakeup.wait(), remaining)
                except asyncio.TimeoutError:
                    break
                self._wakeup.clear()
            await self._flush_one_group(loop)

    async def _flush_one_group(self, loop: asyncio.AbstractEventLoop) -> None:
        """Serve the head-of-queue group of compatible requests."""
        batch = []
        skipped: deque = deque()
        head: tuple[int, str] | None = None
        while self._pending and len(batch) < self.max_batch:
            item = self._pending.popleft()
            if item[3].done():  # deadline expired while queued — drop the row
                continue
            if head is None:
                head = (item[1], item[2])
            if (item[1], item[2]) == head:
                batch.append(item)
            else:
                skipped.append(item)
        skipped.extend(self._pending)
        self._pending = skipped
        if not batch:
            return
        head_k, head_metric = head

        nodes = np.array([node for node, *_ in batch], dtype=np.int64)
        self._in_flight = [future for *_, future in batch]
        try:
            result = await loop.run_in_executor(
                None,
                lambda: self.engine.top_k(
                    nodes, head_k, metric=head_metric, exclude_self=self.exclude_self
                ),
            )
        except asyncio.CancelledError:
            # a deadline-bounded stop() cancelled the loop mid-call: the
            # executor thread finishes on its own, but these waiters will
            # never get a result — fail them now, then let the cancel win
            self._abandon_waiters()
            raise
        except Exception as exc:  # deliver the failure to every waiter
            self.stats.engine_failures += 1
            self._breaker.record_failure()
            for *_, future in batch:
                if not future.done():
                    future.set_exception(exc)
            self._in_flight = []
            return
        self._in_flight = []
        self._breaker.record_success()
        self.stats.requests += len(batch)
        self.stats.batches += 1
        self.stats.batch_sizes.append(len(batch))
        self.stats.max_batch_size = max(self.stats.max_batch_size, len(batch))
        if len(batch) > 1:
            self.stats.coalesced_requests += len(batch)
        for row, (*_, future) in enumerate(batch):
            if not future.done():
                future.set_result((result.ids[row], result.scores[row]))
