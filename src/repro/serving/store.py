"""Memory-mapped servable model store: metadata JSON + raw ``.npy`` sidecars.

A training artifact (:mod:`repro.models.artifacts`) is one ``.npz`` file —
ideal for archival, wrong for serving: ``np.load`` on an npz *decompresses
a private copy* of every array into each reader's heap.  A *servable* is
the same model laid out for N concurrent readers::

    model.servable/
        servable.json            # envelope + per-array descriptors + the
                                 # full source-artifact metadata ("model")
        embeddings.npy           # raw np.save payloads, mmap-able
        context_embeddings.npy   # (when the method trains a W_out)

:func:`export_servable` converts a saved artifact (or a fitted estimator)
once; :meth:`ServableModel.open` then maps the sidecars with
``np.load(..., mmap_mode="r")`` — opening allocates O(metadata) regardless
of ``|V| × r``, every reader process shares one page-cache copy of the
payload, and the arrays are read-only views (a stray write raises).
Directory publication mirrors :func:`repro.utils.fileio.atomic_write_path`:
sidecars are written into a dot-prefixed temp directory that is renamed
into place, so readers never observe a half-written servable.

Trust travels with the model: the source artifact's method name, method
spec payload, dataset/proximity fingerprints and privacy spent ride along
in ``servable.json``, and ``open`` refuses (like ``Embedder.load``) to
serve a model whose method registration has since drifted.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from pathlib import Path
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any
from uuid import uuid4

import numpy as np

from ..exceptions import ArtifactError, ConfigurationError
from .engine import QueryEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..models.base import Embedder

__all__ = [
    "SERVABLE_FORMAT",
    "SERVABLE_VERSION",
    "ServableModel",
    "export_servable",
    "write_servable",
]

#: identifies our directories among arbitrary folders of .npy files
SERVABLE_FORMAT = "repro.models.servable"
#: bumped on breaking layout changes; old readers reject newer servables
SERVABLE_VERSION = 1

#: the metadata document inside a servable directory
METADATA_FILE = "servable.json"

_ARRAY_NAME = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def write_servable(
    path: str | Path,
    arrays: Mapping[str, np.ndarray],
    metadata: Mapping[str, Any],
    *,
    overwrite: bool = False,
) -> Path:
    """Lay ``arrays`` + ``metadata`` out as a servable directory at ``path``.

    ``arrays`` must contain an ``"embeddings"`` matrix; ``metadata`` is the
    source model's artifact metadata (stored verbatim under ``"model"``).
    The directory is built in a temp sibling and renamed into place, so a
    concurrent reader either sees the previous servable or the complete
    new one, never a torn mix.
    """
    path = Path(path)
    if "embeddings" not in arrays:
        raise ArtifactError("a servable needs an 'embeddings' array")
    for name, array in arrays.items():
        if not _ARRAY_NAME.match(name):
            raise ArtifactError(f"array name {name!r} is not a valid sidecar name")
        if not isinstance(array, np.ndarray):
            raise ArtifactError(
                f"servable array {name!r} must be a numpy array, got {type(array).__name__}"
            )
    if path.exists() and not overwrite:
        raise ArtifactError(f"{path} already exists; pass overwrite=True to replace it")
    tmp_dir = path.with_name(f".{path.name}.{os.getpid()}-{uuid4().hex[:8]}")
    try:
        tmp_dir.mkdir(parents=True)
        entries: dict[str, dict[str, Any]] = {}
        payload_nbytes = 0
        for name, array in arrays.items():
            filename = f"{name}.npy"
            np.save(tmp_dir / filename, np.asarray(array), allow_pickle=False)
            entries[name] = {
                "file": filename,
                "shape": [int(dim) for dim in array.shape],
                "dtype": str(array.dtype),
            }
            payload_nbytes += int(array.nbytes)
        document = {
            "format": SERVABLE_FORMAT,
            "format_version": SERVABLE_VERSION,
            "payload_nbytes": payload_nbytes,
            "arrays": entries,
            "model": dict(metadata),
        }
        (tmp_dir / METADATA_FILE).write_text(
            json.dumps(document, sort_keys=True, indent=2) + "\n", encoding="utf-8"
        )
        if path.exists():
            shutil.rmtree(path)
        os.rename(tmp_dir, path)
    except BaseException:
        shutil.rmtree(tmp_dir, ignore_errors=True)
        raise
    return path


def export_servable(
    source: "str | Path | Embedder", path: str | Path, *, overwrite: bool = False
) -> Path:
    """One-shot convert ``source`` into a servable directory at ``path``.

    ``source`` is either the path of a saved ``.npz`` model artifact or a
    fitted :class:`~repro.models.Embedder`.  The conversion reads the
    payload once (export is archival → serving, not a hot path); every
    subsequent :meth:`ServableModel.open` is zero-copy.
    """
    from ..models.base import Embedder

    if isinstance(source, Embedder):
        arrays = {"embeddings": np.asarray(source.embeddings_)}
        if source.context_embeddings_ is not None:
            arrays["context_embeddings"] = np.asarray(source.context_embeddings_)
        metadata = source._artifact_metadata()
    else:
        from ..models.artifacts import load_artifact

        arrays, metadata = load_artifact(source)
    return write_servable(path, arrays, metadata, overwrite=overwrite)


class ServableModel:
    """A read-only, zero-copy view of an exported model.

    Construct via :meth:`open`; the embedding blocks are ``np.memmap``
    views backed by the sidecar files.  The views stay valid until
    :meth:`close` (or garbage collection of the model) — query engines
    built from them must not outlive the servable that produced them.
    """

    def __init__(self, path: Path, document: dict[str, Any],
                 arrays: dict[str, np.ndarray]) -> None:
        self._path = path
        self._document = document
        self._arrays = arrays

    # ------------------------------------------------------------------ #
    @classmethod
    def open(cls, path: str | Path, *, check_registry: bool = True) -> "ServableModel":
        """Map a servable directory without copying its payload.

        Raises :class:`~repro.exceptions.ArtifactError` for missing or
        foreign directories, corrupt metadata, sidecars that disagree with
        their descriptors, servables written by a newer format version,
        and (unless ``check_registry=False``) models whose method is no
        longer registered or has drifted since export.
        """
        path = Path(path)
        metadata_path = path / METADATA_FILE
        if not metadata_path.is_file():
            raise ArtifactError(f"no servable model at {path}")
        try:
            document = json.loads(metadata_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:  # repro-lint: disable=RETRY001 -- load-time translation to a typed ArtifactError; a serving process that cannot read its servable must fail loudly at startup, not retry into serving stale state
            raise ArtifactError(f"corrupt servable metadata in {path}: {exc}") from exc
        if not isinstance(document, dict) or document.get("format") != SERVABLE_FORMAT:
            raise ArtifactError(f"{path} does not contain a {SERVABLE_FORMAT} model")
        version = document.get("format_version")
        if not isinstance(version, int) or version > SERVABLE_VERSION:
            raise ArtifactError(
                f"{path} has servable version {version!r}; this build reads <= "
                f"{SERVABLE_VERSION}"
            )
        entries = document.get("arrays")
        if not isinstance(entries, dict) or "embeddings" not in entries:
            raise ArtifactError(f"{path} lists no embeddings sidecar")
        arrays: dict[str, np.ndarray] = {}
        for name, entry in entries.items():
            filename = entry.get("file", "")
            if Path(filename).name != filename:
                raise ArtifactError(f"{path} sidecar {filename!r} escapes the servable")
            sidecar = path / filename
            try:
                array = np.load(sidecar, mmap_mode="r", allow_pickle=False)
            except (OSError, ValueError) as exc:  # repro-lint: disable=RETRY001 -- mmap either succeeds or the servable is unusable; translating to a typed ArtifactError at startup beats retrying a mapping the kernel just refused
                raise ArtifactError(f"cannot map sidecar {sidecar}: {exc}") from exc
            if list(array.shape) != list(entry.get("shape", [])) or str(
                array.dtype
            ) != entry.get("dtype"):
                raise ArtifactError(
                    f"sidecar {sidecar} is {array.dtype}{array.shape}, but the "
                    f"servable metadata promises {entry.get('dtype')}"
                    f"{tuple(entry.get('shape', []))}"
                )
            arrays[name] = array
        model = cls(path, document, arrays)
        if check_registry:
            model._check_registry()
        return model

    def _check_registry(self) -> None:
        """Refuse to serve a model whose method registration has drifted."""
        method = self.metadata.get("method")
        if not method:
            return  # spec-less models (directly-constructed estimators)
        from ..models.registry import get_method

        try:
            spec = get_method(method)
        except ConfigurationError as exc:
            raise ArtifactError(
                f"{self._path} was exported from method {method!r}, which is not "
                f"registered in this process: {exc}"
            ) from exc
        stored = self.metadata.get("method_spec")
        if stored is not None and stored != spec.fingerprint_payload():
            raise ArtifactError(
                f"{self._path} was exported under a different registration of "
                f"method {method!r}; refusing to serve a drifted model "
                "(pass check_registry=False to override)"
            )

    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        return self._path

    @property
    def document(self) -> dict[str, Any]:
        """The full ``servable.json`` document (envelope + model metadata)."""
        return self._document

    @property
    def metadata(self) -> dict[str, Any]:
        """The source model's artifact metadata (method, fingerprints, ...)."""
        return self._document.get("model") or {}

    @property
    def method(self) -> str | None:
        return self.metadata.get("method")

    @property
    def payload_nbytes(self) -> int:
        """Total sidecar payload size the mmap view shares (not copies)."""
        return int(self._document.get("payload_nbytes", 0))

    @property
    def embeddings(self) -> np.ndarray:
        """The ``|V| × r`` matrix as a read-only memory map."""
        try:
            return self._arrays["embeddings"]
        except KeyError:
            raise ArtifactError(f"servable {self._path} is closed") from None

    @property
    def context_embeddings(self) -> np.ndarray | None:
        return self._arrays.get("context_embeddings")

    @property
    def num_nodes(self) -> int:
        return int(self.embeddings.shape[0])

    @property
    def embedding_dim(self) -> int:
        return int(self.embeddings.shape[1])

    # ------------------------------------------------------------------ #
    def query_engine(self, **engine_kwargs: Any) -> QueryEngine:
        """Build a :class:`QueryEngine` over the mapped embeddings."""
        return QueryEngine(
            self.embeddings,
            context_embeddings=self.context_embeddings,
            **engine_kwargs,
        )

    def close(self) -> None:
        """Release the memory maps (views handed out become invalid)."""
        arrays, self._arrays = self._arrays, {}
        for array in arrays.values():
            mmap_obj = getattr(array, "_mmap", None)
            if mmap_obj is not None:
                mmap_obj.close()

    def __enter__(self) -> "ServableModel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        closed = "" if self._arrays else ", closed"
        shape = (
            f"{self._arrays['embeddings'].shape}" if "embeddings" in self._arrays else "?"
        )
        return f"ServableModel(path={str(self._path)!r}, embeddings={shape}{closed})"
