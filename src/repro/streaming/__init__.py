"""Streaming graph subsystem: deltas, incremental invalidation, refits.

A live graph is modelled as a *lineage*: an initial :class:`~repro.Graph`
plus a chain of :class:`EdgeDelta` batches.  This package provides the
delta type and its strict incremental application (:func:`apply_delta`),
and the :class:`DeltaPlanner` that decides which cached proximity rows
survive a delta (see :mod:`repro.streaming.planner` for the per-measure
locality rules).  Warm-start refits live on :meth:`Embedder.fit
<repro.models.base.Embedder.fit>` (``warm_start=``), and the durable
privacy record of a lineage lives in
:class:`~repro.privacy.ledger.PrivacyLedger`.
"""

from .delta import EdgeDelta, apply_delta
from .planner import (
    DeltaPlanner,
    InvalidationPlan,
    LocalityRule,
    RefreshResult,
    register_locality,
)

__all__ = [
    "EdgeDelta",
    "apply_delta",
    "DeltaPlanner",
    "InvalidationPlan",
    "LocalityRule",
    "RefreshResult",
    "register_locality",
]
