"""Edge deltas: validated batches of inserts and deletes for evolving graphs.

A :class:`Graph` is immutable; a live graph is therefore modelled as a
*lineage* of graphs connected by :class:`EdgeDelta` batches.  A delta is
canonicalised exactly the way ``Graph`` canonicalises its edge array —
``u < v`` per row, mirrors collapsed, rows lexicographically sorted — so a
delta has a content fingerprint of its own and two equal deltas are
byte-equal.

:func:`apply_delta` is the incremental counterpart of rebuilding the graph
from an edited edge list: deletes and inserts are resolved against the
sorted packed-key edge array with binary searches and a single O(m + k)
sorted merge, and the result is constructed through
``Graph._from_canonical_edges`` — no re-sort of the full edge array.

Application is *strict*: deleting an edge that does not exist, or inserting
one that already does, raises :class:`~repro.exceptions.GraphError` naming
the offending pair.  A delta that silently no-ops is almost always a
double-applied or mis-ordered delta, and downstream consumers (the
invalidation planner, the privacy ledger's lineage chain) depend on every
delta actually changing the fingerprint it claims to change.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable

import numpy as np

from ..exceptions import GraphError
from ..graph import Graph

__all__ = ["EdgeDelta", "apply_delta"]


def _canonical_pairs(pairs: Iterable[tuple[int, int]] | np.ndarray, label: str) -> np.ndarray:
    """Canonicalise node pairs the way ``Graph._canonical_edges`` does.

    Mirrors collapse (``(v, u)`` → ``(u, v)``), duplicates dedupe, rows come
    out lexicographically sorted.  Self-loops and negative indices are
    rejected here; the *upper* node bound is graph-dependent and checked at
    application time.
    """
    if isinstance(pairs, np.ndarray):
        arr = pairs.astype(np.int64, copy=False)
    else:
        arr = np.asarray(list(pairs)).astype(np.int64, copy=False)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError(f"{label} must be (u, v) pairs, got an array of shape {arr.shape}")
    loops = arr[:, 0] == arr[:, 1]
    if loops.any():
        u, v = arr[int(np.argmax(loops))]
        raise GraphError(f"self-loop ({int(u)}, {int(v)}) is not allowed in {label}")
    if (arr < 0).any():
        u, v = arr[int(np.argmax((arr < 0).any(axis=1)))]
        raise GraphError(f"negative node index in {label} pair ({int(u)}, {int(v)})")
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    canonical = np.unique(np.stack([lo, hi], axis=1), axis=0)
    return np.ascontiguousarray(canonical, dtype=np.int64)


class EdgeDelta:
    """A canonicalised batch of edge insertions and deletions.

    Parameters
    ----------
    inserts, deletes:
        Iterables of ``(u, v)`` pairs (or ``(k, 2)`` arrays).  Each batch is
        canonicalised like a ``Graph`` edge array; a pair appearing in both
        batches is rejected (the net effect would depend on application
        order, which a set-like delta must not).
    num_nodes:
        Optional node count of the *resulting* graph.  Required when inserts
        reference nodes beyond the base graph (a growth delta); must not be
        smaller than the base graph's node count.

    The delta is immutable after construction; ``fingerprint()`` is a
    content hash over both batches and the target node count, used by the
    privacy ledger's lineage chain.
    """

    def __init__(
        self,
        inserts: Iterable[tuple[int, int]] | np.ndarray = (),
        deletes: Iterable[tuple[int, int]] | np.ndarray = (),
        num_nodes: int | None = None,
    ) -> None:
        self._inserts = _canonical_pairs(inserts, "inserts")
        self._deletes = _canonical_pairs(deletes, "deletes")
        self._inserts.setflags(write=False)
        self._deletes.setflags(write=False)
        if num_nodes is not None and int(num_nodes) <= 0:
            raise GraphError(f"num_nodes must be positive, got {num_nodes}")
        self._num_nodes = int(num_nodes) if num_nodes is not None else None
        if self._inserts.size and self._deletes.size:
            combined = np.concatenate([self._inserts, self._deletes], axis=0)
            uniq, counts = np.unique(combined, axis=0, return_counts=True)
            if uniq.shape[0] < combined.shape[0]:
                u, v = uniq[int(np.argmax(counts > 1))]
                raise GraphError(
                    f"edge ({int(u)}, {int(v)}) appears in both inserts and deletes"
                )

    # ------------------------------------------------------------------ #
    @property
    def inserts(self) -> np.ndarray:
        """Canonical ``(k, 2)`` array of edges to insert (read-only)."""
        return self._inserts

    @property
    def deletes(self) -> np.ndarray:
        """Canonical ``(k, 2)`` array of edges to delete (read-only)."""
        return self._deletes

    @property
    def num_nodes(self) -> int | None:
        """Target node count of the resulting graph (``None`` = unchanged)."""
        return self._num_nodes

    @property
    def num_inserts(self) -> int:
        return int(self._inserts.shape[0])

    @property
    def num_deletes(self) -> int:
        return int(self._deletes.shape[0])

    @property
    def is_empty(self) -> bool:
        """``True`` when the delta changes neither edges nor node count."""
        return not (self._inserts.size or self._deletes.size)

    @property
    def touched_nodes(self) -> np.ndarray:
        """Sorted unique node ids that are an endpoint of any insert/delete."""
        if self.is_empty:
            return np.empty(0, dtype=np.int64)
        return np.unique(
            np.concatenate([self._inserts.ravel(), self._deletes.ravel()])
        )

    def fingerprint(self) -> str:
        """Content hash of the delta (inserts, deletes, target node count)."""
        digest = hashlib.sha256()
        digest.update(b"repro-edge-delta-v1")
        digest.update(int(self._num_nodes if self._num_nodes is not None else -1).to_bytes(
            8, "little", signed=True
        ))
        digest.update(int(self._inserts.shape[0]).to_bytes(8, "little"))
        digest.update(np.ascontiguousarray(self._inserts).tobytes())
        digest.update(np.ascontiguousarray(self._deletes).tobytes())
        return digest.hexdigest()[:32]

    def __repr__(self) -> str:
        grown = f", num_nodes={self._num_nodes}" if self._num_nodes is not None else ""
        return (
            f"EdgeDelta(inserts={self.num_inserts}, deletes={self.num_deletes}{grown})"
        )


def _pack(pairs: np.ndarray, base: np.int64) -> np.ndarray:
    """Pack canonical ``(lo, hi)`` rows into sorted scalar keys ``lo*base + hi``."""
    return pairs[:, 0] * base + pairs[:, 1]


def apply_delta(graph: Graph, delta: EdgeDelta, name: str | None = None) -> Graph:
    """Apply an :class:`EdgeDelta` to a graph, returning the updated graph.

    The update is incremental: the base graph's canonical edge array is
    already sorted by packed key, so deletes are located with one
    ``searchsorted`` (and verified to exist), inserts are verified absent
    and merged in sorted position with a single ``np.insert`` — O(m + k)
    overall, against the O(m log m) re-canonicalisation of a full rebuild.
    The result is bit-identical to ``Graph(n, edited_edge_list)``.
    """
    if not isinstance(graph, Graph):
        raise GraphError(f"apply_delta expects a repro.Graph, got {type(graph).__name__}")
    n_old = graph.num_nodes
    n_new = n_old if delta.num_nodes is None else delta.num_nodes
    if n_new < n_old:
        raise GraphError(
            f"delta cannot shrink the node set ({n_old} -> {n_new}); node removal "
            "is not part of the edge-delta model"
        )
    inserts, deletes = delta.inserts, delta.deletes
    if deletes.size and int(deletes.max()) >= n_old:
        bad = deletes[int(np.argmax(deletes.max(axis=1) >= n_old))]
        raise GraphError(
            f"delete ({int(bad[0])}, {int(bad[1])}) references a node outside "
            f"[0, {n_old})"
        )
    if inserts.size and int(inserts.max()) >= n_new:
        bad = inserts[int(np.argmax(inserts.max(axis=1) >= n_new))]
        raise GraphError(
            f"insert ({int(bad[0])}, {int(bad[1])}) references a node outside "
            f"[0, {n_new}); pass num_nodes to grow the graph"
        )
    result_name = name or f"{graph.name}+delta"

    if n_new > np.iinfo(np.int64).max // max(n_new, 1):  # pragma: no cover
        # pathological node counts where packed keys would overflow: fall
        # back to a full rebuild (Graph handles this regime the same way)
        old_set = {(int(u), int(v)) for u, v in graph.edges.tolist()}
        for u, v in deletes.tolist():
            if (u, v) not in old_set:
                raise GraphError(f"delete of non-existent edge ({u}, {v})")
            old_set.remove((u, v))
        for u, v in inserts.tolist():
            if (u, v) in old_set:
                raise GraphError(f"insert of already-present edge ({u}, {v})")
            old_set.add((u, v))
        return Graph(n_new, sorted(old_set), name=result_name)

    base = np.int64(n_new)
    # The old edge array is lexicographically sorted with u < v and
    # hi < n_old <= base, so packing with the *new* base preserves order.
    old_keys = _pack(graph.edges, base)
    kept_keys = old_keys
    if deletes.size:
        del_keys = _pack(deletes, base)
        pos = np.searchsorted(old_keys, del_keys)
        in_bounds = pos < old_keys.shape[0]
        found = in_bounds.copy()
        found[in_bounds] &= old_keys[pos[in_bounds]] == del_keys[in_bounds]
        if not found.all():
            u, v = deletes[int(np.argmax(~found))]
            raise GraphError(f"delete of non-existent edge ({int(u)}, {int(v)})")
        keep = np.ones(old_keys.shape[0], dtype=bool)
        keep[pos] = False
        kept_keys = old_keys[keep]
    merged = kept_keys
    if inserts.size:
        ins_keys = _pack(inserts, base)
        pos = np.searchsorted(kept_keys, ins_keys)
        in_bounds = pos < kept_keys.shape[0]
        present = in_bounds.copy()
        present[in_bounds] = kept_keys[pos[in_bounds]] == ins_keys[in_bounds]
        if present.any():
            u, v = inserts[int(np.argmax(present))]
            raise GraphError(f"insert of already-present edge ({int(u)}, {int(v)})")
        merged = np.insert(kept_keys, pos, ins_keys)
    edges = np.stack([merged // base, merged % base], axis=1)
    return Graph._from_canonical_edges(n_new, edges, name=result_name)
