"""Incremental proximity invalidation: decide what a delta actually dirties.

The proximity cache keys entries by content hash, so after a delta the old
graph's entries are never *wrong* — they are simply entries for a different
graph.  The real question is economic: which **rows** of the old matrix are
still byte-valid for the new graph, so a refresh can splice them instead of
recomputing everything?

The answer is a per-measure *locality rule*.  For an edge flip on ``(u, v)``
a proximity entry ``(i, j)`` can only change if the computation of row ``i``
reads something that changed — and for truncated/windowed measures that
reach is a bounded graph distance from the touched endpoints:

================================  =======================================
measure                           locality
================================  =======================================
common neighbors                  radius 1 (rows adjacent to an endpoint)
Adamic-Adar / resource alloc.     radius 1 (endpoint degrees only enter
                                  through common-neighbor weights)
Jaccard                           radius 2 (endpoint degree sits in the
                                  union denominator of two-hop rows)
degree (connected_only)           radius 1, plus a global rescale by
                                  ``peak_old / peak_new``
truncated DeepWalk                radius ``window_size`` (a T-step walk
                                  reads transition rows within distance
                                  T-1), plus a volume rescale
preferential attachment / Katz /  global — every row couples to every
personalized PageRank             edge (dense product / matrix inverse /
                                  linear solve); always a full recompute
================================  =======================================

Affected rows are the union of the radius-``r`` BFS balls around the
delta's touched nodes in **both** the old and the new graph (a deleted
edge shrinks reach in the new graph but the old rows were computed with
it), plus any newly added nodes.  Everything else is reused verbatim
(possibly scaled), and :meth:`DeltaPlanner.refresh` splices reused and
recomputed row blocks into a matrix that matches a from-scratch
``measure.compute`` to floating-point roundoff (the row computers replay
the exact sparse kernels row-restricted, so agreement is ~1 ulp).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse as _sp

from ..exceptions import GraphError, ProximityError
from ..graph import Graph
from ..proximity.base import ProximityMatrix, ProximityMeasure
from ..proximity.cache import ProximityCache
from ..proximity.degree import DegreeProximity
from ..proximity.first_order import (
    CommonNeighborsProximity,
    JaccardProximity,
    PreferentialAttachmentProximity,
)
from ..proximity.high_order import (
    DeepWalkProximity,
    KatzProximity,
    PersonalizedPageRankProximity,
    _clamp_nonnegative,
    _transition_and_inv_degrees,
)
from ..proximity.second_order import AdamicAdarProximity, ResourceAllocationProximity
from .delta import EdgeDelta, apply_delta

__all__ = [
    "InvalidationPlan",
    "RefreshResult",
    "DeltaPlanner",
    "LocalityRule",
    "register_locality",
]


@dataclass(frozen=True, eq=False)
class InvalidationPlan:
    """What a delta invalidates for one measure on one graph transition.

    ``scope == "rows"`` means the old cached matrix survives except for
    ``affected_rows`` (which must be recomputed) and a uniform
    ``row_scale`` on everything reused; ``scope == "full"`` means nothing
    survives and ``reason`` says why.
    """

    measure_fingerprint: str
    backend: str  # "sparse" | "dense"
    scope: str  # "rows" | "full"
    affected_rows: np.ndarray  # sorted int64 row ids (empty when scope == "full")
    num_rows: int  # node count of the *new* graph
    row_scale: float  # multiplier applied to reused rows (1.0 = verbatim)
    radius: int | None  # locality radius used, None when the measure is global
    reason: str

    @property
    def num_affected(self) -> int:
        """Rows that must be recomputed."""
        if self.scope == "full":
            return self.num_rows
        return int(self.affected_rows.shape[0])

    @property
    def num_reused(self) -> int:
        """Rows served verbatim (up to ``row_scale``) from the old matrix."""
        return self.num_rows - self.num_affected

    @property
    def reuse_fraction(self) -> float:
        return self.num_reused / self.num_rows if self.num_rows else 0.0

    def __repr__(self) -> str:
        if self.scope == "full":
            return f"InvalidationPlan(full recompute: {self.reason})"
        return (
            f"InvalidationPlan(rows: {self.num_affected}/{self.num_rows} recompute, "
            f"radius={self.radius}, scale={self.row_scale:.6g})"
        )


@dataclass(frozen=True, eq=False)
class RefreshResult:
    """Outcome of :meth:`DeltaPlanner.refresh`."""

    matrix: ProximityMatrix
    plan: InvalidationPlan
    #: "cache" (new graph already cached), "splice" (rows reused), or "full"
    source: str


# ---------------------------------------------------------------------- #
# locality rules
# ---------------------------------------------------------------------- #
RowComputer = Callable[[ProximityMeasure, Graph, np.ndarray], _sp.csr_matrix]


@dataclass(frozen=True)
class LocalityRule:
    """Per-measure-type locality: radius, reused-row rescale, row kernel.

    ``radius(measure)`` returns the BFS-ball radius, or ``None`` when the
    measure is global for this configuration (forces a full recompute).
    ``row_scale(measure, old_graph, new_graph)`` returns the multiplier for
    reused rows — return ``nan`` to force a full recompute (e.g. a
    normaliser hit zero).  ``compute_rows(measure, new_graph, rows)``
    replays the measure's sparse kernel restricted to ``rows`` and must
    match the corresponding rows of ``measure.compute`` to roundoff
    (diagonal stripping is applied by the planner afterwards).
    """

    radius: Callable[[ProximityMeasure], int | None]
    compute_rows: RowComputer | None = None
    row_scale: Callable[[ProximityMeasure, Graph, Graph], float] = field(
        default=lambda measure, old, new: 1.0
    )


_LOCALITY: dict[type, LocalityRule] = {}


def register_locality(measure_type: type, rule: LocalityRule) -> None:
    """Register (or override) the locality rule for a measure type.

    Registration is by exact type — a subclass with different math must
    register its own rule or it conservatively gets a full recompute.
    """
    if not isinstance(rule, LocalityRule):
        raise ProximityError(f"expected a LocalityRule, got {type(rule).__name__}")
    _LOCALITY[measure_type] = rule


def _degrees(graph: Graph) -> np.ndarray:
    return graph.degrees().astype(float)


def _strip_row_diagonal(matrix: _sp.csr_matrix, rows: np.ndarray) -> _sp.csr_matrix:
    """Drop entries ``(k, rows[k])`` — the diagonal of the full matrix
    restricted to this row block (mirrors ``compute``'s ``_strip_diagonal``)."""
    coo = matrix.tocoo()
    keep = coo.col != rows[coo.row]
    return _sp.csr_matrix(
        (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=matrix.shape
    )


def _common_neighbors_rows(
    measure: ProximityMeasure, graph: Graph, rows: np.ndarray
) -> _sp.csr_matrix:
    adjacency = measure._sparse_adjacency(graph)
    return (adjacency[rows] @ adjacency).tocsr()


def _jaccard_rows(
    measure: ProximityMeasure, graph: Graph, rows: np.ndarray
) -> _sp.csr_matrix:
    adjacency = measure._sparse_adjacency(graph)
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    intersection = (adjacency[rows] @ adjacency).tocoo()
    union = degrees[rows[intersection.row]] + degrees[intersection.col] - intersection.data
    with np.errstate(divide="ignore", invalid="ignore"):
        data = np.where(union > 0, intersection.data / union, 0.0)
    return _sp.csr_matrix(
        (data, (intersection.row, intersection.col)),
        shape=(rows.shape[0], graph.num_nodes),
    )


def _two_hop_rows(
    measure: ProximityMeasure, graph: Graph, rows: np.ndarray
) -> _sp.csr_matrix:
    adjacency = measure._sparse_adjacency(graph)
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    weights = measure._weights(degrees)  # type: ignore[attr-defined]
    return (adjacency[rows] @ _sp.diags(weights) @ adjacency).tocsr()


def _degree_rows(
    measure: ProximityMeasure, graph: Graph, rows: np.ndarray
) -> _sp.csr_matrix:
    degrees = _degrees(graph)
    peak = float(degrees.max()) if degrees.size else 0.0
    shape = (rows.shape[0], graph.num_nodes)
    if peak <= 0:
        return _sp.csr_matrix(shape)
    coo = measure._sparse_adjacency(graph)[rows].tocoo()
    data = np.sqrt(degrees[rows[coo.row]] * degrees[coo.col]) / peak
    return _sp.csr_matrix((data, (coo.row, coo.col)), shape=shape)


def _deepwalk_rows(
    measure: ProximityMeasure, graph: Graph, rows: np.ndarray
) -> _sp.csr_matrix:
    # row-restricted replay of DeepWalkProximity.compute_sparse_matrix: a
    # row of (M @ T) is (row of M) @ T and truncation is elementwise, so
    # the recursion R_{t+1} = truncate(R_t @ T) tracks the full power's
    # rows exactly
    adjacency = measure._sparse_adjacency(graph)
    transition, degrees, inv_degrees = _transition_and_inv_degrees(adjacency)
    power = transition[rows].tocsr()
    accumulated = measure._truncate(power).copy()  # type: ignore[attr-defined]
    for _ in range(measure.window_size - 1):  # type: ignore[attr-defined]
        power = measure._truncate((power @ transition).tocsr())  # type: ignore[attr-defined]
        accumulated = (accumulated + power).tocsr()
    accumulated = accumulated / measure.window_size  # type: ignore[attr-defined]
    proximity = accumulated @ _sp.diags(inv_degrees)
    if measure.use_volume_scaling:  # type: ignore[attr-defined]
        proximity = proximity * float(degrees.sum())
    return _clamp_nonnegative(proximity)


def _degree_scale(measure: ProximityMeasure, old: Graph, new: Graph) -> float:
    old_degrees, new_degrees = _degrees(old), _degrees(new)
    peak_old = float(old_degrees.max()) if old_degrees.size else 0.0
    peak_new = float(new_degrees.max()) if new_degrees.size else 0.0
    if peak_old <= 0 or peak_new <= 0:
        return float("nan")  # empty graph on either side: recompute
    return peak_old / peak_new


def _deepwalk_scale(measure: ProximityMeasure, old: Graph, new: Graph) -> float:
    if not measure.use_volume_scaling:  # type: ignore[attr-defined]
        return 1.0
    vol_old = float(_degrees(old).sum())
    vol_new = float(_degrees(new).sum())
    if vol_old <= 0 or vol_new <= 0:
        return float("nan")
    return vol_new / vol_old


def _deepwalk_radius(measure: ProximityMeasure) -> int | None:
    if not measure.resolve_backend(True):
        return None  # untruncated DeepWalk resolves dense; no row locality
    return int(measure.window_size)  # type: ignore[attr-defined]


register_locality(
    CommonNeighborsProximity,
    LocalityRule(radius=lambda m: 1, compute_rows=_common_neighbors_rows),
)
register_locality(
    JaccardProximity,
    LocalityRule(radius=lambda m: 2, compute_rows=_jaccard_rows),
)
register_locality(
    AdamicAdarProximity,
    LocalityRule(radius=lambda m: 1, compute_rows=_two_hop_rows),
)
register_locality(
    ResourceAllocationProximity,
    LocalityRule(radius=lambda m: 1, compute_rows=_two_hop_rows),
)
register_locality(
    DegreeProximity,
    LocalityRule(
        radius=lambda m: 1 if m.connected_only else None,  # type: ignore[attr-defined]
        compute_rows=_degree_rows,
        row_scale=_degree_scale,
    ),
)
register_locality(
    DeepWalkProximity,
    LocalityRule(
        radius=_deepwalk_radius, compute_rows=_deepwalk_rows, row_scale=_deepwalk_scale
    ),
)
# Global measures: every row couples to every edge.  Registering them
# explicitly (rather than leaving them unregistered) distinguishes "known
# global" from "unknown measure" in the plan's reason string.
register_locality(PreferentialAttachmentProximity, LocalityRule(radius=lambda m: None))
register_locality(KatzProximity, LocalityRule(radius=lambda m: None))
register_locality(PersonalizedPageRankProximity, LocalityRule(radius=lambda m: None))


# ---------------------------------------------------------------------- #
# affected-row discovery
# ---------------------------------------------------------------------- #
def _ball(graph: Graph, seeds: np.ndarray, radius: int) -> np.ndarray:
    """Boolean mask of nodes within BFS distance ``radius`` of any seed."""
    reached = seeds.copy()
    if radius <= 0 or not reached.any():
        return reached
    adjacency = graph.adjacency_matrix()
    frontier = reached.astype(np.float64)
    for _ in range(radius):
        frontier = adjacency @ frontier
        fresh = (frontier > 0) & ~reached
        if not fresh.any():
            break
        reached |= fresh
        frontier = fresh.astype(np.float64)
    return reached


def _affected_rows(
    old_graph: Graph, new_graph: Graph, delta: EdgeDelta, radius: int
) -> np.ndarray:
    n_old, n_new = old_graph.num_nodes, new_graph.num_nodes
    affected = np.zeros(n_new, dtype=bool)
    affected[n_old:] = True  # new nodes have no old row to reuse
    seeds = np.zeros(n_new, dtype=bool)
    seeds[delta.touched_nodes] = True
    # both graphs: a deleted edge shortens reach in the new graph, but the
    # old rows were computed *with* it — either ball can dirty a row
    affected[:n_old] |= _ball(old_graph, seeds[:n_old], radius)
    affected |= _ball(new_graph, seeds, radius)
    return np.nonzero(affected)[0].astype(np.int64)


# ---------------------------------------------------------------------- #
# planner
# ---------------------------------------------------------------------- #
class DeltaPlanner:
    """Plan and execute incremental proximity refreshes across a delta.

    Parameters
    ----------
    cache:
        Optional :class:`ProximityCache` consulted for the old graph's
        matrix and updated with the refreshed one.  Can also be supplied
        per-call to :meth:`refresh`.
    """

    def __init__(self, cache: ProximityCache | None = None) -> None:
        self.cache = cache

    # -------------------------------------------------------------- #
    def plan(
        self,
        graph: Graph,
        delta: EdgeDelta,
        measure: ProximityMeasure,
        *,
        new_graph: Graph | None = None,
        sparse: bool | None = None,
    ) -> InvalidationPlan:
        """Decide which rows of ``measure``'s matrix survive ``delta``.

        ``new_graph`` may be passed when ``apply_delta`` was already run;
        otherwise the delta is applied here (cheap, but not free).
        """
        new_graph = self._resolve_new_graph(graph, delta, new_graph)
        return self._plan(graph, delta, measure, new_graph, sparse)

    def refresh(
        self,
        graph: Graph,
        delta: EdgeDelta,
        measure: ProximityMeasure,
        *,
        new_graph: Graph | None = None,
        sparse: bool | None = None,
        old_matrix: ProximityMatrix | None = None,
        cache: ProximityCache | None = None,
    ) -> RefreshResult:
        """Produce ``measure``'s matrix for the post-delta graph.

        Reuses surviving rows of the old matrix (from ``old_matrix`` or the
        cache) when the plan allows, recomputing only the affected block;
        falls back to a full ``measure.compute`` otherwise.  The result is
        stored in the cache under the new graph's content key.
        """
        cache = cache if cache is not None else self.cache
        new_graph = self._resolve_new_graph(graph, delta, new_graph)
        plan = self._plan(graph, delta, measure, new_graph, sparse)
        key = cache.cache_key(measure, new_graph, sparse) if cache is not None else None
        if cache is not None and key is not None:
            hit = cache._get_by_key(key)
            if hit is not None:
                return RefreshResult(matrix=hit, plan=plan, source="cache")
        if old_matrix is None and cache is not None:
            old_matrix = cache.get(measure, graph, sparse)
        if (
            plan.scope == "rows"
            and plan.num_affected == 0
            and plan.row_scale == 1.0
            and old_matrix is not None
            and old_matrix.num_nodes == new_graph.num_nodes
        ):
            # empty delta: the old matrix is the new matrix, any backend
            if cache is not None and key is not None:
                cache._put_by_key(key, old_matrix)
            return RefreshResult(matrix=old_matrix, plan=plan, source="splice")
        if (
            plan.scope == "rows"
            and old_matrix is not None
            and old_matrix.is_sparse
            and old_matrix.num_nodes == graph.num_nodes
        ):
            matrix = self._splice(measure, new_graph, old_matrix, plan)
            source = "splice"
        else:
            matrix = measure.compute(new_graph, sparse=sparse)
            source = "full"
        if cache is not None and key is not None:
            cache._put_by_key(key, matrix)
        return RefreshResult(matrix=matrix, plan=plan, source=source)

    # -------------------------------------------------------------- #
    def _resolve_new_graph(
        self, graph: Graph, delta: EdgeDelta, new_graph: Graph | None
    ) -> Graph:
        if new_graph is None:
            return apply_delta(graph, delta)
        expected = graph.num_nodes if delta.num_nodes is None else delta.num_nodes
        if new_graph.num_nodes != expected:
            raise GraphError(
                f"new_graph has {new_graph.num_nodes} nodes but applying the delta "
                f"to {graph.name!r} yields {expected}"
            )
        return new_graph

    def _plan(
        self,
        graph: Graph,
        delta: EdgeDelta,
        measure: ProximityMeasure,
        new_graph: Graph,
        sparse: bool | None,
    ) -> InvalidationPlan:
        backend = "sparse" if measure.resolve_backend(sparse) else "dense"
        fingerprint = measure.fingerprint()
        n_new = new_graph.num_nodes

        def full(reason: str, radius: int | None = None) -> InvalidationPlan:
            return InvalidationPlan(
                measure_fingerprint=fingerprint,
                backend=backend,
                scope="full",
                affected_rows=np.empty(0, dtype=np.int64),
                num_rows=n_new,
                row_scale=1.0,
                radius=radius,
                reason=reason,
            )

        if delta.is_empty and new_graph.num_nodes == graph.num_nodes:
            return InvalidationPlan(
                measure_fingerprint=fingerprint,
                backend=backend,
                scope="rows",
                affected_rows=np.empty(0, dtype=np.int64),
                num_rows=n_new,
                row_scale=1.0,
                radius=0,
                reason="empty delta: every row survives",
            )
        rule = _LOCALITY.get(type(measure))
        if rule is None:
            return full(f"no locality rule registered for {type(measure).__name__}")
        radius = rule.radius(measure)
        if radius is None or rule.compute_rows is None:
            return full("measure couples every row to every edge (global)", radius)
        if backend != "sparse":
            return full("row splicing requires the CSR backend", radius)
        scale = rule.row_scale(measure, graph, new_graph)
        if not np.isfinite(scale) or scale <= 0:
            return full("reused-row rescale is undefined for this transition", radius)
        rows = _affected_rows(graph, new_graph, delta, radius)
        if rows.shape[0] >= n_new:
            return full("delta ball covers every row", radius)
        return InvalidationPlan(
            measure_fingerprint=fingerprint,
            backend=backend,
            scope="rows",
            affected_rows=rows,
            num_rows=n_new,
            row_scale=float(scale),
            radius=radius,
            reason=(
                f"radius-{radius} ball around {delta.touched_nodes.shape[0]} "
                "touched nodes"
            ),
        )

    def _splice(
        self,
        measure: ProximityMeasure,
        new_graph: Graph,
        old_matrix: ProximityMatrix,
        plan: InvalidationPlan,
    ) -> ProximityMatrix:
        rule = _LOCALITY[type(measure)]
        assert rule.compute_rows is not None  # guaranteed by plan.scope == "rows"
        n_new = new_graph.num_nodes
        rows = plan.affected_rows
        mask = np.zeros(n_new, dtype=bool)
        mask[rows] = True
        reused_rows = np.nonzero(~mask)[0]  # all < old node count by construction

        fresh = rule.compute_rows(measure, new_graph, rows)
        if fresh.shape != (rows.shape[0], n_new):
            raise ProximityError(
                f"row computer for {type(measure).__name__} returned shape "
                f"{fresh.shape}, expected {(rows.shape[0], n_new)}"
            )
        fresh = _strip_row_diagonal(fresh.tocsr(), rows)

        old_csr = old_matrix.sparse_matrix
        reused = old_csr[reused_rows]
        # widen to the new node count (a grown graph appends columns; old
        # rows have no entries there) and apply the uniform rescale
        reused = _sp.csr_matrix(
            (reused.data * plan.row_scale, reused.indices, reused.indptr),
            shape=(reused.shape[0], n_new),
        )
        stacked = _sp.vstack([reused, fresh], format="csr")
        order = np.concatenate([reused_rows, rows])
        inverse = np.empty(n_new, dtype=np.int64)
        inverse[order] = np.arange(n_new, dtype=np.int64)
        return ProximityMatrix(stacked[inverse].tocsr(), name=measure.name)
