"""Small shared utilities: RNG handling, stable math, CSR lookups, timing."""

from .rng import ensure_rng, spawn_rngs
from .mp import fork_available, resolve_fork_workers, serial_fallback
from .math import (
    sigmoid,
    log_sigmoid,
    softmax,
    stable_log,
    clip_norm,
    row_l2_norms,
    pairwise_euclidean,
)
from .sparse import csr_entry_keys, csr_lookup
from .timer import Timer
from .logging import get_logger
from .stats import RunningStats, summarize_runs

__all__ = [
    "csr_entry_keys",
    "csr_lookup",
    "ensure_rng",
    "spawn_rngs",
    "fork_available",
    "resolve_fork_workers",
    "serial_fallback",
    "sigmoid",
    "log_sigmoid",
    "softmax",
    "stable_log",
    "clip_norm",
    "row_l2_norms",
    "pairwise_euclidean",
    "Timer",
    "get_logger",
    "RunningStats",
    "summarize_runs",
]
