"""Small shared utilities: RNG handling, numerically stable math, timing."""

from .rng import ensure_rng, spawn_rngs
from .math import (
    sigmoid,
    log_sigmoid,
    softmax,
    stable_log,
    clip_norm,
    row_l2_norms,
    pairwise_euclidean,
)
from .timer import Timer
from .logging import get_logger
from .stats import RunningStats, summarize_runs

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "sigmoid",
    "log_sigmoid",
    "softmax",
    "stable_log",
    "clip_norm",
    "row_l2_norms",
    "pairwise_euclidean",
    "Timer",
    "get_logger",
    "RunningStats",
    "summarize_runs",
]
